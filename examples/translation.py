"""Neural machine translation under pipeline parallelism — the paper's
Transformer/IWSLT14 experiment at CPU scale.

The synthetic language pair is sequence reversal with a vocabulary
rotation, scored with real BLEU-4.  Demonstrates the paper's headline
Transformer results: naive async and PipeDream collapse to BLEU ≈ 0,
PipeMare's T1+T2 recovers training, and T3 synchronous warmup closes the
remaining gap at a throughput cost.

All three pipeline backends train this workload with bit-identical
trajectories; pick one with ``--runtime`` (the Transformer slices onto
concurrent workers through its two-stream stage graph — see
docs/ARCHITECTURE.md).

Run:  python examples/translation.py [--epochs 20] [--runtime async]
"""

import argparse

from repro.core import PipeMareConfig
from repro.experiments import make_translation_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--runtime", choices=["simulator", "async", "process"], default="simulator",
        help="pipeline backend (all bit-identical; async/process run the "
        "stages concurrently)",
    )
    args = parser.parse_args()

    workload = make_translation_workload("iwslt")
    print(
        f"workload: reversal-translation | vocab={workload.vocab_size} "
        f"| stages={workload.default_stages} | N={workload.num_microbatches} "
        f"| runtime={args.runtime}\n"
    )

    runs = {
        "sync (GPipe)": dict(method="gpipe"),
        "PipeDream": dict(method="pipedream"),
        "naive async": dict(method="pipemare", pipemare=PipeMareConfig.naive_async()),
        "PipeMare T1+T2": dict(method="pipemare", pipemare=workload.default_config()),
        "PipeMare T1+T2+T3": dict(
            method="pipemare", pipemare=workload.default_config(warmup_epochs=4)
        ),
    }
    for name, kwargs in runs.items():
        result = workload.run(
            epochs=args.epochs, seed=args.seed, runtime=args.runtime, **kwargs
        )
        curve = result.history.series("eval_metric")
        print(f"[{name:<18}] best BLEU {result.best_metric:5.1f} | "
              + " ".join(f"{v:.0f}" for v in curve))


if __name__ == "__main__":
    main()
