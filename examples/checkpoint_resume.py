"""Checkpoint and resume an asynchronous pipeline run.

Asynchronous pipeline training keeps more state than a data-parallel run:
besides weights and optimizer moments there are the per-stage weight-version
queues (which delayed forward reads consume) and the T2 velocity buffers.
`repro.io` captures all of it, so a resumed run continues *bit-exactly* —
this script demonstrates by comparing an interrupted-and-resumed run
against an uninterrupted one.

Run:  python examples/checkpoint_resume.py
"""

import os
import tempfile

import numpy as np

from repro.core import PipeMareConfig
from repro.io import load_checkpoint, save_checkpoint
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages
from repro.utils import new_rng


def make_data(rng, d=10, classes=4, n=512):
    centers = rng.normal(size=(classes, d)) * 2.0
    y = rng.integers(0, classes, size=n)
    return centers[y] + rng.normal(size=(n, d)), y


def build():
    """A PipeMare T1+T2 training setup (7 stages, 4 microbatches)."""
    model = MLP([10, 16, 16, 16, 16, 16, 4], new_rng(42))
    stages = partition_model(model)
    optimizer = SGD(param_groups_from_stages(stages), lr=0.1, momentum=0.9)
    executor = PipelineExecutor(
        model, CrossEntropyLoss(), optimizer, stages,
        num_microbatches=4, method="pipemare",
        pipemare=PipeMareConfig.t1_t2(anneal_steps=150, decay=0.5),
    )
    return model, optimizer, executor


def train(executor, x, y, start, steps):
    losses = []
    for step in range(start, start + steps):
        lo = (step % 16) * 32
        losses.append(executor.train_step(x[lo:lo + 32], y[lo:lo + 32]))
    return losses


def main() -> None:
    x, y = make_data(new_rng(0))
    path = os.path.join(tempfile.mkdtemp(), "pipemare.npz")

    # Run A: 60 steps straight through.
    model_a, _, ex_a = build()
    train(ex_a, x, y, 0, 60)

    # Run B: 30 steps, checkpoint, "crash", rebuild, restore, 30 more.
    model_b, opt_b, ex_b = build()
    losses = train(ex_b, x, y, 0, 30)
    save_checkpoint(path, model_b, optimizer=opt_b, executor=ex_b,
                    extra={"step": 30, "last_loss": losses[-1]})
    print(f"checkpointed at step 30 -> {path}")

    del model_b, opt_b, ex_b  # the "crash"

    model_c, opt_c, ex_c = build()           # fresh objects, same config
    extra = load_checkpoint(path, model_c, optimizer=opt_c, executor=ex_c)
    print(f"restored: resuming from step {extra['step']} "
          f"(loss was {extra['last_loss']:.4f})")
    train(ex_c, x, y, extra["step"], 30)

    # The resumed run must match the uninterrupted one bit-for-bit.
    worst = max(
        float(np.max(np.abs(p1.data - p2.data)))
        for p1, p2 in zip(model_a.parameters(), model_c.parameters())
    )
    print(f"max |w_straight - w_resumed| after 60 steps = {worst:.1e}")
    assert worst == 0.0, "resume was not bit-exact!"
    print("resume is bit-exact: weights, optimizer moments, T2 velocity and")
    print("the delayed weight-version queues all survived the restart.")


if __name__ == "__main__":
    main()
