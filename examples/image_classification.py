"""Image classification under pipeline parallelism — the paper's
ResNet/CIFAR10 experiment at CPU scale.

Trains the same ResNet with GPipe, PipeDream, and PipeMare; prints per-epoch
test accuracy, the analytic throughput/memory of each method, and the
resulting time-to-target comparison (Table 2's protocol).

Run:  python examples/image_classification.py [--epochs 12]
"""

import argparse

from repro.experiments import make_image_workload
from repro.experiments.end_to_end import run_end_to_end
from repro.pipeline import costmodel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = make_image_workload("cifar")
    print(
        f"workload: synthetic CIFAR10 stand-in | stages={workload.max_stages()} "
        f"(finest) -> using preset partition | microbatches={workload.num_microbatches}"
    )
    print(f"GPipe analytic throughput: {costmodel.optimal_gpipe_throughput()[0]:.2f}x\n")

    rows, results = run_end_to_end(
        workload,
        epochs=args.epochs,
        methods=("pipedream", "gpipe", "pipemare"),
        seeds=(args.seed,),
    )

    for method, rs in results.items():
        curve = rs[0].history.series("eval_metric")
        print(f"[{method}] accuracy by epoch: " + " ".join(f"{v:.1f}" for v in curve))

    print("\nTable 2-style summary:")
    for row in rows:
        print("  " + row.format())


if __name__ == "__main__":
    main()
