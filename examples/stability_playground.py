"""Stability theory playground — the paper's §3 analysis, interactive.

For a chosen delay profile this script:
  1. prints the Lemma 1 / Lemma 3 closed-form step-size thresholds,
  2. verifies them against companion-matrix root-finding,
  3. simulates the quadratic model just inside and outside the boundary,
  4. shows how the T2 discrepancy correction enlarges the stable range.

Run:  python examples/stability_playground.py [--tau 10] [--delta 5]
"""

import argparse

import numpy as np

from repro.theory import (
    char_poly_delayed_sgd,
    char_poly_discrepancy,
    char_poly_momentum,
    char_poly_t2,
    lemma1_alpha_max,
    lemma3_alpha_bound,
    max_stable_alpha,
    simulate_delayed_sgd,
    t2_gamma,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tau", type=int, default=10, help="forward delay")
    parser.add_argument("--tau-bkwd", type=int, default=6, help="backward delay")
    parser.add_argument("--delta", type=float, default=5.0, help="discrepancy sensitivity")
    parser.add_argument("--lam", type=float, default=1.0, help="curvature")
    args = parser.parse_args()
    tau, tau_b, delta, lam = args.tau, args.tau_bkwd, args.delta, args.lam

    print(f"== delayed SGD, tau={tau}, lambda={lam} ==")
    closed = lemma1_alpha_max(tau, lam)
    numeric = max_stable_alpha(lambda a: char_poly_delayed_sgd(tau, a, lam))
    print(f"Lemma 1 threshold: closed={closed:.6f}  numeric={numeric:.6f}")

    for factor, label in [(0.95, "just inside"), (1.05, "just outside")]:
        traj = simulate_delayed_sgd(lam, closed * factor, tau, 600, noise_std=0.0, w0=1.0)
        print(f"  alpha = {factor:.2f}x threshold ({label}): |w_600| = {abs(traj.iterates[-1]):.3g}")

    print(f"\n== with momentum 0.9 ==")
    mom = max_stable_alpha(lambda a: char_poly_momentum(tau, a, lam, 0.9))
    print(f"numeric threshold: {mom:.6f}  (Lemma 3 bound {lemma3_alpha_bound(tau, lam):.6f})")
    print(f"momentum shrinks the stable range by {closed / mom:.1f}x")

    print(f"\n== forward/backward discrepancy, tau_b={tau_b}, delta={delta} ==")
    raw = max_stable_alpha(lambda a: char_poly_discrepancy(tau, tau_b, a, lam, delta))
    gamma = t2_gamma(tau, tau_b)
    corrected = max_stable_alpha(lambda a: char_poly_t2(tau, tau_b, a, lam, delta, gamma))
    print(f"no correction:  max stable alpha = {raw:.6f}")
    print(f"T2 (gamma={gamma:.3f}): max stable alpha = {corrected:.6f} "
          f"({corrected / raw:.2f}x larger)")
    print(f"no-discrepancy reference:          {closed:.6f}")


if __name__ == "__main__":
    main()
