"""Quickstart: train one model three ways — synchronously (GPipe),
naively asynchronously, and with PipeMare (T1+T2) — and compare.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages
from repro.utils import new_rng


def make_data(rng, d=10, classes=4, n=512):
    """A simple Gaussian-clusters classification problem."""
    centers = rng.normal(size=(classes, d)) * 2.0
    y = rng.integers(0, classes, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def train(method: str, config: PipeMareConfig | None, steps: int = 300) -> list[float]:
    rng = new_rng(0)
    x, y = make_data(rng)

    # A deep, narrow MLP: 7 weight units = 7 pipeline stages at the finest
    # granularity — enough delay for asynchrony to matter.
    model = MLP([10, 16, 16, 16, 16, 16, 4], new_rng(42))
    loss = CrossEntropyLoss()
    stages = partition_model(model)  # one weight unit per stage
    optimizer = SGD(param_groups_from_stages(stages), lr=0.1, momentum=0.5)

    executor = PipelineExecutor(
        model, loss, optimizer, stages,
        num_microbatches=4,       # N: minibatches split 4-ways
        method=method,            # "gpipe" | "pipedream" | "pipemare"
        pipemare=config,
    )

    losses = []
    for step in range(steps):
        lo = (step % 16) * 32
        losses.append(executor.train_step(x[lo : lo + 32], y[lo : lo + 32]))
        if not np.isfinite(losses[-1]) or losses[-1] > 1e6:
            break
    return losses


def main() -> None:
    runs = {
        "synchronous (GPipe)": ("gpipe", None),
        "naive async": ("pipemare", PipeMareConfig.naive_async()),
        "PipeMare T1+T2": ("pipemare", PipeMareConfig.t1_t2(anneal_steps=150, decay=0.5)),
    }
    print(f"{'run':<22} {'first loss':>11} {'final loss':>11} {'status':>10}")
    for name, (method, cfg) in runs.items():
        losses = train(method, cfg)
        status = "ok" if len(losses) == 300 and np.isfinite(losses[-1]) else "DIVERGED"
        final = np.mean(losses[-10:]) if status == "ok" else float("inf")
        print(f"{name:<22} {losses[0]:>11.4f} {final:>11.4f} {status:>10}")
    print(
        "\nExpected shape: naive async degrades or diverges at a learning rate"
        "\nwhere synchronous training is fine; PipeMare's per-stage learning-"
        "\nrate rescheduling and discrepancy correction recover training while"
        "\nkeeping the pipeline bubble-free with one weight copy."
    )


if __name__ == "__main__":
    main()
