"""Hogwild!-style stochastic asynchrony (Appendix E): per-stage delays are
random (truncated exponential) rather than the pipeline's fixed profile,
and T1's learning-rate rescheduling still rescues training.

The paper's Figure 19 shows this on ResNet50/CIFAR10 and a Transformer;
here we run the CPU-scale image stand-in three ways — synchronous,
Hogwild!, and Hogwild! + T1 — and compare final quality.

Run:  python examples/hogwild_asynchrony.py
"""

import numpy as np

from repro.experiments.hogwild_study import run_hogwild_image
from repro.experiments.workloads import make_image_workload
from repro.viz import format_table, sparkline


def main() -> None:
    workload = make_image_workload("cifar")
    epochs = 6
    target = 85.0  # accuracy the stand-in reaches quickly when healthy

    print("Appendix E — stochastic (Hogwild!-style) per-stage delays")
    print(f"workload={workload.name}, epochs={epochs}, target={target}%\n")

    runs = {}
    # Synchronous reference: the same workload trained GPipe-style.
    runs["synchronous"] = workload.run(method="gpipe", epochs=epochs, seed=0)
    # Stochastic delays with mean equal to the pipeline τ_fwd profile.
    runs["hogwild"] = run_hogwild_image(workload, epochs=epochs, use_t1=False, seed=0)
    runs["hogwild + T1"] = run_hogwild_image(workload, epochs=epochs, use_t1=True, seed=0)

    rows = []
    for name, result in runs.items():
        to_target = result.epochs_to_target(target)
        rows.append(
            [
                name,
                result.best_metric,
                None if np.isinf(to_target) else to_target,
                "yes" if result.diverged else "no",
                sparkline(result.history.series("eval_metric")),
            ]
        )
    print(
        format_table(
            ["run", "best accuracy", f"epochs to {target:.0f}%", "diverged", "curve"],
            rows,
            float_fmt=".2f",
        )
    )
    gap_plain = runs["synchronous"].best_metric - runs["hogwild"].best_metric
    gap_t1 = runs["synchronous"].best_metric - runs["hogwild + T1"].best_metric
    print(
        f"\nquality gap to synchronous after {epochs} epochs: "
        f"{gap_plain:.2f} (hogwild) vs {gap_t1:.2f} (hogwild + T1)"
    )
    print(
        "\nExpected shape (Figure 19): under stochastic staleness plain"
        "\nHogwild! learns markedly slower (or worse) at a fixed budget;"
        "\nadding T1's per-stage delay-aware learning rates recovers most of"
        "\nthe gap — the technique is not specific to the fixed pipeline"
        "\ndelay pattern it was derived for."
    )


if __name__ == "__main__":
    main()
