"""Evaluation helpers for the two task families."""

from __future__ import annotations

import numpy as np

from repro.data.translation import TranslationTask
from repro.metrics import corpus_bleu, top1_accuracy
from repro.models.transformer import Transformer
from repro.nn.module import Module


def evaluate_classifier(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 128
) -> float:
    """Top-1 test accuracy (%), evaluated in eval mode."""
    was_training = model.training
    model.eval()
    try:
        logits = []
        for start in range(0, len(x), batch_size):
            logits.append(model(x[start : start + batch_size]))
        return top1_accuracy(np.concatenate(logits, axis=0), y)
    finally:
        model.train(was_training)


def evaluate_translation(
    model: Transformer,
    task: TranslationTask,
    eval_pairs: list[tuple[np.ndarray, np.ndarray]],
    batch_size: int = 32,
) -> float:
    """Corpus BLEU of greedy decodes against the exact references."""
    candidates: list[list[int]] = []
    references: list[list[int]] = []
    for start in range(0, len(eval_pairs), batch_size):
        chunk = eval_pairs[start : start + batch_size]
        batch = task.make_batch(chunk)
        max_len = batch.tgt_in.shape[1] + 2
        decoded = model.greedy_decode(batch.src, max_len=max_len)
        for row, (_, ref) in zip(decoded, chunk):
            candidates.append(task.strip_special(row))
            references.append([int(t) for t in ref])
    return corpus_bleu(candidates, references)
