"""Training loops: a plain sequential trainer (the non-pipeline baseline)
and the epoch-level pipeline trainer wrapping
:class:`repro.pipeline.PipelineExecutor`."""

from repro.train.evaluate import evaluate_classifier, evaluate_translation
from repro.train.trainer import SequentialTrainer
from repro.train.pipeline_trainer import PipelineTrainer, TrainResult

__all__ = [
    "SequentialTrainer",
    "PipelineTrainer",
    "TrainResult",
    "evaluate_classifier",
    "evaluate_translation",
]
