"""Epoch-level driver around :class:`repro.pipeline.PipelineExecutor`.

Collects the paper's run-level metrics: per-epoch eval metric, parameter
norm (the Figure 7 divergence probe), per-epoch hardware time from the
throughput model (so T3's synchronous warmup epochs cost 1/0.3×), and the
derived best/epochs-to-target/time-to-target numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.metrics.tracker import MetricTracker
from repro.train.trainer import parameter_norm
from repro.utils.history import History


@dataclass
class TrainResult:
    """Everything the experiment harnesses need from one run."""

    history: History
    tracker: MetricTracker
    diverged: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def best_metric(self) -> float:
        return self.tracker.best()

    def epochs_to_target(self, target: float) -> float:
        return self.tracker.epochs_to_target(target)

    def time_to_target(self, target: float) -> float:
        return self.tracker.time_to_target(target)


class PipelineTrainer:
    """Runs a pipeline executor for a number of epochs with evaluation.

    Parameters
    ----------
    executor:
        A configured pipeline backend — either the sequential
        :class:`repro.pipeline.PipelineExecutor` or the concurrent
        :class:`repro.pipeline.AsyncPipelineRuntime` (the two are
        differentially tested to produce identical trajectories).
    batch_fn:
        Called with an epoch-scoped rng, returns an iterable of (x, y)
        minibatches for one epoch.
    eval_fn:
        Called with no arguments after each epoch; returns the eval metric
        (test accuracy or BLEU).  The executor guarantees the model holds
        the latest weights at that point.
    divergence_norm:
        Abort threshold on the global parameter norm.
    """

    def __init__(
        self,
        executor,
        batch_fn: Callable[[np.random.Generator], "object"],
        eval_fn: Callable[[], float],
        seed: int = 0,
        divergence_norm: float = 1e6,
    ):
        self.executor = executor
        self.batch_fn = batch_fn
        self.eval_fn = eval_fn
        self.seed = seed
        self.divergence_norm = divergence_norm

    def run(self, epochs: int, eval_every: int = 1) -> TrainResult:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        history = History()
        tracker = MetricTracker(mode="max")
        diverged = False
        for epoch in range(epochs):
            rng = np.random.default_rng((self.seed, epoch))
            epoch_time = 0.0
            losses = []
            for x, y in self.batch_fn(rng):
                epoch_time += self.executor.step_time()
                losses.append(self.executor.train_step(x, y))
            # Concurrent runtimes with the overlapped optimizer boundary
            # defer the last step's fold/step/publish; settle it so the
            # divergence probe and eval_fn below read the latest weights
            # (the same guarantee the simulator gives inline).
            sync = getattr(self.executor, "sync", None)
            if sync is not None:
                sync()
            mean_loss = float(np.mean(losses)) if losses else math.nan
            norm = parameter_norm(self.executor.model)
            history.log(step=epoch, train_loss=mean_loss, param_norm=norm)
            if not np.isfinite(mean_loss) or norm > self.divergence_norm:
                diverged = True
                # a diverged run never reaches any target; record a floor
                tracker.record(epoch, -math.inf if tracker.mode == "max" else math.inf, epoch_time)
                break
            if (epoch + 1) % eval_every == 0 or epoch == epochs - 1:
                metric = self.eval_fn()
            else:
                metric = tracker.values[-1] if len(tracker) else -math.inf
            history.log(step=epoch, eval_metric=metric)
            tracker.record(epoch, metric, epoch_time)
        return TrainResult(
            history=history,
            tracker=tracker,
            diverged=diverged,
            meta={
                "method": self.executor.method.value,
                "num_stages": self.executor.profile.num_stages,
                "num_microbatches": self.executor.profile.num_microbatches,
                "config": self.executor.config.describe() if self.executor.config else None,
            },
        )
