"""Epoch-level driver around :class:`repro.pipeline.PipelineExecutor`.

Collects the paper's run-level metrics: per-epoch eval metric, parameter
norm (the Figure 7 divergence probe), per-epoch hardware time from the
throughput model (so T3's synchronous warmup epochs cost 1/0.3×), and the
derived best/epochs-to-target/time-to-target numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.metrics.tracker import MetricTracker
from repro.train.trainer import parameter_norm
from repro.utils.history import History


@dataclass
class TrainResult:
    """Everything the experiment harnesses need from one run."""

    history: History
    tracker: MetricTracker
    diverged: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def best_metric(self) -> float:
        return self.tracker.best()

    def epochs_to_target(self, target: float) -> float:
        return self.tracker.epochs_to_target(target)

    def time_to_target(self, target: float) -> float:
        return self.tracker.time_to_target(target)


class PipelineTrainer:
    """Runs a pipeline executor for a number of epochs with evaluation.

    Parameters
    ----------
    executor:
        A configured pipeline backend — either the sequential
        :class:`repro.pipeline.PipelineExecutor` or the concurrent
        :class:`repro.pipeline.AsyncPipelineRuntime` (the two are
        differentially tested to produce identical trajectories).
    batch_fn:
        Called with an epoch-scoped rng, returns an iterable of (x, y)
        minibatches for one epoch.
    eval_fn:
        Called with no arguments after each epoch; returns the eval metric
        (test accuracy or BLEU).  The executor guarantees the model holds
        the latest weights at that point.
    divergence_norm:
        Abort threshold on the global parameter norm.
    autosave_every:
        Crash-safe checkpointing: every N optimizer steps the trainer
        syncs the executor (settling any overlapped boundary) and writes
        a rolling snapshot via
        :class:`repro.io.CheckpointManager` — atomic writes, per-array
        checksums, ``latest`` pointer with fallback to the previous good
        snapshot.  ``None`` (default) disables autosave.  Because the
        per-epoch minibatch stream is a pure function of ``(seed,
        epoch)``, a killed driver resumes **bit-exactly**: ``run(...,
        resume=True)`` loads the newest snapshot and fast-forwards to
        the exact minibatch after the save point.  The sync at each save
        is arithmetic-neutral, so a run with autosave on matches one
        with it off bit for bit.
    autosave_dir:
        Snapshot directory (required when ``autosave_every`` is set).
    autosave_keep:
        Rolling snapshots to retain (default 2 — the crash window can
        tear at most the newest one).
    """

    def __init__(
        self,
        executor,
        batch_fn: Callable[[np.random.Generator], "object"],
        eval_fn: Callable[[], float],
        seed: int = 0,
        divergence_norm: float = 1e6,
        autosave_every: int | None = None,
        autosave_dir: str | None = None,
        autosave_keep: int = 2,
    ):
        self.executor = executor
        self.batch_fn = batch_fn
        self.eval_fn = eval_fn
        self.seed = seed
        self.divergence_norm = divergence_norm
        if autosave_every is not None and autosave_every < 1:
            raise ValueError(f"autosave_every must be >= 1, got {autosave_every}")
        if autosave_every is not None and autosave_dir is None:
            raise ValueError("autosave_every requires autosave_dir")
        self.autosave_every = autosave_every
        self.manager = None
        if autosave_every is not None:
            from repro.io import CheckpointManager

            self.manager = CheckpointManager(autosave_dir, keep=autosave_keep)

    def _autosave(self, epoch: int, batch: int, losses: list, epoch_time: float) -> None:
        """Snapshot at a synced optimizer boundary.  ``batch`` is the
        number of this epoch's minibatches already consumed, so a resumed
        run knows exactly where in the deterministic batch stream to
        continue; the epoch-local loss/time accumulators ride along so
        the resumed epoch's logged metrics match the uninterrupted run's."""
        sync = getattr(self.executor, "sync", None)
        if sync is not None:
            sync()
        self.manager.save(
            self.executor.model,
            self.executor.optimizer,
            self.executor,
            extra={
                "epoch": epoch,
                "batch": batch,
                "losses": [float(l) for l in losses],
                "epoch_time": float(epoch_time),
            },
        )

    def run(self, epochs: int, eval_every: int = 1, resume: bool = False) -> TrainResult:
        """Train for ``epochs`` epochs.  With ``resume=True`` (and
        autosave configured), restore the newest loadable snapshot first
        and continue from the exact minibatch after it — bit-identical
        to the uninterrupted run from there on.  If the snapshot
        directory is empty, start from scratch.  History and tracker
        cover the resumed portion only (epochs before the restore point
        were logged by the killed run)."""
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        start_epoch = start_batch = 0
        carry_losses: list = []
        carry_time = 0.0
        if resume:
            if self.manager is None:
                raise ValueError("resume=True requires autosave to be configured")
            from repro.io import CheckpointError

            try:
                extra = self.manager.load_latest(
                    self.executor.model, self.executor.optimizer, self.executor
                )
            except CheckpointError:
                extra = None  # nothing saved yet: fresh start
            if extra is not None:
                start_epoch = int(extra["epoch"])
                start_batch = int(extra["batch"])
                carry_losses = list(extra["losses"])
                carry_time = float(extra["epoch_time"])
        steps_done = 0
        history = History()
        tracker = MetricTracker(mode="max")
        diverged = False
        for epoch in range(start_epoch, epochs):
            rng = np.random.default_rng((self.seed, epoch))
            resuming = epoch == start_epoch and (start_batch or carry_losses)
            epoch_time = carry_time if resuming else 0.0
            losses = list(carry_losses) if resuming else []
            skip = start_batch if epoch == start_epoch else 0
            for i, (x, y) in enumerate(self.batch_fn(rng)):
                if i < skip:
                    continue  # replayed deterministically; already trained on
                epoch_time += self.executor.step_time()
                losses.append(self.executor.train_step(x, y))
                steps_done += 1
                if (
                    self.autosave_every is not None
                    and steps_done % self.autosave_every == 0
                ):
                    self._autosave(epoch, i + 1, losses, epoch_time)
            # Concurrent runtimes with the overlapped optimizer boundary
            # defer the last step's fold/step/publish; settle it so the
            # divergence probe and eval_fn below read the latest weights
            # (the same guarantee the simulator gives inline).
            sync = getattr(self.executor, "sync", None)
            if sync is not None:
                sync()
            mean_loss = float(np.mean(losses)) if losses else math.nan
            norm = parameter_norm(self.executor.model)
            history.log(step=epoch, train_loss=mean_loss, param_norm=norm)
            if not np.isfinite(mean_loss) or norm > self.divergence_norm:
                diverged = True
                # a diverged run never reaches any target; record a floor
                tracker.record(epoch, -math.inf if tracker.mode == "max" else math.inf, epoch_time)
                break
            if (epoch + 1) % eval_every == 0 or epoch == epochs - 1:
                metric = self.eval_fn()
            else:
                metric = tracker.values[-1] if len(tracker) else -math.inf
            history.log(step=epoch, eval_metric=metric)
            tracker.record(epoch, metric, epoch_time)
        return TrainResult(
            history=history,
            tracker=tracker,
            diverged=diverged,
            meta={
                "method": self.executor.method.value,
                "num_stages": self.executor.profile.num_stages,
                "num_microbatches": self.executor.profile.num_microbatches,
                "config": self.executor.config.describe() if self.executor.config else None,
            },
        )
