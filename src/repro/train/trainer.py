"""Plain (non-pipeline) synchronous training loop.

Used as the statistical reference ("Sync." in the figures) and by T3's
conceptual baseline; numerically identical to the pipeline executor in
GPipe mode with the same seeds, which the integration tests verify.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module
from repro.optim import Optimizer, clip_grad_norm
from repro.optim.schedulers import LRSchedule
from repro.utils.history import History


class SequentialTrainer:
    """Minibatch SGD with optional microbatch gradient accumulation."""

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        num_microbatches: int = 1,
    ):
        if num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.base_schedule = base_schedule
        self.grad_clip = grad_clip
        self.num_microbatches = num_microbatches
        self.history = History()
        self.t = 0

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        n = self.num_microbatches
        xs = np.array_split(x, n)
        ys = np.array_split(y, n)
        total = len(x)
        self.optimizer.zero_grad()
        losses = []
        for xj, yj in zip(xs, ys):
            out = self.model(xj)
            losses.append(self.loss_fn(out, yj))
            grad = self.loss_fn.backward() * (len(xj) * n / total)
            self.model.backward(grad)
        for p in self.model.parameters():
            p.grad *= 1.0 / n
        if self.grad_clip is not None:
            clip_grad_norm(self.model.parameters(), self.grad_clip)
        if self.base_schedule is not None:
            self.optimizer.lr = self.base_schedule(self.t)
        self.optimizer.step()
        self.t += 1
        loss = float(np.mean(losses))
        self.history.log(step=self.t, train_loss=loss)
        return loss

    def train_epoch(self, batches) -> float:
        """Run an iterable of (x, y) minibatches; returns mean loss."""
        losses = [self.train_step(x, y) for x, y in batches]
        if not losses:
            raise ValueError("empty epoch")
        return float(np.mean(losses))


def parameter_norm(model: Module) -> float:
    """Global L2 norm of all parameters — the Figure 7 divergence probe."""
    total = 0.0
    for p in model.parameters():
        total += float(np.sum(p.data**2))
    return float(np.sqrt(total))
