"""Deterministic random-number-generator helpers.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator` so experiments are reproducible and tests can
pin seeds.  These helpers centralise construction so seeding conventions stay
consistent across the codebase.
"""

from __future__ import annotations

import numpy as np


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a fresh PCG64 generator seeded with ``seed``.

    ``None`` gives OS entropy; every library entry point defaults to a fixed
    seed instead so that runs are reproducible unless the caller opts out.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` statistically independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the recommended way to
    derive independent streams (e.g. one per pipeline stage or per worker).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
