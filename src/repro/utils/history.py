"""Lightweight append-only metric history used by trainers and experiments."""

from __future__ import annotations

import json
import math
from typing import Any


class History:
    """Records named scalar series, e.g. ``history.log(epoch=3, loss=0.12)``.

    Series are ragged: a key only grows when logged.  Each record also keeps
    the global ``step`` counter so series can be aligned afterwards.
    """

    def __init__(self):
        self._series: dict[str, list[tuple[int, float]]] = {}
        self._step = 0

    def log(self, step: int | None = None, **metrics: float) -> None:
        """Append ``metrics`` at ``step`` (defaults to an internal counter)."""
        if step is None:
            step = self._step
        self._step = max(self._step, step) + 1
        for key, value in metrics.items():
            self._series.setdefault(key, []).append((int(step), float(value)))

    def series(self, key: str) -> list[float]:
        """Values logged under ``key``, in order."""
        return [v for _, v in self._series.get(key, [])]

    def steps(self, key: str) -> list[int]:
        """Steps at which ``key`` was logged."""
        return [s for s, _ in self._series.get(key, [])]

    def last(self, key: str, default: float = math.nan) -> float:
        values = self.series(key)
        return values[-1] if values else default

    def best(self, key: str, mode: str = "max") -> float:
        """Best value of a series (``mode`` in {"max", "min"})."""
        values = self.series(key)
        if not values:
            return math.nan
        if mode == "max":
            return max(values)
        if mode == "min":
            return min(values)
        raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")

    def keys(self) -> list[str]:
        return list(self._series)

    def to_dict(self) -> dict[str, Any]:
        return {k: {"steps": self.steps(k), "values": self.series(k)} for k in self._series}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def __contains__(self, key: str) -> bool:
        return key in self._series

    def __len__(self) -> int:
        return len(self._series)
