"""A bounded FIFO keyed by monotonically increasing version indices.

Used by :class:`repro.pipeline.WeightVersionStore` to hold the last ``H``
versions of each pipeline stage's weights — the "queue of weights for each
individual pipeline stage" the paper's simulator maintains (Appendix C.4).
"""

from __future__ import annotations

from typing import Any, Iterator


class RingBuffer:
    """Maps version index ``v`` -> payload for the most recent ``capacity``
    versions.

    Versions must be appended in strictly increasing order starting at 0.
    Reads of evicted (too-old) or not-yet-written versions raise ``KeyError``
    so that a mis-specified delay profile fails loudly instead of silently
    training on the wrong weights.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._slots: list[Any] = [None] * capacity
        self._next_version = 0
        # Oldest version actually held; only ever raised above the natural
        # ``next - capacity`` bound by seed(..., allow_gap=True) restoring
        # a window shallower than the capacity.
        self._floor = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def latest_version(self) -> int:
        """Index of the most recently appended version (-1 when empty)."""
        return self._next_version - 1

    @property
    def oldest_version(self) -> int:
        """Oldest version still resident (-1 when empty)."""
        if self._next_version == 0:
            return -1
        return max(self._floor, self._next_version - self._capacity)

    def append(self, payload: Any) -> int:
        """Store ``payload`` as the next version; returns its version index."""
        version = self._next_version
        self._slots[version % self._capacity] = payload
        self._next_version += 1
        return version

    def __contains__(self, version: int) -> bool:
        return self.oldest_version <= version <= self.latest_version and version >= 0

    def __getitem__(self, version: int) -> Any:
        if version not in self:
            raise KeyError(
                f"version {version} not resident "
                f"(have [{self.oldest_version}, {self.latest_version}])"
            )
        return self._slots[version % self._capacity]

    def __len__(self) -> int:
        if self._next_version == 0:
            return 0
        return self._next_version - self.oldest_version

    def versions(self) -> Iterator[int]:
        """Iterate resident version indices, oldest first."""
        if self._next_version == 0:
            return iter(())
        return iter(range(self.oldest_version, self._next_version))

    def seed(self, start_version: int, payloads: list[Any], *, allow_gap: bool = False) -> None:
        """Reset the buffer to hold ``payloads`` as consecutive versions
        ``start_version, start_version+1, ...`` — the checkpoint-restore
        path.  By default the window must fill the capacity exactly (be
        the newest prefix of history); ``allow_gap=True`` accepts a window
        shallower than the capacity (a checkpoint written by a buffer with
        a smaller history), with versions between ``start_version -
        capacity + len(payloads)`` and ``start_version`` simply absent."""
        if start_version < 0:
            raise ValueError(f"start_version must be >= 0, got {start_version}")
        if not payloads:
            raise ValueError("seed needs at least one payload")
        if len(payloads) > self._capacity:
            raise ValueError(
                f"{len(payloads)} payloads exceed capacity {self._capacity}"
            )
        end = start_version + len(payloads)
        if not allow_gap and start_version != max(0, end - self._capacity):
            raise ValueError(
                f"versions [{start_version}, {end}) are not the newest "
                f"window for capacity {self._capacity}"
            )
        self._slots = [None] * self._capacity
        self._next_version = start_version
        self._floor = start_version
        for payload in payloads:
            self.append(payload)
