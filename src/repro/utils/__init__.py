"""Shared utilities: seeded RNG helpers, ring buffers, metric history."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.ring_buffer import RingBuffer
from repro.utils.history import History

__all__ = ["new_rng", "spawn_rngs", "RingBuffer", "History"]
