"""Residual CNNs standing in for ResNet50/ResNet152.

The paper's vision experiments study optimisation dynamics under pipeline
delay; what matters for reproduction is a *residual* conv net with enough
weights to form ~100-200 pipeline stages, not ImageNet-scale capacity.
``resnet_tiny`` / ``resnet_deep`` provide CPU-feasible configurations whose
stage counts can be pushed to the paper's fine-grained regime.

Normalisation defaults to GroupNorm because the pipeline simulator uses tiny
microbatches (the paper itself flags BatchNorm trouble below microbatch 8,
§4.1, and cites GroupNorm [24]).
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    GroupNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
)


def _make_norm(kind: str, channels: int) -> Module:
    if kind == "group":
        groups = max(1, channels // 4)
        return GroupNorm(groups, channels)
    if kind == "batch":
        return BatchNorm2d(channels)
    raise ValueError(f"unknown norm kind {kind!r} (expected 'group' or 'batch')")


class BasicBlock(Module):
    """conv-norm-relu-conv-norm + shortcut, with a hand-written backward."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
        norm: str = "group",
    ):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride, padding=1, bias=False)
        self.norm1 = _make_norm(norm, out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, stride=1, padding=1, bias=False)
        self.norm2 = _make_norm(norm, out_channels)
        self.relu_out = ReLU()
        self.has_projection = stride != 1 or in_channels != out_channels
        if self.has_projection:
            self.proj = Sequential(
                Conv2d(in_channels, out_channels, 1, rng, stride=stride, bias=False),
                _make_norm(norm, out_channels),
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.norm1(self.conv1(x))
        h = self.relu1(h)
        h = self.norm2(self.conv2(h))
        shortcut = self.proj(x) if self.has_projection else x
        return self.relu_out(h + shortcut)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.relu_out.backward(grad_out)
        g_shortcut = self.proj.backward(g) if self.has_projection else g
        g_main = self.conv1.backward(
            self.norm1.backward(self.relu1.backward(self.conv2.backward(self.norm2.backward(g))))
        )
        return g_main + g_shortcut

    def pipeline_chain(self, granularity: str = "layer") -> list:
        """Chain elements for the concurrent runtime.  ``layer`` keeps the
        block atomic (its two-branch dataflow internal to one element);
        ``sublayer`` splits it into the first conv sub-chain and the
        second-conv + shortcut join, carrying the block input through the
        payload — so the finest partition yields strictly more workers than
        residual blocks, with the exact arithmetic of :meth:`backward`."""
        if granularity == "sublayer":
            return [_BlockMainSlice(self), _BlockJoinSlice(self)]
        return [self]


class _BlockMainSlice(Module):
    """First half of a :class:`BasicBlock` (conv1-norm1-relu) as its own
    chain element: ``x → (h, x)``, the block input riding the payload to
    the shortcut join.  Holds the block's *submodules*, so the two halves'
    parameters slice independently at sublayer granularity."""

    def __init__(self, block: BasicBlock):
        super().__init__()
        self.conv = block.conv1
        self.norm = block.norm1
        self.relu = block.relu1

    def forward(self, x: np.ndarray):
        return self.relu(self.norm(self.conv(x))), x

    def backward(self, grad):
        g_h, g_x = grad
        g_main = self.conv.backward(self.norm.backward(self.relu.backward(g_h)))
        return g_main + g_x


class _BlockJoinSlice(Module):
    """Second half of a :class:`BasicBlock`: conv2-norm2 plus the shortcut
    add (projected when shapes change) and the output ReLU.  Backward
    returns ``(g_h, g_x)`` for the payload, with the identical expressions
    and operand order of :meth:`BasicBlock.backward`."""

    def __init__(self, block: BasicBlock):
        super().__init__()
        self.conv = block.conv2
        self.norm = block.norm2
        self.relu_out = block.relu_out
        self.has_projection = block.has_projection
        if block.has_projection:
            self.proj = block.proj

    def forward(self, payload):
        h, x = payload
        hh = self.norm(self.conv(h))
        shortcut = self.proj(x) if self.has_projection else x
        return self.relu_out(hh + shortcut)

    def backward(self, grad_out: np.ndarray):
        g = self.relu_out.backward(grad_out)
        g_shortcut = self.proj.backward(g) if self.has_projection else g
        g_h = self.conv.backward(self.norm.backward(g))
        return g_h, g_shortcut


class ResNet(Module):
    """Stem + staged residual blocks + global pool + linear classifier.

    ``blocks_per_stage`` and ``channels_per_stage`` control depth/width; each
    stage after the first downsamples spatially by 2.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        in_channels: int = 3,
        num_classes: int = 10,
        blocks_per_stage: tuple[int, ...] = (2, 2),
        channels_per_stage: tuple[int, ...] = (8, 16),
        norm: str = "group",
    ):
        super().__init__()
        if len(blocks_per_stage) != len(channels_per_stage):
            raise ValueError("blocks_per_stage and channels_per_stage must align")
        c0 = channels_per_stage[0]
        self.stem = Sequential(
            Conv2d(in_channels, c0, 3, rng, stride=1, padding=1, bias=False),
            _make_norm(norm, c0),
            ReLU(),
        )
        blocks: list[Module] = []
        c_in = c0
        for stage_idx, (n_blocks, c_out) in enumerate(
            zip(blocks_per_stage, channels_per_stage)
        ):
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(BasicBlock(c_in, c_out, rng, stride=stride, norm=norm))
                c_in = c_out
        self.body = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.head = Linear(c_in, num_classes, rng)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.stem(x)
        h = self.body(h)
        h = self.pool(h)
        return self.head(h)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad_out)
        g = self.pool.backward(g)
        g = self.body.backward(g)
        return self.stem.backward(g)

    def pipeline_chain(self) -> list:
        """The model as an ordered module chain, for the concurrent runtime
        (residual blocks stay atomic — their two-branch dataflow is internal
        to one chain element)."""
        return [self.stem, self.body, self.pool, self.head]


def resnet_tiny(
    rng: np.random.Generator, num_classes: int = 10, norm: str = "group"
) -> ResNet:
    """ResNet50 stand-in at CPU scale: 2 stages × 2 blocks (~20 weight
    tensors → ~20-40 pipeline stages at fine granularity)."""
    return ResNet(
        rng,
        blocks_per_stage=(2, 2),
        channels_per_stage=(8, 16),
        num_classes=num_classes,
        norm=norm,
    )


def resnet_deep(
    rng: np.random.Generator, num_classes: int = 10, norm: str = "group"
) -> ResNet:
    """ResNet152 stand-in: 3 stages × 3 blocks — the Figure 11 workload where
    T1 alone diverges and T2 is required."""
    return ResNet(
        rng,
        blocks_per_stage=(3, 3, 3),
        channels_per_stage=(8, 16, 16),
        num_classes=num_classes,
        norm=norm,
    )
