"""Model zoo: the architectures the paper evaluates, at configurable scale.

* :class:`ResNet` — residual CNN standing in for ResNet50/ResNet152
  (CIFAR10/ImageNet experiments; Figures 4, 7, 10, 11, 15, 17).
* :class:`Transformer` — encoder-decoder standing in for the 12-layer
  fairseq Transformer (IWSLT14/WMT17 experiments; Figures 2, 4, 9, 18).
* :class:`MLP` and :class:`LinearRegressionModel` — the quadratic/linear
  workloads of §3 and Figure 3(b).
"""

from repro.models.mlp import MLP
from repro.models.linear_model import LinearRegressionModel
from repro.models.resnet import BasicBlock, ResNet, resnet_tiny, resnet_deep
from repro.models.transformer import Transformer, TransformerConfig, transformer_tiny

__all__ = [
    "MLP",
    "LinearRegressionModel",
    "ResNet",
    "BasicBlock",
    "resnet_tiny",
    "resnet_deep",
    "Transformer",
    "TransformerConfig",
    "transformer_tiny",
]
