"""Multi-layer perceptron, the simplest deep workload used in tests and the
quickstart example."""

from __future__ import annotations

import numpy as np

from repro.nn import GELU, Linear, Module, ReLU, Sequential


class MLP(Module):
    """Fully connected network ``dims[0] -> dims[1] -> ... -> dims[-1]``.

    ``activation`` in {"relu", "gelu"}.  Many narrow layers make a useful
    fine-grained pipeline workload: with one stage per weight matrix a depth-k
    MLP has 2k pipeline stages (weights and biases pair into one stage each,
    following the paper's partitioning rule).
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        activation: str = "relu",
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("need at least input and output dims")
        act = {"relu": ReLU, "gelu": GELU}[activation]
        layers = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng, gain=np.sqrt(2.0)))
            if i < len(dims) - 2:
                layers.append(act())
        self.net = Sequential(*layers)
        self.dims = list(dims)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_out)

    def pipeline_chain(self) -> list:
        """The model as an ordered module chain, for the concurrent runtime
        (:mod:`repro.pipeline.stage_compute`)."""
        return [self.net]
