"""Linear regression model used for the Figure 3(b) stability heatmap."""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Module


class LinearRegressionModel(Module):
    """``y = x @ w`` (optionally + b), the 12-dimensional cpusmall-like
    workload of Figure 3(b).

    Exposes :meth:`largest_curvature` so experiments can plug the objective's
    largest Hessian eigenvalue into Lemma 1 (the black curve in Fig. 3b uses
    "the largest curvature of the objective in place of λ").
    """

    def __init__(self, in_features: int, rng: np.random.Generator, bias: bool = False):
        super().__init__()
        self.linear = Linear(in_features, 1, rng, bias=bias)
        self.in_features = in_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.linear(x)[:, 0]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.linear.backward(grad_out[:, None])

    @staticmethod
    def largest_curvature(x: np.ndarray) -> float:
        """Largest eigenvalue of the MSE Hessian ``2 XᵀX / n``."""
        n = x.shape[0]
        hessian = 2.0 * (x.T @ x) / n
        return float(np.linalg.eigvalsh(hessian)[-1])
