"""Encoder-decoder Transformer (Vaswani et al., 2017) with explicit backward.

Stands in for the paper's 12-layer fairseq Transformer on IWSLT14/WMT17.
Supports the paper's two embedding regimes (§4.1 footnote 3): independent
embeddings (IWSLT14-style) and shared embedding between encoder, decoder and
output projection (WMT17-style), which changes the pipeline stage count
(93 vs 91 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    PositionalEncoding,
    ReLU,
    causal_mask,
    padding_mask,
)
from repro.nn.module import Parameter


@dataclass
class TransformerConfig:
    """Architecture hyperparameters (defaults are the CPU-scale tiny model)."""

    src_vocab: int = 32
    tgt_vocab: int = 32
    d_model: int = 32
    num_heads: int = 2
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    d_ff: int = 64
    dropout: float = 0.0
    activation: str = "relu"
    share_embeddings: bool = False
    max_len: int = 64
    pad_id: int = 0
    bos_id: int = 1
    eos_id: int = 2

    def __post_init__(self):
        if self.share_embeddings and self.src_vocab != self.tgt_vocab:
            raise ValueError("shared embeddings require equal src/tgt vocab sizes")


class FeedForward(Module):
    """Position-wise feed-forward block with backward."""

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator, activation: str):
        super().__init__()
        self.fc1 = Linear(d_model, d_ff, rng)
        self.act = {"relu": ReLU, "gelu": GELU}[activation]()
        self.fc2 = Linear(d_ff, d_model, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad_out)))


class EncoderLayer(Module):
    """Post-norm encoder layer: LN(x + SA(x)); LN(x + FF(x))."""

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.self_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.drop1 = Dropout(cfg.dropout, rng)
        self.ln1 = LayerNorm(cfg.d_model)
        self.ff = FeedForward(cfg.d_model, cfg.d_ff, rng, cfg.activation)
        self.drop2 = Dropout(cfg.dropout, rng)
        self.ln2 = LayerNorm(cfg.d_model)

    def forward(self, x: np.ndarray, src_mask: np.ndarray | None) -> np.ndarray:
        a = self.drop1(self.self_attn(x, x, x, src_mask))
        x = self.ln1(x + a)
        f = self.drop2(self.ff(x))
        return self.ln2(x + f)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.ln2.backward(grad_out)
        g_ff = self.ff.backward(self.drop2.backward(g))
        g = g + g_ff
        g = self.ln1.backward(g)
        dq, dk, dv = self.self_attn.backward(self.drop1.backward(g))
        return g + dq + dk + dv


class DecoderLayer(Module):
    """Post-norm decoder layer with causal self-attention and cross-attention.

    ``backward`` returns ``(d_x, d_memory)``.
    """

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.self_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.drop1 = Dropout(cfg.dropout, rng)
        self.ln1 = LayerNorm(cfg.d_model)
        self.cross_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.drop2 = Dropout(cfg.dropout, rng)
        self.ln2 = LayerNorm(cfg.d_model)
        self.ff = FeedForward(cfg.d_model, cfg.d_ff, rng, cfg.activation)
        self.drop3 = Dropout(cfg.dropout, rng)
        self.ln3 = LayerNorm(cfg.d_model)

    def forward(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        tgt_mask: np.ndarray | None,
        mem_mask: np.ndarray | None,
    ) -> np.ndarray:
        a = self.drop1(self.self_attn(x, x, x, tgt_mask))
        x = self.ln1(x + a)
        c = self.drop2(self.cross_attn(x, memory, memory, mem_mask))
        x = self.ln2(x + c)
        f = self.drop3(self.ff(x))
        return self.ln3(x + f)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = self.ln3.backward(grad_out)
        g = g + self.ff.backward(self.drop3.backward(g))
        g = self.ln2.backward(g)
        dq, dk, dv = self.cross_attn.backward(self.drop2.backward(g))
        d_memory = dk + dv
        g = g + dq
        g = self.ln1.backward(g)
        dq, dk, dv = self.self_attn.backward(self.drop1.backward(g))
        return g + dq + dk + dv, d_memory


class TiedProjection(Module):
    """Output projection sharing the embedding matrix: ``logits = h Eᵀ``."""

    def __init__(self, embedding_weight: Parameter):
        super().__init__()
        # Hold a reference without re-registering the parameter (it already
        # belongs to the embedding module).
        self._tied = [embedding_weight]
        self._h: np.ndarray | None = None

    @property
    def weight(self) -> Parameter:
        return self._tied[0]

    def forward(self, h: np.ndarray) -> np.ndarray:
        self._h = h
        return h @ self.weight.data.T

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._h is None:
            raise RuntimeError("backward called before forward")
        d = self._h.shape[-1]
        flat_h = self._h.reshape(-1, d)
        flat_g = grad_out.reshape(-1, grad_out.shape[-1])
        self.weight.grad += flat_g.T @ flat_h
        return grad_out @ self.weight.data


class Transformer(Module):
    """Full encoder-decoder model: ``forward(src, tgt_in) -> (B, T, V)``.

    ``src``/``tgt_in`` are integer token arrays; positions equal to
    ``cfg.pad_id`` are masked out of attention.
    """

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.cfg = cfg
        self.src_embed = Embedding(cfg.src_vocab, cfg.d_model, rng, scale=True)
        if cfg.share_embeddings:
            self.tgt_embed = self.src_embed
        else:
            self.tgt_embed = Embedding(cfg.tgt_vocab, cfg.d_model, rng, scale=True)
        self.pos = PositionalEncoding(cfg.d_model, cfg.max_len)
        self.src_drop = Dropout(cfg.dropout, rng)
        self.tgt_drop = Dropout(cfg.dropout, rng)
        self.encoder_layers: list[EncoderLayer] = []
        for i in range(cfg.num_encoder_layers):
            self.encoder_layers.append(self.register(f"enc{i}", EncoderLayer(cfg, rng)))
        self.decoder_layers: list[DecoderLayer] = []
        for i in range(cfg.num_decoder_layers):
            self.decoder_layers.append(self.register(f"dec{i}", DecoderLayer(cfg, rng)))
        if cfg.share_embeddings:
            self.out_proj: Module = TiedProjection(self.src_embed.weight)
        else:
            self.out_proj = Linear(cfg.d_model, cfg.tgt_vocab, rng, bias=False)
        self._cache: tuple | None = None

    # -- masks ---------------------------------------------------------------
    def _masks(self, src: np.ndarray, tgt: np.ndarray):
        src_keep = padding_mask((src != self.cfg.pad_id).sum(axis=1), src.shape[1])
        tgt_pad = padding_mask((tgt != self.cfg.pad_id).sum(axis=1), tgt.shape[1])
        tgt_keep = tgt_pad & causal_mask(tgt.shape[1])
        return src_keep, tgt_keep

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> np.ndarray:
        src_mask, tgt_mask = self._masks(src, tgt_in)
        h = self.src_drop(self.pos(self.src_embed(src)))
        for layer in self.encoder_layers:
            h = layer(h, src_mask)
        memory = h
        d = self.tgt_drop(self.pos(self.tgt_embed(tgt_in)))
        for layer in self.decoder_layers:
            d = layer(d, memory, tgt_mask, src_mask)
        self._cache = (src.shape, tgt_in.shape)
        return self.out_proj(d)

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        g = self.out_proj.backward(grad_logits)
        d_memory_total: np.ndarray | None = None
        for layer in reversed(self.decoder_layers):
            g, d_mem = layer.backward(g)
            d_memory_total = d_mem if d_memory_total is None else d_memory_total + d_mem
        self.tgt_embed.backward(self.tgt_drop.backward(self.pos.backward(g)))
        g = d_memory_total
        for layer in reversed(self.encoder_layers):
            g = layer.backward(g)
        self.src_embed.backward(self.src_drop.backward(self.pos.backward(g)))
        return None

    # -- inference -------------------------------------------------------------
    def greedy_decode(self, src: np.ndarray, max_len: int | None = None) -> np.ndarray:
        """Greedy autoregressive decoding; returns (B, <=max_len) token ids
        including BOS, stopping each row at EOS."""
        cfg = self.cfg
        if max_len is None:
            max_len = min(cfg.max_len, src.shape[1] + 8)
        was_training = self.training
        self.eval()
        try:
            b = src.shape[0]
            out = np.full((b, 1), cfg.bos_id, dtype=np.int64)
            finished = np.zeros(b, dtype=bool)
            for _ in range(max_len - 1):
                logits = self.forward(src, out)
                next_tok = logits[:, -1, :].argmax(axis=-1)
                next_tok = np.where(finished, cfg.pad_id, next_tok)
                out = np.concatenate([out, next_tok[:, None]], axis=1)
                finished |= next_tok == cfg.eos_id
                if finished.all():
                    break
            return out
        finally:
            self.train(was_training)


def transformer_tiny(
    rng: np.random.Generator,
    vocab: int = 32,
    share_embeddings: bool = False,
    num_layers: int = 2,
    dropout: float = 0.0,
) -> Transformer:
    """12-layer-Transformer stand-in at CPU scale."""
    cfg = TransformerConfig(
        src_vocab=vocab,
        tgt_vocab=vocab,
        d_model=32,
        num_heads=2,
        num_encoder_layers=num_layers,
        num_decoder_layers=num_layers,
        d_ff=64,
        dropout=dropout,
        share_embeddings=share_embeddings,
    )
    return Transformer(cfg, rng)
