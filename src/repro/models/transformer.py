"""Encoder-decoder Transformer (Vaswani et al., 2017) with explicit backward.

Stands in for the paper's 12-layer fairseq Transformer on IWSLT14/WMT17.
Supports the paper's two embedding regimes (§4.1 footnote 3): independent
embeddings (IWSLT14-style) and shared embedding between encoder, decoder and
output projection (WMT17-style), which changes the pipeline stage count
(93 vs 91 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    PositionalEncoding,
    ReLU,
    causal_mask,
    padding_mask,
)
from repro.nn.module import Parameter


@dataclass
class TransformerConfig:
    """Architecture hyperparameters (defaults are the CPU-scale tiny model).

    ``dropout_seed`` switches every dropout in the model to counter-based
    mask generation (:mod:`repro.nn.dropout`): masks become pure functions
    of (seed, layer, optimizer step, microbatch), which is what allows
    training-mode dropout on the concurrent pipeline runtimes — every
    backend and worker count derives bit-identical masks.  ``None`` keeps
    the legacy stream-mode draws (simulator only).
    """

    src_vocab: int = 32
    tgt_vocab: int = 32
    d_model: int = 32
    num_heads: int = 2
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    d_ff: int = 64
    dropout: float = 0.0
    activation: str = "relu"
    share_embeddings: bool = False
    max_len: int = 64
    pad_id: int = 0
    bos_id: int = 1
    eos_id: int = 2
    dropout_seed: int | None = None

    def __post_init__(self):
        if self.share_embeddings and self.src_vocab != self.tgt_vocab:
            raise ValueError("shared embeddings require equal src/tgt vocab sizes")


class FeedForward(Module):
    """Position-wise feed-forward block with backward."""

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator, activation: str):
        super().__init__()
        self.fc1 = Linear(d_model, d_ff, rng)
        self.act = {"relu": ReLU, "gelu": GELU}[activation]()
        self.fc2 = Linear(d_ff, d_model, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad_out)))


class EncoderLayer(Module):
    """Post-norm encoder layer: LN(x + SA(x)); LN(x + FF(x))."""

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.self_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.drop1 = Dropout(cfg.dropout, rng)
        self.ln1 = LayerNorm(cfg.d_model)
        self.ff = FeedForward(cfg.d_model, cfg.d_ff, rng, cfg.activation)
        self.drop2 = Dropout(cfg.dropout, rng)
        self.ln2 = LayerNorm(cfg.d_model)

    def forward(self, x: np.ndarray, src_mask: np.ndarray | None) -> np.ndarray:
        a = self.drop1(self.self_attn(x, x, x, src_mask))
        x = self.ln1(x + a)
        f = self.drop2(self.ff(x))
        return self.ln2(x + f)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.ln2.backward(grad_out)
        g_ff = self.ff.backward(self.drop2.backward(g))
        g = g + g_ff
        g = self.ln1.backward(g)
        dq, dk, dv = self.self_attn.backward(self.drop1.backward(g))
        return g + dq + dk + dv


class DecoderLayer(Module):
    """Post-norm decoder layer with causal self-attention and cross-attention.

    ``backward`` returns ``(d_x, d_memory)``.
    """

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.self_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.drop1 = Dropout(cfg.dropout, rng)
        self.ln1 = LayerNorm(cfg.d_model)
        self.cross_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.drop2 = Dropout(cfg.dropout, rng)
        self.ln2 = LayerNorm(cfg.d_model)
        self.ff = FeedForward(cfg.d_model, cfg.d_ff, rng, cfg.activation)
        self.drop3 = Dropout(cfg.dropout, rng)
        self.ln3 = LayerNorm(cfg.d_model)

    def forward(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        tgt_mask: np.ndarray | None,
        mem_mask: np.ndarray | None,
    ) -> np.ndarray:
        a = self.drop1(self.self_attn(x, x, x, tgt_mask))
        x = self.ln1(x + a)
        c = self.drop2(self.cross_attn(x, memory, memory, mem_mask))
        x = self.ln2(x + c)
        f = self.drop3(self.ff(x))
        return self.ln3(x + f)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = self.ln3.backward(grad_out)
        g = g + self.ff.backward(self.drop3.backward(g))
        g = self.ln2.backward(g)
        dq, dk, dv = self.cross_attn.backward(self.drop2.backward(g))
        d_memory = dk + dv
        g = g + dq
        g = self.ln1.backward(g)
        dq, dk, dv = self.self_attn.backward(self.drop1.backward(g))
        return g + dq + dk + dv, d_memory


class TiedProjection(Module):
    """Output projection sharing the embedding matrix: ``logits = h Eᵀ``.

    The tied matrix lives in the embedding's pipeline stage but is *used*
    at the end of the decoder, so under stage-graph slicing this module
    runs on a different worker than the parameter's owner.  Two protocols
    (see :mod:`repro.pipeline.stage_compute`) make that bit-exact:

    * ``pipeline_borrows`` / ``load_borrowed`` — the worker hands this
      module the correctly versioned weight array for each forward /
      backward / recompute slot instead of rebinding the shared
      ``Parameter`` (which the owning worker may concurrently point at a
      different version).  Outside sliced execution (``_active_weight``
      unset, or eval-mode decoding) the live ``weight.data`` is read.
    * ``deferred_grads`` — while deferral is active (the pipeline backends
      enable it for the duration of each train step and disable it at the
      fold), the projection's gradient contribution accumulates in the
      module-local ``tied_grad`` buffer and is folded into ``weight.grad``
      once per minibatch, after all microbatches.  The fold order is
      identical in the simulator and both runtimes, which keeps tied-weight
      gradients bitwise equal even though the embedding and projection
      contributions are computed on different workers.  Outside a train
      step (plain ``model.backward`` use, e.g. gradcheck — including after
      the model trained on a pipeline backend), gradients flow straight
      into ``weight.grad`` as usual.
    """

    def __init__(self, embedding_weight: Parameter):
        super().__init__()
        # Hold a reference without re-registering the parameter (it already
        # belongs to the embedding module).
        self._tied = [embedding_weight]
        self._h: np.ndarray | None = None
        self._active_weight: np.ndarray | None = None
        self._defer = False
        self.tied_grad = np.zeros_like(embedding_weight.data)

    @property
    def weight(self) -> Parameter:
        return self._tied[0]

    def _w(self) -> np.ndarray:
        if self.training and self._active_weight is not None:
            return self._active_weight
        return self.weight.data

    # -- stage-graph protocols -------------------------------------------------
    def pipeline_borrows(self) -> list[Parameter]:
        return [self.weight]

    def load_borrowed(self, arrays: list[np.ndarray]) -> None:
        self._active_weight = arrays[0]

    def unload_borrowed(self) -> None:
        """Back to the live ``weight.data`` — called once sliced execution
        finishes, so later monolithic forwards never read a stale version
        array."""
        self._active_weight = None

    def enable_deferred_grads(self) -> None:
        self._defer = True

    def disable_deferred_grads(self) -> None:
        self._defer = False

    def deferred_grads(self) -> list[tuple[Parameter, np.ndarray]]:
        return [(self.weight, self.tied_grad)]

    # -- compute ---------------------------------------------------------------
    def forward(self, h: np.ndarray) -> np.ndarray:
        self._h = h
        return h @ self._w().T

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._h is None:
            raise RuntimeError("backward called before forward")
        d = self._h.shape[-1]
        flat_h = self._h.reshape(-1, d)
        flat_g = grad_out.reshape(-1, grad_out.shape[-1])
        target = self.tied_grad if self._defer else self.weight.grad
        target += flat_g.T @ flat_h
        return grad_out @ self._w()


class Transformer(Module):
    """Full encoder-decoder model: ``forward(src, tgt_in) -> (B, T, V)``.

    ``src``/``tgt_in`` are integer token arrays; positions equal to
    ``cfg.pad_id`` are masked out of attention.
    """

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.cfg = cfg
        self.src_embed = Embedding(cfg.src_vocab, cfg.d_model, rng, scale=True)
        if cfg.share_embeddings:
            self.tgt_embed = self.src_embed
        else:
            self.tgt_embed = Embedding(cfg.tgt_vocab, cfg.d_model, rng, scale=True)
        self.pos = PositionalEncoding(cfg.d_model, cfg.max_len)
        self.src_drop = Dropout(cfg.dropout, rng)
        self.tgt_drop = Dropout(cfg.dropout, rng)
        self.encoder_layers: list[EncoderLayer] = []
        for i in range(cfg.num_encoder_layers):
            self.encoder_layers.append(self.register(f"enc{i}", EncoderLayer(cfg, rng)))
        self.decoder_layers: list[DecoderLayer] = []
        for i in range(cfg.num_decoder_layers):
            self.decoder_layers.append(self.register(f"dec{i}", DecoderLayer(cfg, rng)))
        if cfg.share_embeddings:
            self.out_proj: Module = TiedProjection(self.src_embed.weight)
        else:
            self.out_proj = Linear(cfg.d_model, cfg.tgt_vocab, rng, bias=False)
        self._cache: tuple | None = None
        if cfg.dropout_seed is not None:
            # Counter-based masks: every dropout keyed by its position in
            # the (deterministic) module traversal, so a process worker's
            # rebuilt replica derives the same layer ids as the driver.
            drops = [m for m in self.modules() if isinstance(m, Dropout)]
            for i, m in enumerate(drops):
                m.to_counter(cfg.dropout_seed, i)

    # -- masks ---------------------------------------------------------------
    def _masks(self, src: np.ndarray, tgt: np.ndarray):
        src_keep = padding_mask((src != self.cfg.pad_id).sum(axis=1), src.shape[1])
        tgt_pad = padding_mask((tgt != self.cfg.pad_id).sum(axis=1), tgt.shape[1])
        tgt_keep = tgt_pad & causal_mask(tgt.shape[1])
        return src_keep, tgt_keep

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> np.ndarray:
        src_mask, tgt_mask = self._masks(src, tgt_in)
        h = self.src_drop(self.pos(self.src_embed(src)))
        for layer in self.encoder_layers:
            h = layer(h, src_mask)
        memory = h
        d = self.tgt_drop(self.pos(self.tgt_embed(tgt_in)))
        for layer in self.decoder_layers:
            d = layer(d, memory, tgt_mask, src_mask)
        self._cache = (src.shape, tgt_in.shape)
        return self.out_proj(d)

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        g = self.out_proj.backward(grad_logits)
        d_memory_total: np.ndarray | None = None
        for layer in reversed(self.decoder_layers):
            g, d_mem = layer.backward(g)
            d_memory_total = d_mem if d_memory_total is None else d_memory_total + d_mem
        self.tgt_embed.backward(self.tgt_drop.backward(self.pos.backward(g)))
        g = d_memory_total
        for layer in reversed(self.encoder_layers):
            g = layer.backward(g)
        self.src_embed.backward(self.src_drop.backward(self.pos.backward(g)))
        return None

    # -- pipeline slicing -------------------------------------------------------
    def pipeline_graph(self, granularity: str = "layer"):
        """The two-stream stage-program graph (see
        :mod:`repro.pipeline.stage_compute`): the encoder and the target
        embedding run as parallel chains that merge at the decoder's
        cross-attention join; the decoder chain carries
        ``(d, memory, tgt_keep, src_keep)`` so every decoder slice can
        attend over the encoder memory, and the memory gradient accumulates
        back along the chain in the exact order of :meth:`backward`.

        ``granularity="layer"`` keeps one chain element per encoder/decoder
        layer; ``"sublayer"`` splits every layer into its attention / FFN
        (and, in the decoder, cross-attention) sub-chains — each sub-chain
        one element, each still ending at its norm+residual — so the finest
        partition yields strictly more workers than layers (the PipeMare
        §4.1 direction: asynchronous pipelines get faster as stages get
        finer).  Both granularities execute the exact arithmetic of
        :meth:`forward`/:meth:`backward`, element by element.
        """
        from repro.pipeline.partition import GRANULARITIES
        from repro.pipeline.stage_compute import GraphNode, StageGraph

        if granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r} (expected one of "
                f"{GRANULARITIES})"
            )
        enc: list[Module] = [_SrcStream(self)]
        dec: list[Module] = [_DecoderJoin()]
        if granularity == "sublayer":
            for layer in self.encoder_layers:
                enc.append(_EncoderAttnSlice(layer))
                enc.append(_EncoderFFNSlice(layer))
            for layer in self.decoder_layers:
                dec.append(_DecoderSelfAttnSlice(layer))
                dec.append(_DecoderCrossAttnSlice(layer))
                dec.append(_DecoderFFNSlice(layer))
        else:
            enc.extend(_EncoderSlice(layer) for layer in self.encoder_layers)
            dec.extend(_DecoderSlice(layer) for layer in self.decoder_layers)
        dec.append(_OutputSlice(self.out_proj))
        return StageGraph([
            GraphNode("encoder", tuple(enc), ("ext:0",)),
            GraphNode("tgt-embed", (_TgtStream(self),), ("ext:1",)),
            GraphNode("decoder", tuple(dec), ("tgt-embed", "encoder")),
        ])

    # -- inference -------------------------------------------------------------
    def greedy_decode(self, src: np.ndarray, max_len: int | None = None) -> np.ndarray:
        """Greedy autoregressive decoding; returns (B, <=max_len) token ids
        including BOS, stopping each row at EOS."""
        cfg = self.cfg
        if max_len is None:
            max_len = min(cfg.max_len, src.shape[1] + 8)
        was_training = self.training
        self.eval()
        try:
            b = src.shape[0]
            out = np.full((b, 1), cfg.bos_id, dtype=np.int64)
            finished = np.zeros(b, dtype=bool)
            for _ in range(max_len - 1):
                logits = self.forward(src, out)
                next_tok = logits[:, -1, :].argmax(axis=-1)
                next_tok = np.where(finished, cfg.pad_id, next_tok)
                out = np.concatenate([out, next_tok[:, None]], axis=1)
                finished |= next_tok == cfg.eos_id
                if finished.all():
                    break
            return out
        finally:
            self.train(was_training)


# -- stage-graph elements ------------------------------------------------------
#
# Thin wrappers over the model's own submodules (no parameters of their own
# beyond what they wrap) that give each piece of the two-stream forward a
# single-payload chain signature.  Masks are computed once at the stream
# sources and travel inside the payloads, so every slice sees bit-identical
# mask arrays to the monolithic forward.


class _SrcStream(Module):
    """``src tokens → (h, src_keep)``: source embedding + positions + dropout
    and the padding mask every attention downstream reuses."""

    def __init__(self, model: Transformer):
        super().__init__()
        self.embed = model.src_embed
        self.pos = model.pos
        self.drop = model.src_drop
        self.pad_id = model.cfg.pad_id

    def forward(self, src: np.ndarray):
        src_keep = padding_mask((src != self.pad_id).sum(axis=1), src.shape[1])
        h = self.drop(self.pos(self.embed(src)))
        return h, src_keep

    def backward(self, grad: np.ndarray):
        self.embed.backward(self.drop.backward(self.pos.backward(grad)))
        return None  # no gradient flows into integer tokens


class _TgtStream(Module):
    """``tgt tokens → (d, tgt_keep)``: target embedding stream plus the
    causal+padding mask.  With shared embeddings this reuses the *same*
    embedding module as :class:`_SrcStream`; the slicer keeps both call
    sites on one worker so the cache-stack LIFO and gradient order match
    the monolithic backward."""

    def __init__(self, model: Transformer):
        super().__init__()
        self.embed = model.tgt_embed
        self.pos = model.pos
        self.drop = model.tgt_drop
        self.pad_id = model.cfg.pad_id

    def forward(self, tgt_in: np.ndarray):
        tgt_pad = padding_mask((tgt_in != self.pad_id).sum(axis=1), tgt_in.shape[1])
        tgt_keep = tgt_pad & causal_mask(tgt_in.shape[1])
        d = self.drop(self.pos(self.embed(tgt_in)))
        return d, tgt_keep

    def backward(self, grad: np.ndarray):
        self.embed.backward(self.drop.backward(self.pos.backward(grad)))
        return None


class _EncoderSlice(Module):
    """One encoder layer on the ``(h, src_keep)`` payload."""

    def __init__(self, layer: EncoderLayer):
        super().__init__()
        self.layer = layer

    def forward(self, payload):
        h, src_keep = payload
        return self.layer(h, src_keep), src_keep

    def backward(self, grad: np.ndarray):
        return self.layer.backward(grad)


class _EncoderAttnSlice(Module):
    """The self-attention sub-chain of one encoder layer (attention +
    dropout + norm/residual) on the ``(h, src_keep)`` payload — the first
    half of :meth:`EncoderLayer.forward`, as its own chain element so the
    sublayer granularity can place it on its own worker.  Holds the layer's
    *submodules* (not the layer), so each sub-chain's parameters slice
    independently."""

    def __init__(self, layer: EncoderLayer):
        super().__init__()
        self.attn = layer.self_attn
        self.drop = layer.drop1
        self.ln = layer.ln1

    def forward(self, payload):
        h, src_keep = payload
        a = self.drop(self.attn(h, h, h, src_keep))
        return self.ln(h + a), src_keep

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.ln.backward(grad)
        dq, dk, dv = self.attn.backward(self.drop.backward(g))
        return g + dq + dk + dv


class _EncoderFFNSlice(Module):
    """The feed-forward sub-chain of one encoder layer (FFN + dropout +
    norm/residual) — the second half of :meth:`EncoderLayer.forward`."""

    def __init__(self, layer: EncoderLayer):
        super().__init__()
        self.ff = layer.ff
        self.drop = layer.drop2
        self.ln = layer.ln2

    def forward(self, payload):
        h, src_keep = payload
        f = self.drop(self.ff(h))
        return self.ln(h + f), src_keep

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.ln.backward(grad)
        g_ff = self.ff.backward(self.drop.backward(g))
        return g + g_ff


class _DecoderJoin(Module):
    """The cross-attention join: merges the target stream and the encoder
    output into the decoder payload.  Backward splits the gradient back
    per input, in node-input order (tgt stream, encoder)."""

    def forward(self, tgt_payload, enc_payload):
        d, tgt_keep = tgt_payload
        memory, src_keep = enc_payload
        return d, memory, tgt_keep, src_keep

    def backward(self, grad):
        g_d, g_mem = grad
        return g_d, g_mem


class _DecoderSlice(Module):
    """One decoder layer on the ``(d, memory, tgt_keep, src_keep)`` payload.
    The backward payload is ``(g_d, g_mem)``; each slice folds its
    cross-attention memory gradient into the running total with the same
    operand order as :meth:`Transformer.backward`."""

    def __init__(self, layer: DecoderLayer):
        super().__init__()
        self.layer = layer

    def forward(self, payload):
        d, memory, tgt_keep, src_keep = payload
        return self.layer(d, memory, tgt_keep, src_keep), memory, tgt_keep, src_keep

    def backward(self, grad):
        g_d, g_mem = grad
        g_d, d_mem = self.layer.backward(g_d)
        return g_d, (d_mem if g_mem is None else g_mem + d_mem)


class _DecoderSelfAttnSlice(Module):
    """The causal self-attention sub-chain of one decoder layer on the
    ``(d, memory, tgt_keep, src_keep)`` payload; backward payload is
    ``(g_d, g_mem)`` with the memory gradient passed through untouched."""

    def __init__(self, layer: DecoderLayer):
        super().__init__()
        self.attn = layer.self_attn
        self.drop = layer.drop1
        self.ln = layer.ln1

    def forward(self, payload):
        d, memory, tgt_keep, src_keep = payload
        a = self.drop(self.attn(d, d, d, tgt_keep))
        return self.ln(d + a), memory, tgt_keep, src_keep

    def backward(self, grad):
        g_d, g_mem = grad
        g = self.ln.backward(g_d)
        dq, dk, dv = self.attn.backward(self.drop.backward(g))
        return g + dq + dk + dv, g_mem


class _DecoderCrossAttnSlice(Module):
    """The cross-attention sub-chain of one decoder layer: attends over the
    encoder memory, and folds its memory gradient ``dk + dv`` into the
    running total with the same operand order as
    :meth:`DecoderLayer.backward` / :class:`_DecoderSlice`."""

    def __init__(self, layer: DecoderLayer):
        super().__init__()
        self.attn = layer.cross_attn
        self.drop = layer.drop2
        self.ln = layer.ln2

    def forward(self, payload):
        d, memory, tgt_keep, src_keep = payload
        c = self.drop(self.attn(d, memory, memory, src_keep))
        return self.ln(d + c), memory, tgt_keep, src_keep

    def backward(self, grad):
        g_d, g_mem = grad
        g = self.ln.backward(g_d)
        dq, dk, dv = self.attn.backward(self.drop.backward(g))
        d_mem = dk + dv
        return g + dq, (d_mem if g_mem is None else g_mem + d_mem)


class _DecoderFFNSlice(Module):
    """The feed-forward sub-chain of one decoder layer."""

    def __init__(self, layer: DecoderLayer):
        super().__init__()
        self.ff = layer.ff
        self.drop = layer.drop3
        self.ln = layer.ln3

    def forward(self, payload):
        d, memory, tgt_keep, src_keep = payload
        f = self.drop(self.ff(d))
        return self.ln(d + f), memory, tgt_keep, src_keep

    def backward(self, grad):
        g_d, g_mem = grad
        g = self.ln.backward(g_d)
        g = g + self.ff.backward(self.drop.backward(g))
        return g, g_mem


class _OutputSlice(Module):
    """The output projection: decoder payload → logits (the graph sink).
    Starts the backward payload with no memory gradient, mirroring the
    ``d_memory_total = None`` start of :meth:`Transformer.backward`."""

    def __init__(self, proj: Module):
        super().__init__()
        self.proj = proj

    def forward(self, payload):
        d, memory, tgt_keep, src_keep = payload
        return self.proj(d)

    def backward(self, grad_logits: np.ndarray):
        return self.proj.backward(grad_logits), None


def transformer_tiny(
    rng: np.random.Generator,
    vocab: int = 32,
    share_embeddings: bool = False,
    num_layers: int = 2,
    dropout: float = 0.0,
    dropout_seed: int | None = None,
) -> Transformer:
    """12-layer-Transformer stand-in at CPU scale."""
    cfg = TransformerConfig(
        src_vocab=vocab,
        tgt_vocab=vocab,
        d_model=32,
        num_heads=2,
        num_encoder_layers=num_layers,
        num_decoder_layers=num_layers,
        d_ff=64,
        dropout=dropout,
        share_embeddings=share_embeddings,
        dropout_seed=dropout_seed,
    )
    return Transformer(cfg, rng)
