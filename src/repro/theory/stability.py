"""Stability tests and the closed-form thresholds of Lemmas 1–3.

A linear recurrence with characteristic polynomial ``p`` is stable iff every
root of ``p`` lies strictly inside the unit disk.  :func:`max_stable_alpha`
finds the largest stable step size for any polynomial family numerically,
which the benchmarks compare against the lemma bounds.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def spectral_radius(coeffs: np.ndarray) -> float:
    """Largest root magnitude of the polynomial."""
    coeffs = np.asarray(coeffs, dtype=float)
    # strip exact leading zeros so np.roots sees the true degree
    nz = np.flatnonzero(coeffs)
    if nz.size == 0:
        raise ValueError("zero polynomial has no spectral radius")
    coeffs = coeffs[nz[0]:]
    if len(coeffs) == 1:
        return 0.0
    return float(np.abs(np.roots(coeffs)).max())


def is_stable(coeffs: np.ndarray, tol: float = 1e-9) -> bool:
    """True iff all roots are strictly inside the unit disk (with tolerance)."""
    return spectral_radius(coeffs) < 1.0 - tol


def max_stable_alpha(
    poly_of_alpha: Callable[[float], np.ndarray],
    alpha_lo: float = 1e-8,
    alpha_hi: float = 16.0,
    tol: float = 1e-6,
    max_iters: int = 200,
) -> float:
    """Largest α for which ``poly_of_alpha(α)`` is stable, via bisection.

    Assumes the system is stable at ``alpha_lo`` (raises otherwise) and
    scans geometrically for an unstable upper bracket before bisecting.
    Returns ``alpha_hi`` if no instability is found below it.
    """
    if not is_stable(poly_of_alpha(alpha_lo), tol=0.0):
        raise ValueError(f"system already unstable at alpha_lo={alpha_lo}")
    lo = alpha_lo
    hi = alpha_lo
    while hi < alpha_hi:
        hi = min(hi * 2.0, alpha_hi)
        if not is_stable(poly_of_alpha(hi), tol=0.0):
            break
        lo = hi
    else:
        return alpha_hi
    if is_stable(poly_of_alpha(hi), tol=0.0):
        return alpha_hi
    for _ in range(max_iters):
        mid = 0.5 * (lo + hi)
        if is_stable(poly_of_alpha(mid), tol=0.0):
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * max(1.0, lo):
            break
    return lo


# -- closed forms ----------------------------------------------------------

def lemma1_alpha_max(tau: float, lam: float) -> float:
    """Lemma 1: delayed SGD is stable iff
    ``0 ≤ α ≤ (2/λ)·sin(π/(4τ+2)) = O(1/(λτ))``."""
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    return (2.0 / lam) * np.sin(np.pi / (4.0 * tau + 2.0))


def lemma2_alpha_bound(tau_fwd: float, tau_bkwd: float, lam: float, delta: float) -> float:
    """Lemma 2 upper envelope: some α below
    ``min(2/(Δ(τf−τb)), (2/λ)sin(π/(4τf+2)))`` is already unstable."""
    if delta <= 0:
        raise ValueError(f"lemma 2 is stated for delta > 0, got {delta}")
    if tau_bkwd >= tau_fwd:
        raise ValueError("lemma 2 requires tau_fwd > tau_bkwd")
    return min(2.0 / (delta * (tau_fwd - tau_bkwd)), lemma1_alpha_max(tau_fwd, lam))


def lemma3_alpha_bound(tau: float, lam: float) -> float:
    """Lemma 3: for any momentum β ∈ (0, 1] some α ≤ (4/λ)sin(π/(4τ+2))
    is unstable — momentum cannot escape the O(1/τ) threshold."""
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    return (4.0 / lam) * np.sin(np.pi / (4.0 * tau + 2.0))


def double_root_alpha(tau: int, lam: float) -> float:
    """Lemma 1's isolated double-root location:
    ``α = 1/(λ(τ+1)) · (τ/(τ+1))^τ`` with root at ``ω = τ/(τ+1)``."""
    if tau < 1:
        raise ValueError(f"double root requires tau >= 1, got {tau}")
    return (1.0 / (lam * (tau + 1))) * (tau / (tau + 1)) ** tau


def t2_gamma(tau_fwd: float, tau_bkwd: float) -> float:
    """The Δ-cancelling decay rate ``γ = 1 − 2/(τf−τb+1)`` (App. B.5)."""
    if tau_bkwd >= tau_fwd:
        raise ValueError("t2_gamma requires tau_fwd > tau_bkwd")
    return 1.0 - 2.0 / (tau_fwd - tau_bkwd + 1.0)


def t2_decay_from_gamma(tau_fwd: float, tau_bkwd: float, gamma: float | None = None) -> float:
    """``D = γ^{τf−τb}``; with the canonical γ this tends to e^{−2} ≈ 0.135,
    the paper's default neighbourhood for D."""
    if gamma is None:
        gamma = t2_gamma(tau_fwd, tau_bkwd)
    return float(gamma ** (tau_fwd - tau_bkwd))


def lemma1_crossing_family(tau: int, lam: float, n: int) -> tuple[float, complex]:
    """The n-th unit-circle root crossing from the Lemma 1 proof (App. B.2).

    As α grows from 0, the τ+1 roots of ``p(ω) = ω^{τ+1} − ω^τ + αλ`` leave
    the unit disk through the points

        ``α_n = (2/λ)·sin(θ_n)``,  ``ω_n = exp(±2iθ_n)``,
        ``θ_n = (π + 4πn)/(4τ + 2)``,

    for ``n ∈ {0, 1, …, ⌊τ/2⌋}``.  ``n = 0`` gives the first (smallest-α)
    crossing — the Lemma 1 stability threshold.  Returns ``(α_n, ω_n)`` with
    the upper-half-plane root.

    Erratum note: the proof's substitution ``ω = (1−iy)/(1+iy)`` with
    ``Arg(1+iy) = θ_n`` gives ``Arg(ω) = −2θ_n``; the paper's in-line
    statement "Arg(ω) = ±(π+4πn)/(4τ+2)" omits that factor of 2.  With the
    factor restored, every family member is an *exact* unit-circle root of
    eq. (4) (verified to machine precision in the tests); without it, none
    are.
    """
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    if tau < 1:
        raise ValueError(f"crossing family requires tau >= 1, got {tau}")
    if not 0 <= n <= tau // 2:
        raise ValueError(f"n must be in [0, {tau // 2}] for tau={tau}, got {n}")
    theta = (np.pi + 4.0 * np.pi * n) / (4.0 * tau + 2.0)
    alpha = (2.0 / lam) * np.sin(theta)
    return float(alpha), complex(np.cos(2.0 * theta), np.sin(2.0 * theta))
