"""Stability theory for fixed-delay asynchronous SGD on quadratics.

Implements the analytical machinery of §3 and Appendices B/D:

* characteristic polynomials of the update recurrences (eqs. 4, 6, 13/14,
  the T2-corrected polynomial of App. B.5, and the recompute polynomial of
  App. D.1);
* companion matrices and spectral-radius stability tests;
* the closed-form thresholds of Lemmas 1–3 and the γ/D rules of T2;
* direct trajectory simulators for the 1-D quadratic model (Figures 3a, 5a)
  and delayed least squares (Figure 3b).
"""

from repro.theory.polynomials import (
    char_poly_delayed_sgd,
    char_poly_discrepancy,
    char_poly_momentum,
    char_poly_recompute,
    char_poly_t2,
    poly_add,
    poly_eval,
    poly_mul,
    poly_scale,
)
from repro.theory.companion import companion_matrix, companion_from_poly
from repro.theory.stability import (
    double_root_alpha,
    is_stable,
    lemma1_alpha_max,
    lemma1_crossing_family,
    lemma2_alpha_bound,
    lemma3_alpha_bound,
    max_stable_alpha,
    spectral_radius,
    t2_decay_from_gamma,
    t2_gamma,
)
from repro.theory.quadratic import (
    QuadraticTrajectory,
    simulate_delayed_least_squares,
    simulate_delayed_sgd,
    simulate_discrepancy_sgd,
    simulate_momentum_sgd,
    simulate_recompute_sgd,
    simulate_t2_sgd,
)

__all__ = [
    "char_poly_delayed_sgd",
    "char_poly_discrepancy",
    "char_poly_momentum",
    "char_poly_recompute",
    "char_poly_t2",
    "poly_add",
    "poly_eval",
    "poly_mul",
    "poly_scale",
    "companion_matrix",
    "companion_from_poly",
    "spectral_radius",
    "is_stable",
    "max_stable_alpha",
    "lemma1_alpha_max",
    "lemma1_crossing_family",
    "lemma2_alpha_bound",
    "lemma3_alpha_bound",
    "double_root_alpha",
    "t2_gamma",
    "t2_decay_from_gamma",
    "QuadraticTrajectory",
    "simulate_delayed_sgd",
    "simulate_discrepancy_sgd",
    "simulate_momentum_sgd",
    "simulate_t2_sgd",
    "simulate_recompute_sgd",
    "simulate_delayed_least_squares",
]
