"""Companion-matrix construction (§3.1, eq. 3).

The delayed-SGD recurrence is a linear system ``W_{t+1} = C W_t + α η_t e_1``
whose convergence is governed by the eigenvalues of ``C``; those eigenvalues
are exactly the roots of the characteristic polynomial, which the tests
verify numerically.
"""

from __future__ import annotations

import numpy as np


def companion_from_poly(coeffs: np.ndarray) -> np.ndarray:
    """Companion matrix of a (monic, possibly after normalisation) polynomial
    given highest-degree-first coefficients."""
    coeffs = np.asarray(coeffs, dtype=float)
    if len(coeffs) < 2:
        raise ValueError("polynomial must have degree >= 1")
    if coeffs[0] == 0:
        raise ValueError("leading coefficient must be nonzero")
    monic = coeffs / coeffs[0]
    n = len(monic) - 1
    c = np.zeros((n, n))
    c[0, :] = -monic[1:]
    if n > 1:
        c[1:, :-1] = np.eye(n - 1)
    return c


def companion_matrix(tau: int, alpha: float, lam: float) -> np.ndarray:
    """The explicit ``(τ+1)×(τ+1)`` companion matrix of eq. (3):

    first row ``[1, 0, ..., 0, −αλ]``, subdiagonal identity.
    """
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    n = tau + 1
    c = np.zeros((n, n))
    c[0, 0] = 1.0
    c[0, -1] = -alpha * lam
    if n > 1:
        c[1:, :-1] = np.eye(n - 1)
    return c
