"""Direct trajectory simulation of delayed SGD on the quadratic model
``f(w) = (λ/2) w²`` and on delayed least squares.

These generate the raw series behind Figures 3(a), 5(a) and the Figure 3(b)
heatmap.  Trajectories that overflow are truncated and flagged as diverged
(the heatmap paints those cells "∞").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# A trajectory exceeding this is unambiguously diverging; kept modest so
# short simulations flag instability well before float overflow.
_DIVERGE_CAP = 1e30


@dataclass
class QuadraticTrajectory:
    """Result of a 1-D quadratic simulation."""

    losses: np.ndarray
    iterates: np.ndarray
    diverged: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        return float(self.losses[-1])


def _run_scalar_recurrence(step_fn, w0: float, tau_max: int, steps: int, lam: float):
    """Drive a scalar recurrence with history buffer; returns a trajectory.

    ``step_fn(t, history) -> w_{t+1}`` where ``history[k] = w_{t-k}`` for
    ``k = 0..tau_max``.
    """
    history = np.full(tau_max + 1, float(w0))
    iterates = np.empty(steps + 1)
    iterates[0] = w0
    diverged = False
    for t in range(steps):
        w_next = step_fn(t, history)
        if not np.isfinite(w_next) or abs(w_next) > _DIVERGE_CAP:
            diverged = True
            iterates[t + 1:] = np.sign(w_next) * _DIVERGE_CAP if np.isfinite(w_next) else _DIVERGE_CAP
            break
        history = np.roll(history, 1)
        history[0] = w_next
        iterates[t + 1] = w_next
    losses = 0.5 * lam * np.minimum(np.abs(iterates), _DIVERGE_CAP) ** 2
    return QuadraticTrajectory(losses=losses, iterates=iterates, diverged=diverged)


def simulate_delayed_sgd(
    lam: float,
    alpha: float,
    tau: int,
    steps: int,
    noise_std: float = 1.0,
    rng: np.random.Generator | None = None,
    w0: float = 0.0,
) -> QuadraticTrajectory:
    """Eq. (2): ``w_{t+1} = w_t − αλ w_{t−τ} + α η_t`` (Figure 3a)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    noise = rng.normal(0.0, noise_std, size=steps) if noise_std > 0 else np.zeros(steps)

    def step(t, h):
        return h[0] - alpha * lam * h[tau] + alpha * noise[t]

    traj = _run_scalar_recurrence(step, w0, tau, steps, lam)
    traj.meta.update(alpha=alpha, tau=tau, lam=lam)
    return traj


def simulate_momentum_sgd(
    lam: float,
    alpha: float,
    tau: int,
    beta: float,
    steps: int,
    noise_std: float = 1.0,
    rng: np.random.Generator | None = None,
    w0: float = 0.0,
) -> QuadraticTrajectory:
    """App. B.3: ``w_{t+1} − w_t = β(w_t − w_{t−1}) − αλ w_{t−τ} + αη_t``."""
    rng = rng if rng is not None else np.random.default_rng(0)
    noise = rng.normal(0.0, noise_std, size=steps) if noise_std > 0 else np.zeros(steps)
    tau_max = max(tau, 1)

    def step(t, h):
        return h[0] + beta * (h[0] - h[1]) - alpha * lam * h[tau] + alpha * noise[t]

    traj = _run_scalar_recurrence(step, w0, tau_max, steps, lam)
    traj.meta.update(alpha=alpha, tau=tau, beta=beta, lam=lam)
    return traj


def simulate_discrepancy_sgd(
    lam: float,
    alpha: float,
    tau_fwd: int,
    tau_bkwd: int,
    delta: float,
    steps: int,
    noise_std: float = 1.0,
    rng: np.random.Generator | None = None,
    w0: float = 0.0,
) -> QuadraticTrajectory:
    """§3.2 model: ``w_{t+1} = w_t − α(λ+Δ)w_{t−τf} + αΔ w_{t−τb} + αη_t``
    (Figure 5a)."""
    if not 0 <= tau_bkwd <= tau_fwd:
        raise ValueError("need 0 <= tau_bkwd <= tau_fwd")
    rng = rng if rng is not None else np.random.default_rng(0)
    noise = rng.normal(0.0, noise_std, size=steps) if noise_std > 0 else np.zeros(steps)

    def step(t, h):
        return (
            h[0]
            - alpha * (lam + delta) * h[tau_fwd]
            + alpha * delta * h[tau_bkwd]
            + alpha * noise[t]
        )

    traj = _run_scalar_recurrence(step, w0, tau_fwd, steps, lam)
    traj.meta.update(alpha=alpha, tau_fwd=tau_fwd, tau_bkwd=tau_bkwd, delta=delta)
    return traj


def simulate_t2_sgd(
    lam: float,
    alpha: float,
    tau_fwd: int,
    tau_bkwd: int,
    delta: float,
    gamma: float,
    steps: int,
    noise_std: float = 1.0,
    rng: np.random.Generator | None = None,
    w0: float = 0.0,
) -> QuadraticTrajectory:
    """§3.2 T2-corrected dynamics: the backward weight is extrapolated by the
    velocity EWMA, ``u_b = w_{t−τb} − (τf−τb)·δ_t``, with
    ``δ_{t+1} = γδ_t + (1−γ)(w_{t+1} − w_t)``."""
    if not 0 <= tau_bkwd <= tau_fwd:
        raise ValueError("need 0 <= tau_bkwd <= tau_fwd")
    if not 0.0 <= gamma < 1.0:
        raise ValueError(f"gamma must be in [0, 1), got {gamma}")
    rng = rng if rng is not None else np.random.default_rng(0)
    noise = rng.normal(0.0, noise_std, size=steps) if noise_std > 0 else np.zeros(steps)
    dtau = tau_fwd - tau_bkwd
    state = {"delta_acc": 0.0}

    def step(t, h):
        u_bkwd = h[tau_bkwd] - dtau * state["delta_acc"]
        grad = (lam + delta) * h[tau_fwd] - delta * u_bkwd - noise[t]
        w_next = h[0] - alpha * grad
        state["delta_acc"] = gamma * state["delta_acc"] + (1.0 - gamma) * (w_next - h[0])
        return w_next

    traj = _run_scalar_recurrence(step, w0, tau_fwd, steps, lam)
    traj.meta.update(alpha=alpha, tau_fwd=tau_fwd, tau_bkwd=tau_bkwd, delta=delta, gamma=gamma)
    return traj


def simulate_recompute_sgd(
    lam: float,
    alpha: float,
    tau_fwd: int,
    tau_recomp: int,
    tau_bkwd: int,
    delta: float,
    phi: float,
    steps: int,
    gamma: float | None = None,
    noise_std: float = 1.0,
    rng: np.random.Generator | None = None,
    w0: float = 0.0,
) -> QuadraticTrajectory:
    """App. D.1 three-delay model
    ``∇f = (λ+Δ)w_{t−τf} − (Δ−Φ)u_b − Φ u_r − η`` with optional T2
    correction applied to both the backward and recompute weights."""
    if not 0 <= tau_bkwd <= tau_recomp <= tau_fwd:
        raise ValueError("need tau_bkwd <= tau_recomp <= tau_fwd")
    rng = rng if rng is not None else np.random.default_rng(0)
    noise = rng.normal(0.0, noise_std, size=steps) if noise_std > 0 else np.zeros(steps)
    state = {"delta_acc": 0.0}
    corrected = gamma is not None
    g = gamma if corrected else 0.0

    def step(t, h):
        if corrected:
            u_b = h[tau_bkwd] - (tau_fwd - tau_bkwd) * state["delta_acc"]
            u_r = h[tau_recomp] - (tau_fwd - tau_recomp) * state["delta_acc"]
        else:
            u_b = h[tau_bkwd]
            u_r = h[tau_recomp]
        grad = (lam + delta) * h[tau_fwd] - (delta - phi) * u_b - phi * u_r - noise[t]
        w_next = h[0] - alpha * grad
        if corrected:
            state["delta_acc"] = g * state["delta_acc"] + (1.0 - g) * (w_next - h[0])
        return w_next

    traj = _run_scalar_recurrence(step, w0, tau_fwd, steps, lam)
    traj.meta.update(
        alpha=alpha, tau_fwd=tau_fwd, tau_recomp=tau_recomp, tau_bkwd=tau_bkwd,
        delta=delta, phi=phi, gamma=gamma,
    )
    return traj


def simulate_delayed_least_squares(
    x: np.ndarray,
    y: np.ndarray,
    alpha: float,
    tau: int,
    steps: int,
    batch_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, bool]:
    """Pipeline-parallel SGD (uniform delay τ on every weight) on
    ``min_w mean((Xw − y)²)`` — the Figure 3(b) workload.

    Returns ``(losses, diverged)`` where losses are full-objective values
    sampled every ``max(1, steps // 512)`` iterations.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    n, d = x.shape
    history = np.zeros((tau + 1, d))
    stride = max(1, steps // 512)
    losses = []
    diverged = False
    for t in range(steps):
        w_delayed = history[tau]  # slots beyond t hold the initial point
        if batch_size is not None and batch_size < n:
            idx = rng.integers(0, n, size=batch_size)
            xb, yb = x[idx], y[idx]
        else:
            xb, yb = x, y
        grad = 2.0 * xb.T @ (xb @ w_delayed - yb) / xb.shape[0]
        w_next = history[0] - alpha * grad
        if not np.all(np.isfinite(w_next)) or np.abs(w_next).max() > _DIVERGE_CAP:
            diverged = True
            break
        history = np.roll(history, 1, axis=0)
        history[0] = w_next
        if t % stride == 0:
            residual = x @ w_next - y
            losses.append(float(np.mean(residual**2)))
    if not losses:
        losses = [float("inf")]
    out = np.asarray(losses)
    if diverged:
        out = np.append(out, np.inf)
    return out, diverged
