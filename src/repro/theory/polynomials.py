"""Characteristic polynomials of delayed-SGD recurrences on the quadratic
model ``f(w) = (λ/2) w²``.

Polynomials are numpy coefficient arrays, highest degree first (the
``np.roots`` convention).  The recurrence is stable iff all roots lie
strictly inside the unit disk (§3.1).
"""

from __future__ import annotations

import numpy as np


def poly_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of two coefficient arrays."""
    return np.convolve(np.asarray(a, dtype=float), np.asarray(b, dtype=float))


def poly_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sum of two coefficient arrays of possibly different degree."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if len(a) < len(b):
        a, b = b, a
    out = a.copy()
    out[len(a) - len(b):] += b
    return out


def poly_scale(a: np.ndarray, c: float) -> np.ndarray:
    return np.asarray(a, dtype=float) * c


def poly_eval(a: np.ndarray, x: complex) -> complex:
    """Horner evaluation (works for complex x)."""
    out: complex = 0.0
    for coef in np.asarray(a, dtype=float):
        out = out * x + coef
    return out


def monomial(k: int) -> np.ndarray:
    """``ω^k`` as a coefficient array."""
    if k < 0:
        raise ValueError(f"degree must be non-negative, got {k}")
    out = np.zeros(k + 1)
    out[0] = 1.0
    return out


def _check_common(alpha: float, lam: float) -> None:
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")


def char_poly_delayed_sgd(tau: int, alpha: float, lam: float) -> np.ndarray:
    """Eq. (4): ``p(ω) = ω^{τ+1} − ω^τ + αλ`` for
    ``w_{t+1} = w_t − αλ w_{t−τ}``."""
    _check_common(alpha, lam)
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    p = poly_add(monomial(tau + 1), poly_scale(monomial(tau), -1.0))
    return poly_add(p, np.array([alpha * lam]))


def char_poly_momentum(tau: int, alpha: float, lam: float, beta: float) -> np.ndarray:
    """Eq. (13)/(14): ``ω^{τ+1} − (1+β)ω^τ + βω^{τ−1} + αλ`` for heavy-ball
    momentum under fixed delay τ ≥ 1."""
    _check_common(alpha, lam)
    if tau < 1:
        raise ValueError(f"momentum polynomial requires tau >= 1, got {tau}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    p = poly_add(monomial(tau + 1), poly_scale(monomial(tau), -(1.0 + beta)))
    p = poly_add(p, poly_scale(monomial(tau - 1), beta))
    return poly_add(p, np.array([alpha * lam]))


def char_poly_discrepancy(
    tau_fwd: int, tau_bkwd: int, alpha: float, lam: float, delta: float
) -> np.ndarray:
    """Eq. (6): ``ω^{τf}(ω−1) − αΔ ω^{τf−τb} + α(λ+Δ)`` for the
    delay-discrepancy gradient model of §3.2."""
    _check_common(alpha, lam)
    if not 0 <= tau_bkwd <= tau_fwd:
        raise ValueError(f"need 0 <= tau_bkwd <= tau_fwd, got ({tau_fwd}, {tau_bkwd})")
    p = poly_mul(monomial(tau_fwd), np.array([1.0, -1.0]))
    p = poly_add(p, poly_scale(monomial(tau_fwd - tau_bkwd), -alpha * delta))
    return poly_add(p, np.array([alpha * (lam + delta)]))


def char_poly_t2(
    tau_fwd: int,
    tau_bkwd: int,
    alpha: float,
    lam: float,
    delta: float,
    gamma: float,
) -> np.ndarray:
    """Appendix B.5 polynomial of the T2-corrected system:

    ``(ω−1)(ω−γ)ω^{τf} + α(λ+Δ)(ω−γ) − αΔ ω^{τf−τb}(ω−γ)
      + αΔ ω^{τf−τb}(τf−τb)(1−γ)(ω−1)``.
    """
    _check_common(alpha, lam)
    if not 0 <= tau_bkwd <= tau_fwd:
        raise ValueError(f"need 0 <= tau_bkwd <= tau_fwd, got ({tau_fwd}, {tau_bkwd})")
    if not 0.0 <= gamma < 1.0:
        raise ValueError(f"gamma must be in [0, 1), got {gamma}")
    w_minus_1 = np.array([1.0, -1.0])
    w_minus_g = np.array([1.0, -gamma])
    dtau = tau_fwd - tau_bkwd
    p = poly_mul(poly_mul(w_minus_1, w_minus_g), monomial(tau_fwd))
    p = poly_add(p, poly_scale(w_minus_g, alpha * (lam + delta)))
    p = poly_add(p, poly_scale(poly_mul(monomial(dtau), w_minus_g), -alpha * delta))
    correction = poly_scale(
        poly_mul(monomial(dtau), w_minus_1), alpha * delta * dtau * (1.0 - gamma)
    )
    return poly_add(p, correction)


def char_poly_recompute(
    tau_fwd: int,
    tau_recomp: int,
    tau_bkwd: int,
    alpha: float,
    lam: float,
    delta: float,
    phi: float,
    gamma: float,
) -> np.ndarray:
    """Appendix D.1 polynomial for recompute with T2 correction:

    ``(ω−1)(ω−γ)ω^{τf} + α(λ+Δ)(ω−γ)
      − α(Δ−Φ)ω^{τf−τb}(ω−γ) + α(Δ−Φ)ω^{τf−τb}(τf−τb)(1−γ)(ω−1)
      − αΦ ω^{τf−τr}(ω−γ)     + αΦ ω^{τf−τr}(τf−τr)(1−γ)(ω−1)``.

    With ``Φ = 0`` this reduces exactly to :func:`char_poly_t2`.
    """
    _check_common(alpha, lam)
    if not 0 <= tau_bkwd <= tau_recomp <= tau_fwd:
        raise ValueError(
            f"need tau_bkwd <= tau_recomp <= tau_fwd, got "
            f"({tau_fwd}, {tau_recomp}, {tau_bkwd})"
        )
    if not 0.0 <= gamma < 1.0:
        raise ValueError(f"gamma must be in [0, 1), got {gamma}")
    w_minus_1 = np.array([1.0, -1.0])
    w_minus_g = np.array([1.0, -gamma])
    d_b = tau_fwd - tau_bkwd
    d_r = tau_fwd - tau_recomp
    p = poly_mul(poly_mul(w_minus_1, w_minus_g), monomial(tau_fwd))
    p = poly_add(p, poly_scale(w_minus_g, alpha * (lam + delta)))
    p = poly_add(p, poly_scale(poly_mul(monomial(d_b), w_minus_g), -alpha * (delta - phi)))
    p = poly_add(
        p,
        poly_scale(
            poly_mul(monomial(d_b), w_minus_1), alpha * (delta - phi) * d_b * (1.0 - gamma)
        ),
    )
    p = poly_add(p, poly_scale(poly_mul(monomial(d_r), w_minus_g), -alpha * phi))
    p = poly_add(
        p,
        poly_scale(poly_mul(monomial(d_r), w_minus_1), alpha * phi * d_r * (1.0 - gamma)),
    )
    return p
