"""Hogwild!-style training executor (Appendix E, eq. 17).

Each optimizer step samples a fresh integer delay ``τ_i`` per stage and
computes the *whole* gradient with stage i's weights at version ``t − τ_i``
— same weights in forward and backward (no discrepancy), unlike the
pipeline model.  T1 learning-rate rescheduling plugs in through per-stage
expected delays.
"""

from __future__ import annotations

import numpy as np

from repro.core import LRReschedule
from repro.hogwild.delays import TruncatedExponentialDelays
from repro.nn.module import Module
from repro.optim import Optimizer, clip_grad_norm
from repro.optim.schedulers import LRSchedule
from repro.pipeline.partition import Stage
from repro.pipeline.weight_store import WeightVersionStore


class HogwildExecutor:
    """Stochastic-delay analogue of :class:`repro.pipeline.PipelineExecutor`.

    The optimizer must have one param group per stage (same layout as the
    pipeline executor).
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        stages: list[Stage],
        delays: TruncatedExponentialDelays,
        anneal_steps: int | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
    ):
        if delays.num_stages != len(stages):
            raise ValueError(
                f"delay sampler covers {delays.num_stages} stages, "
                f"model has {len(stages)}"
            )
        if len(optimizer.groups) != len(stages):
            raise ValueError("optimizer must have one group per stage")
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.stages = stages
        self.delays = delays
        self.store = WeightVersionStore(stages, delays.tau_max + 2)
        self.base_schedule = base_schedule
        self.grad_clip = grad_clip
        self.reschedule = (
            LRReschedule(np.maximum(delays.expected_delays(), 1.0), anneal_steps)
            if anneal_steps is not None
            else None
        )
        self.t = 0

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        taus = self.delays.sample()
        for s in range(len(self.stages)):
            version = max(0, self.t - int(taus[s]))
            self.store.load(s, version)
        self.optimizer.zero_grad()
        out = self.model(x)
        loss = self.loss_fn(out, y)
        # eq. (17): forward and backward both use the same stale weights,
        # so gradients are computed before restoring the latest version.
        self.model.backward(self.loss_fn.backward())
        self.store.load_latest()
        if self.grad_clip is not None:
            clip_grad_norm(self.model.parameters(), self.grad_clip)
        if self.base_schedule is not None:
            self.optimizer.lr = self.base_schedule(self.t)
        if self.reschedule is not None:
            self.reschedule.apply(self.optimizer, self.t)
        self.optimizer.step()
        self.store.push_current()
        self.t += 1
        return float(loss)
