"""Hogwild!-style stochastic asynchrony (Appendix E).

Unlike the pipeline's fixed per-stage delays, Hogwild! delays are random per
step and per stage.  The paper samples per-stage delays from truncated
exponential distributions (the maximum-entropy choice, following Mitliagkas
et al.) with stage-dependent means mirroring the pipeline's ``τ_fwd``
profile, and shows T1 also helps in this regime (Figure 19).
"""

from repro.hogwild.delays import TruncatedExponentialDelays
from repro.hogwild.trainer import HogwildExecutor

__all__ = ["TruncatedExponentialDelays", "HogwildExecutor"]
