"""Per-stage truncated-exponential delay sampling (Appendix E)."""

from __future__ import annotations

import numpy as np


class TruncatedExponentialDelays:
    """Samples integer delays ``τ_i ∈ [0, tau_max]`` per stage, exponentially
    distributed with stage-specific means.

    ``means`` typically follows the pipeline profile ``(2(P−i)+1)/N`` so
    earlier stages see larger expected staleness, as in Appendix E.
    """

    def __init__(
        self,
        means: np.ndarray | list[float],
        tau_max: int,
        rng: np.random.Generator | None = None,
    ):
        means = np.asarray(means, dtype=float)
        if means.size == 0:
            raise ValueError("means must be non-empty")
        if np.any(means < 0):
            raise ValueError("delay means must be non-negative")
        if tau_max < 0:
            raise ValueError(f"tau_max must be non-negative, got {tau_max}")
        self.means = means
        self.tau_max = int(tau_max)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def num_stages(self) -> int:
        return len(self.means)

    def sample(self) -> np.ndarray:
        """One integer delay per stage, truncated at ``tau_max``."""
        raw = self.rng.exponential(np.maximum(self.means, 1e-12))
        raw = np.where(self.means > 0, raw, 0.0)
        return np.minimum(np.floor(raw), self.tau_max).astype(int)

    def expected_delays(self) -> np.ndarray:
        """Mean of the truncated distribution (used by T1's τ_i).

        For Exp(μ) truncated at T the mean is ``μ − T/(e^{T/μ} − 1)``.
        """
        mu = self.means
        t = float(self.tau_max)
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            correction = np.where(mu > 0, t / np.expm1(t / np.maximum(mu, 1e-12)), 0.0)
        return np.where(mu > 0, mu - correction, 0.0)
