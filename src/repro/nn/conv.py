"""2-D convolution via im2col."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """NCHW convolution ``y = W * x + b`` implemented with im2col/col2im.

    Weight shape ``(C_out, C_in, KH, KW)``.  As everywhere in this framework
    the input gradient is computed with the weights at *backward* time while
    the weight gradient uses the cached forward unfolding.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kernel_size, kernel_size)
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            )
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)))
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"expected (B,{self.in_channels},H,W), got {x.shape}")
        cols, (oh, ow) = F.im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        w2 = self.weight.data.reshape(self.out_channels, -1)
        # (B, C_out, OH*OW) = (C_out, K) @ (B, K, OH*OW)
        y = np.einsum("ok,bkp->bop", w2, cols)
        if self.use_bias:
            y = y + self.bias.data[None, :, None]
        return y.reshape(x.shape[0], self.out_channels, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        B = grad_out.shape[0]
        g2 = grad_out.reshape(B, self.out_channels, -1)
        # weight grad from cached forward unfolding
        dw = np.einsum("bop,bkp->ok", g2, self._cols)
        self.weight.grad += dw.reshape(self.weight.data.shape)
        if self.use_bias:
            self.bias.grad += g2.sum(axis=(0, 2))
        # input grad uses backward-time weights
        w2 = self.weight.data.reshape(self.out_channels, -1)
        dcols = np.einsum("ok,bop->bkp", w2, g2)
        return F.col2im(dcols, self._x_shape, self.kernel_size, self.stride, self.padding)
