"""Normalisation layers: BatchNorm2d, GroupNorm, LayerNorm.

All three share one normalisation kernel: reshape so the reduction axis is
last, normalise, and apply the standard fused backward

``dx = ivar * (g - mean(g) - xhat * mean(g * xhat))``

where ``g`` is the gradient w.r.t. ``xhat``.  The paper uses BatchNorm for
ResNet but notes (§4.1) that small microbatches are problematic for it; the
model zoo therefore defaults to GroupNorm [24] for tiny microbatches.
"""

from __future__ import annotations

import numpy as np

from repro.nn import arena, init
from repro.nn.module import Module, Parameter


def _normalize(x: np.ndarray, eps: float) -> tuple[np.ndarray, np.ndarray]:
    """Normalise over the last axis; returns (xhat, ivar)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    ivar = 1.0 / np.sqrt(var + eps)
    xhat = arena.empty(x.shape, np.result_type(x, ivar))
    np.subtract(x, mean, out=xhat)
    np.multiply(xhat, ivar, out=xhat)
    return xhat, ivar


def _normalize_backward(g: np.ndarray, xhat: np.ndarray, ivar: np.ndarray) -> np.ndarray:
    """Backward of :func:`_normalize` w.r.t. x, given grad w.r.t. xhat."""
    gm = g.mean(axis=-1, keepdims=True)
    t = arena.empty(g.shape, np.result_type(g, xhat))
    np.multiply(g, xhat, out=t)
    gxm = t.mean(axis=-1, keepdims=True)
    np.subtract(g, gm, out=t)
    u = arena.empty(t.shape, t.dtype)
    np.multiply(xhat, gxm, out=u)
    np.subtract(t, u, out=t)
    np.multiply(ivar, t, out=t)
    return t


class BatchNorm2d(Module):
    """Per-channel batch normalisation for NCHW inputs with running stats."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(f"expected (B,{self.num_features},H,W), got {x.shape}")
        if self.training:
            if x.shape[0] * x.shape[2] * x.shape[3] < 2:
                raise ValueError("BatchNorm2d needs more than one element per channel")
            # (C, B*H*W): reduce per channel
            xt = x.transpose(1, 0, 2, 3).reshape(self.num_features, -1)
            xhat, ivar = _normalize(xt, self.eps)
            self._cache = (xhat, ivar, x.shape)
            mean = xt.mean(axis=-1)
            var = xt.var(axis=-1)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean
            self.running_var = (1 - m) * self.running_var + m * var
            y = xhat * self.weight.data[:, None] + self.bias.data[:, None]
            return y.reshape(self.num_features, x.shape[0], *x.shape[2:]).transpose(1, 0, 2, 3)
        ivar = 1.0 / np.sqrt(self.running_var + self.eps)
        xhat = (x - self.running_mean[None, :, None, None]) * ivar[None, :, None, None]
        self._cache = None
        return xhat * self.weight.data[None, :, None, None] + self.bias.data[None, :, None, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward requires a training-mode forward")
        xhat, ivar, x_shape = self._cache
        gt = grad_out.transpose(1, 0, 2, 3).reshape(self.num_features, -1)
        self.weight.grad += (gt * xhat).sum(axis=-1)
        self.bias.grad += gt.sum(axis=-1)
        dxhat = gt * self.weight.data[:, None]
        dxt = _normalize_backward(dxhat, xhat, ivar)
        return dxt.reshape(self.num_features, x_shape[0], *x_shape[2:]).transpose(1, 0, 2, 3)


class GroupNorm(Module):
    """Group normalisation for NCHW inputs (microbatch-size independent)."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups != 0:
            raise ValueError(f"{num_channels} channels not divisible by {num_groups} groups")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(init.ones((num_channels,)))
        self.bias = Parameter(init.zeros((num_channels,)))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(f"expected (B,{self.num_channels},H,W), got {x.shape}")
        B, C, H, W = x.shape
        xg = x.reshape(B, self.num_groups, -1)
        xhat, ivar = _normalize(xg, self.eps)
        self._cache = (xhat, ivar, x.shape)
        xhat4 = xhat.reshape(B, C, H, W)
        return xhat4 * self.weight.data[None, :, None, None] + self.bias.data[None, :, None, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        xhat, ivar, x_shape = self._cache
        B, C, H, W = x_shape
        xhat4 = xhat.reshape(B, C, H, W)
        self.weight.grad += (grad_out * xhat4).sum(axis=(0, 2, 3))
        self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        dxhat = (grad_out * self.weight.data[None, :, None, None]).reshape(B, self.num_groups, -1)
        dx = _normalize_backward(dxhat, xhat, ivar)
        return dx.reshape(B, C, H, W)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.weight = Parameter(init.ones((features,)))
        self.bias = Parameter(init.zeros((features,)))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.features:
            raise ValueError(f"expected trailing dim {self.features}, got {x.shape}")
        xhat, ivar = _normalize(x, self.eps)
        self._cache = (xhat, ivar)
        y = arena.empty(xhat.shape, np.result_type(xhat, self.weight.data))
        np.multiply(xhat, self.weight.data, out=y)
        np.add(y, self.bias.data, out=y)
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        xhat, ivar = self._cache
        flat_g = grad_out.reshape(-1, self.features)
        flat_x = xhat.reshape(-1, self.features)
        t = arena.empty(flat_g.shape, np.result_type(flat_g, flat_x))
        np.multiply(flat_g, flat_x, out=t)
        self.weight.grad += t.sum(axis=0)
        self.bias.grad += flat_g.sum(axis=0)
        dxhat = arena.empty(grad_out.shape, np.result_type(grad_out, self.weight.data))
        np.multiply(grad_out, self.weight.data, out=dxhat)
        return _normalize_backward(dxhat, xhat, ivar)
