"""Finite-difference verification of layer backward passes.

Every module in :mod:`repro.nn` implements an explicit ``backward`` (that is
what lets the pipeline executor feed *different weight versions* to the two
passes), so each backward is hand-derived and deserves an independent
check.  This module compares analytic gradients against central differences

    ``dL/dx_i ≈ (L(x + εe_i) − L(x − εe_i)) / 2ε``

for the scalar probe loss ``L = Σ (module(x) ⊙ R)`` with a fixed random
matrix ``R`` (so arbitrary ``grad_out`` directions are exercised, not just
all-ones).

Caveats by construction: modules must be *deterministic* at check time (put
``Dropout`` in eval mode), and kinked operators (ReLU, MaxPool) are checked
at random inputs where ties/zero-crossings have probability zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module, Parameter


@dataclass
class GradcheckReport:
    """Outcome of one gradient check."""

    max_abs_err: float = 0.0
    max_rel_err: float = 0.0
    failures: list[str] = field(default_factory=list)
    checked_coords: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, name: str, analytic: np.ndarray, numeric: np.ndarray,
              rtol: float, atol: float) -> None:
        """Compare one tensor's gradients and record any violation."""
        diff = np.abs(analytic - numeric)
        scale = atol + rtol * np.abs(numeric)
        self.max_abs_err = max(self.max_abs_err, float(diff.max(initial=0.0)))
        denom = np.maximum(np.abs(numeric), 1e-12)
        self.max_rel_err = max(self.max_rel_err, float((diff / denom).max(initial=0.0)))
        bad = diff > scale
        if bad.any():
            idx = np.unravel_index(int(np.argmax(diff)), diff.shape)
            self.failures.append(
                f"{name}: {int(bad.sum())}/{analytic.size} coords disagree; "
                f"worst at {idx}: analytic={analytic[idx]:.3e} "
                f"numeric={numeric[idx]:.3e}"
            )


def _probe_coords(shape: tuple[int, ...], max_coords: int | None,
                  rng: np.random.Generator) -> list[tuple[int, ...]]:
    """All coordinates, or a random sample when the tensor is large."""
    size = int(np.prod(shape))
    if max_coords is None or size <= max_coords:
        flat = range(size)
    else:
        flat = rng.choice(size, size=max_coords, replace=False)
    return [np.unravel_index(int(i), shape) for i in flat]


def _numeric_grad(loss_fn, arr: np.ndarray, coords, eps: float) -> np.ndarray:
    grad = np.zeros_like(arr)
    for idx in coords:
        orig = arr[idx]
        arr[idx] = orig + eps
        hi = loss_fn()
        arr[idx] = orig - eps
        lo = loss_fn()
        arr[idx] = orig
        grad[idx] = (hi - lo) / (2.0 * eps)
    return grad


def gradcheck_module(
    module: Module,
    x: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    max_coords: int | None = 200,
    check_input: bool = True,
    check_params: bool = True,
    seed: int = 0,
) -> GradcheckReport:
    """Check ``module.backward`` against central differences.

    Large tensors are spot-checked at ``max_coords`` random coordinates
    (numeric gradients cost two forwards per coordinate).  Returns a
    :class:`GradcheckReport`; use :func:`assert_gradients_match` in tests.
    """
    rng = np.random.default_rng(seed)
    x = np.array(x)
    if np.issubdtype(x.dtype, np.integer):
        if check_input:
            raise ValueError(
                "integer inputs (e.g. token indices) cannot be perturbed; "
                "call with check_input=False"
            )
    else:
        x = x.astype(float)
    out = module(x)
    probe = rng.normal(size=out.shape)

    def loss() -> float:
        return float(np.sum(module(x) * probe))

    report = GradcheckReport()

    # analytic gradients (input + params) from one backward pass
    module.zero_grad()
    module(x)
    grad_in = module.backward(probe.copy())

    if check_input:
        coords = _probe_coords(x.shape, max_coords, rng)
        numeric = _numeric_grad(loss, x, coords, eps)
        mask = np.zeros_like(x, dtype=bool)
        for idx in coords:
            mask[idx] = True
        report.merge(
            "input", np.where(mask, grad_in, 0.0), numeric, rtol, atol
        )
        report.checked_coords += len(coords)

    if check_params:
        analytic = {name: p.grad.copy() for name, p in module.named_parameters()}
        for name, p in module.named_parameters():
            coords = _probe_coords(p.data.shape, max_coords, rng)
            numeric = _numeric_grad(loss, p.data, coords, eps)
            mask = np.zeros_like(p.data, dtype=bool)
            for idx in coords:
                mask[idx] = True
            report.merge(
                name, np.where(mask, analytic[name], 0.0), numeric, rtol, atol
            )
            report.checked_coords += len(coords)
    return report


def gradcheck_loss(
    loss_module: Module,
    pred: np.ndarray,
    target: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    max_coords: int | None = 200,
    seed: int = 0,
) -> GradcheckReport:
    """Check a loss module (``forward(pred, target) -> float``,
    ``backward() -> dL/dpred``) against central differences."""
    rng = np.random.default_rng(seed)
    pred = np.array(pred, dtype=float)

    loss_module(pred, target)
    analytic = loss_module.backward()

    def loss() -> float:
        return float(loss_module(pred, target))

    report = GradcheckReport()
    coords = _probe_coords(pred.shape, max_coords, rng)
    numeric = _numeric_grad(loss, pred, coords, eps)
    mask = np.zeros_like(pred, dtype=bool)
    for idx in coords:
        mask[idx] = True
    report.merge("pred", np.where(mask, analytic, 0.0), numeric, rtol, atol)
    report.checked_coords += len(coords)
    return report


def assert_gradients_match(report: GradcheckReport) -> None:
    """Raise with the report's failure detail if any coordinate disagreed."""
    if not report.ok:
        raise AssertionError(
            f"gradient check failed ({len(report.failures)} tensors, "
            f"max_abs_err={report.max_abs_err:.3e}):\n  "
            + "\n  ".join(report.failures)
        )
