"""Pooling layers for NCHW tensors."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class AvgPool2d(Module):
    """Average pooling with square kernel."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        B, C, H, W = x.shape
        cols, (oh, ow) = F.im2col(
            x.reshape(B * C, 1, H, W), (self.kernel_size,) * 2, self.stride, 0
        )
        self._cache = (x.shape, (oh, ow))
        return cols.mean(axis=1).reshape(B, C, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (B, C, H, W), (oh, ow) = self._cache
        k2 = self.kernel_size * self.kernel_size
        g = grad_out.reshape(B * C, 1, oh * ow) / k2
        dcols = np.broadcast_to(g, (B * C, k2, oh * ow))
        dx = F.col2im(dcols, (B * C, 1, H, W), (self.kernel_size,) * 2, self.stride, 0)
        return dx.reshape(B, C, H, W)


class MaxPool2d(Module):
    """Max pooling with square kernel."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        B, C, H, W = x.shape
        cols, (oh, ow) = F.im2col(
            x.reshape(B * C, 1, H, W), (self.kernel_size,) * 2, self.stride, 0
        )
        argmax = cols.argmax(axis=1)
        self._cache = (x.shape, (oh, ow), argmax)
        out = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
        return out.reshape(B, C, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (B, C, H, W), (oh, ow), argmax = self._cache
        k2 = self.kernel_size * self.kernel_size
        dcols = np.zeros((B * C, k2, oh * ow))
        g = grad_out.reshape(B * C, 1, oh * ow)
        np.put_along_axis(dcols, argmax[:, None, :], g, axis=1)
        dx = F.col2im(dcols, (B * C, 1, H, W), (self.kernel_size,) * 2, self.stride, 0)
        return dx.reshape(B, C, H, W)


class GlobalAvgPool2d(Module):
    """(B,C,H,W) -> (B,C) spatial mean, as used before ResNet classifiers."""

    def __init__(self):
        super().__init__()
        self._hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._hw = x.shape[2:]
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._hw is None:
            raise RuntimeError("backward called before forward")
        h, w = self._hw
        return np.broadcast_to(grad_out[:, :, None, None] / (h * w), grad_out.shape + (h, w)).copy()
