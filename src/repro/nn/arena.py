"""Per-worker slab arenas: steady-state allocation-free kernels.

Profiling the concurrent runtime (``BENCH_runtime.json`` through PR 5)
showed the hot loop dominated not by compute but by allocator traffic:
every wave allocates fresh activation, mask and gradient arrays whose
sizes repeat exactly from step to step, and at the ~200 KB float64 sizes
our standard workloads produce, glibc serves each one with ``mmap`` +
page-fault + ``munmap``.  PipeDream's steady state (and ReaLHF's pipe
engine) win precisely because every in-flight slot computes into
pre-sized buffers; this module gives our kernels the same property
without changing a single computed bit.

:class:`Arena` is a free-list of **slabs** keyed by ``(shape, dtype)``.
Kernels allocate through :func:`empty`, which returns a recycled slab
when a worker arena is current on this thread and falls back to plain
``np.empty`` otherwise — so the sequential simulator (no arena) and any
driver-side evaluation keep their exact allocation behaviour, and the
differential suites compare an arena-free baseline against the arena'd
runtime bit for bit.

Slab lifetime is generational, tied to the pool's step sequence:

* a worker calls :meth:`Arena.begin_program` with the step's ``seq``
  before executing its program; every slab handed out during that
  program belongs to generation ``seq``;
* generation ``g`` is recycled when a program with ``seq >= g + depth``
  begins.  With ``depth=2`` (two steps in flight) a slab allocated in
  step ``s`` survives until the worker *starts* step ``s+2`` — and the
  driver only issues step ``s+2`` after collecting step ``s``, so every
  consumer of the slab (same-step backward caches, cross-worker queue
  hand-offs, recompute snapshots) is provably finished.  Recycling later
  than necessary is always safe; the cost is one extra generation of
  resident slabs.

Under ``REPRO_ARENA_DEBUG=1`` recycled slabs are poison-filled (NaN for
floats) before they re-enter the free list, so any read-after-recycle —
e.g. a recompute path resolving a stale cache — turns into NaN losses
instead of silently wrong numbers.  ``tests/test_arena_safety.py`` runs
the differential grids under this toggle.
"""

from __future__ import annotations

import os
import threading

import numpy as np

_tls = threading.local()


def _env_debug() -> bool:
    return os.environ.get("REPRO_ARENA_DEBUG", "") not in ("", "0")


def _poison(a: np.ndarray) -> None:
    """Make any read of a recycled slab loudly wrong."""
    kind = a.dtype.kind
    if kind == "f":
        a.fill(np.nan)
    elif kind == "c":
        a.fill(complex(np.nan, np.nan))
    elif kind == "b":
        a.fill(True)
    elif kind in ("i", "u"):
        a.fill(np.iinfo(a.dtype).max // 2)


class Arena:
    """Generational ``(shape, dtype)``-keyed slab pool for one worker.

    Not thread-safe: each worker thread/process owns exactly one arena
    and installs it with :func:`set_current` on its own thread.
    """

    def __init__(self, depth: int = 2, debug: bool | None = None):
        if depth < 1:
            raise ValueError(f"arena depth must be >= 1, got {depth}")
        self.depth = depth
        self.debug = _env_debug() if debug is None else bool(debug)
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._live: dict[int, list[np.ndarray]] = {}
        self._gen: int | None = None
        self.slabs = 0          # total slabs ever allocated (growth telemetry)
        self.recycled = 0       # slabs returned to the free list so far

    def begin_program(self, seq: int) -> None:
        """Open generation ``seq`` and recycle every generation old enough
        that no consumer can still reach its slabs (see module docstring)."""
        horizon = seq - self.depth
        for g in [g for g in self._live if g <= horizon]:
            for slab in self._live.pop(g):
                if self.debug:
                    _poison(slab)
                self._free.setdefault((slab.shape, slab.dtype), []).append(slab)
                self.recycled += 1
        self._gen = seq
        self._live.setdefault(seq, [])

    def empty(self, shape: tuple, dtype=np.float64) -> np.ndarray:
        """An uninitialised slab of ``(shape, dtype)`` from the free list,
        growing the pool on a miss.  Must be inside :meth:`begin_program`."""
        if self._gen is None:
            raise RuntimeError("Arena.empty called outside begin_program")
        key = (shape, np.dtype(dtype))
        pool = self._free.get(key)
        if pool:
            slab = pool.pop()
        else:
            slab = np.empty(shape, dtype)
            self.slabs += 1
        self._live[self._gen].append(slab)
        return slab

    def resident_bytes(self) -> int:
        """Total bytes pinned by the arena (free + live slabs) — the
        memory-footprint cost of allocation-free steady state."""
        total = 0
        for pool in self._free.values():
            total += sum(a.nbytes for a in pool)
        for slabs in self._live.values():
            total += sum(a.nbytes for a in slabs)
        return total


def set_current(arena: Arena | None) -> None:
    """Install ``arena`` as this thread's allocation target (None clears)."""
    _tls.arena = arena


def current() -> Arena | None:
    return getattr(_tls, "arena", None)


def empty(shape, dtype=np.float64) -> np.ndarray:
    """Allocate through the current thread's arena, or plainly when none is
    installed (simulator / driver-side evaluation).  The kernels' single
    allocation entry point."""
    arena = getattr(_tls, "arena", None)
    if arena is None:
        return np.empty(shape, dtype)
    return arena.empty(tuple(shape), dtype)
