"""Stateless numerical kernels shared by layers: stable softmax, GELU,
im2col/col2im for convolution, one-hot encoding.

Everything is vectorised numpy; the only Python loops are over kernel
positions (KH*KW, at most a handful of iterations).
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from repro.nn import arena

_SQRT2 = np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)

# The big elementwise kernels below allocate through repro.nn.arena and
# chain out= ufunc calls in the exact operand order of the plain
# expressions they replaced — bit-identical results, no fresh temporaries
# on the pipeline workers' steady-state path.


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    t = arena.empty(x.shape, np.result_type(x, 0.0))
    np.subtract(x, np.max(x, axis=axis, keepdims=True), out=t)
    np.exp(t, out=t)
    np.divide(t, np.sum(t, axis=axis, keepdims=True), out=t)
    return t


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = arena.empty(x.shape, np.result_type(x, 0.0))
    np.subtract(x, np.max(x, axis=axis, keepdims=True), out=shifted)
    e = arena.empty(shifted.shape, shifted.dtype)
    np.exp(shifted, out=e)
    np.subtract(shifted, np.log(np.sum(e, axis=axis, keepdims=True)), out=shifted)
    return shifted


def softmax_backward(softmax_out: np.ndarray, grad_out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient through softmax given its output ``s``: ``s*(g - sum(g*s))``."""
    t = arena.empty(grad_out.shape, np.result_type(grad_out, softmax_out))
    np.multiply(grad_out, softmax_out, out=t)
    inner = np.sum(t, axis=axis, keepdims=True)
    np.subtract(grad_out, inner, out=t)
    np.multiply(softmax_out, t, out=t)
    return t


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU ``0.5 x (1 + erf(x/√2))``."""
    t = arena.empty(x.shape, np.result_type(x, 0.0))
    np.divide(x, _SQRT2, out=t)
    erf(t, out=t)
    np.add(1.0, t, out=t)
    y = arena.empty(x.shape, t.dtype)
    np.multiply(0.5, x, out=y)
    np.multiply(y, t, out=y)
    return y


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """d/dx GELU(x) = Φ(x) + x·φ(x)."""
    cdf = arena.empty(x.shape, np.result_type(x, 0.0))
    np.divide(x, _SQRT2, out=cdf)
    erf(cdf, out=cdf)
    np.add(1.0, cdf, out=cdf)
    np.multiply(0.5, cdf, out=cdf)
    pdf = arena.empty(x.shape, cdf.dtype)
    np.multiply(-0.5, x, out=pdf)
    np.multiply(pdf, x, out=pdf)
    np.exp(pdf, out=pdf)
    np.multiply(_INV_SQRT_2PI, pdf, out=pdf)
    np.multiply(x, pdf, out=pdf)
    np.add(cdf, pdf, out=cdf)
    return cdf


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """(N,) int labels -> (N, num_classes) float one-hot."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    out = arena.empty((labels.shape[0], num_classes), np.float64)
    out.fill(0.0)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold NCHW input into columns.

    Returns ``(cols, (OH, OW))`` where ``cols`` has shape
    ``(B, C*KH*KW, OH*OW)``.
    """
    B, C, H, W = x.shape
    KH, KW = kernel
    OH = conv_output_size(H, KH, stride, padding)
    OW = conv_output_size(W, KW, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sB, sC, sH, sW = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(B, C, KH, KW, OH, OW),
        strides=(sB, sC, sH, sW, sH * stride, sW * stride),
        writeable=False,
    )
    cols = view.reshape(B, C * KH * KW, OH * OW)
    return np.ascontiguousarray(cols), (OH, OW)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back into NCHW, summing overlapping contributions.

    Inverse-adjoint of :func:`im2col`; used for the convolution input grad.
    """
    B, C, H, W = x_shape
    KH, KW = kernel
    OH = conv_output_size(H, KH, stride, padding)
    OW = conv_output_size(W, KW, stride, padding)
    cols = cols.reshape(B, C, KH, KW, OH, OW)
    padded = np.zeros((B, C, H + 2 * padding, W + 2 * padding))
    for kh in range(KH):
        h_end = kh + stride * OH
        for kw in range(KW):
            w_end = kw + stride * OW
            padded[:, :, kh:h_end:stride, kw:w_end:stride] += cols[:, :, kh, kw]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
