"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Zeroes activations with probability ``p`` in training mode, scaling
    survivors by ``1/(1-p)`` so evaluation needs no rescaling."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
