"""Inverted dropout, in two mask-generation modes.

*Stream mode* (the original): masks are drawn from a ``numpy.random.Generator``
in forward-call order.  Fine for the sequential simulator, but unusable in the
concurrent pipeline runtimes — the draw order there depends on wall-clock
worker scheduling, so two runs (or two backends) would disagree.

*Counter mode*: the mask for each (layer, optimizer step, microbatch) is a
pure function of ``(seed, layer_id, step, microbatch)``, generated through a
counter-based Philox bit stream.  No RNG state is carried between calls, so
every backend — simulator, thread workers, process workers — derives
bit-identical masks without sharing any generator, regardless of how many
workers execute the model or in which order.  This is what makes
training-mode dropout safe on :class:`repro.pipeline.AsyncPipelineRuntime`,
and it also makes activation recompute exact: the recompute pass regenerates
the *same* mask its forward drew, where a stream-mode redraw would diverge.

The pipeline backends advance the ``(step, microbatch)`` slot via
:meth:`Dropout.set_slot` before each microbatch forward (see
``PipelineBackend`` and ``WorkerCompute``).
"""

from __future__ import annotations

import numpy as np

from repro.nn import arena
from repro.nn.module import Module


def counter_mask(
    seed: int,
    layer_id: int,
    step: int,
    microbatch: int,
    shape,
    keep: float,
    replica: int = 0,
) -> np.ndarray:
    """The counter-mode dropout mask: a Philox stream keyed by
    ``(seed, layer_id)`` with counter ``(step, microbatch, replica)``, so the
    draw is a pure function of its coordinates — identical on every backend,
    worker count, and recompute pass.  ``replica`` occupies a previously-zero
    counter word, so replica 0 draws the exact masks single-pipeline runs
    always drew, while each extra pipeline replica gets an independent
    stream."""
    bits = np.random.Philox(
        key=np.array([seed, layer_id], dtype=np.uint64),
        counter=np.array([step, microbatch, replica, 0], dtype=np.uint64),
    )
    draws = arena.empty(tuple(shape), np.float64)
    np.random.Generator(bits).random(out=draws)
    hit = arena.empty(tuple(shape), bool)
    np.less(draws, keep, out=hit)
    mask = arena.empty(tuple(shape), np.float64)
    np.divide(hit, keep, out=mask)
    return mask


class Dropout(Module):
    """Zeroes activations with probability ``p`` in training mode, scaling
    survivors by ``1/(1-p)`` so evaluation needs no rescaling.

    ``Dropout(p, rng)`` is stream mode; ``Dropout(p, seed=s, layer_id=i)``
    is counter mode (see module docstring).  A stream-mode instance can be
    switched with :meth:`to_counter` — :class:`repro.models.Transformer`
    does this for all its dropouts when ``cfg.dropout_seed`` is set.
    """

    def __init__(
        self,
        p: float,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
        layer_id: int = 0,
    ):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        if rng is None and seed is None and p > 0.0:
            raise ValueError("Dropout needs an rng (stream mode) or a seed (counter mode)")
        self.p = p
        self.rng = rng
        self.seed = seed
        self.layer_id = layer_id
        self.replica = 0  # pipeline replica index, set by ModelSpec/replica build
        self._slot = (0, 0)  # (optimizer step, microbatch), set by the backends
        self._mask: np.ndarray | None = None

    @property
    def counter_based(self) -> bool:
        return self.seed is not None

    def to_counter(self, seed: int, layer_id: int) -> "Dropout":
        """Switch this instance to counter mode (idempotent re-keying)."""
        self.seed = int(seed)
        self.layer_id = int(layer_id)
        return self

    def set_slot(self, step: int, microbatch: int) -> None:
        """Position the counter for the next forward.  No-op in stream mode."""
        self._slot = (step, microbatch)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        if self.counter_based:
            t, j = self._slot
            self._mask = counter_mask(
                self.seed, self.layer_id, t, j, x.shape, keep, self.replica
            )
        else:
            self._mask = (self.rng.random(x.shape) < keep) / keep
        y = arena.empty(x.shape, np.result_type(x, self._mask))
        np.multiply(x, self._mask, out=y)
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        g = arena.empty(grad_out.shape, np.result_type(grad_out, self._mask))
        np.multiply(grad_out, self._mask, out=g)
        return g
