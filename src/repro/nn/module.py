"""Parameter and Module base classes.

Design contract (relied on by :mod:`repro.pipeline`):

* ``forward`` reads ``Parameter.data`` and stashes whatever it needs for the
  backward pass in module-local caches.
* ``backward`` reads ``Parameter.data`` *again* (it may have changed since
  forward!), accumulates into ``Parameter.grad``, and returns the gradient
  w.r.t. the module input.
* Parameters are discovered in registration order, which for our models is
  the topological order of the computation graph — the order the paper uses
  to partition weights into pipeline stages (§4.1).
"""

from __future__ import annotations

import numpy as np

DTYPE = np.float64


class Parameter:
    """A trainable array plus its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=DTYPE)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration ------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register(self, name: str, module: "Module") -> "Module":
        """Register a child module under an explicit name (for lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)
        return module

    # -- traversal ---------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """Parameters in registration (topological) order.

        Shared parameters/modules (e.g. tied embeddings) are reported once,
        at their first occurrence — crucial so optimizers and the pipeline
        partitioner never see the same tensor twice.
        """
        out: list[tuple[str, Parameter]] = []
        seen: set[int] = set()
        for name, p in self._walk_parameters(prefix):
            if id(p) not in seen:
                seen.add(id(p))
                out.append((name, p))
        return out

    def _walk_parameters(self, prefix: str = ""):
        for name, p in self._parameters.items():
            yield f"{prefix}{name}", p
        for name, child in self._modules.items():
            yield from child._walk_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> list["Module"]:
        out: list[Module] = [self]
        for child in self._modules.values():
            out.extend(child.modules())
        return out

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's W, in elements)."""
        return sum(p.size for p in self.parameters())

    # -- mode / grads ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state -------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
        for name, p in params.items():
            value = np.asarray(state[name], dtype=DTYPE)
            if value.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {p.data.shape}")
            p.data = value.copy()

    # -- compute -----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def backward(self, grad_out):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"


class Sequential(Module):
    """Chain of single-input single-output modules."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(self.layers):
            self.register(f"layer{i}", layer)

    def append(self, layer: Module) -> None:
        self.register(f"layer{len(self.layers)}", layer)
        self.layers.append(layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out):
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Residual(Module):
    """``y = x + body(x)`` with the matching backward ``dx = g + body'(g)``."""

    def __init__(self, body: Module):
        super().__init__()
        self.body = body

    def forward(self, x):
        return x + self.body(x)

    def backward(self, grad_out):
        return grad_out + self.body.backward(grad_out)
