"""Parameter-free activation modules."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        # np.maximum (not np.where on the mask) so NaNs propagate instead of
        # being silently zeroed — divergence must stay visible in the loss.
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)


class GELU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.gelu_grad(self._x)


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class Sigmoid(Module):
    def __init__(self):
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-x))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
