"""Parameter-free activation modules.

All kernels allocate through :mod:`repro.nn.arena` and compute with
``out=`` ufunc calls whose operand order matches the plain expressions
they replaced, so results are bit-identical with or without an arena.
Modules whose output is a pure elementwise function additionally expose
``pipeline_out_meta``/``forward_into`` so the pipeline runtime can have
them compute straight into a reserved transport slot.
"""

from __future__ import annotations

import numpy as np

from repro.nn import arena
from repro.nn import functional as F
from repro.nn.module import Module


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def pipeline_out_meta(self, x: np.ndarray) -> tuple[tuple[int, ...], np.dtype]:
        return x.shape, np.result_type(x, 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        shape, dtype = self.pipeline_out_meta(x)
        y = arena.empty(shape, dtype)
        self.forward_into(x, y)
        return y

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> None:
        mask = arena.empty(x.shape, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        # np.maximum (not np.where on the mask) so NaNs propagate instead of
        # being silently zeroed — divergence must stay visible in the loss.
        np.maximum(x, 0.0, out=out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        g = arena.empty(grad_out.shape, np.result_type(grad_out, 0.0))
        g.fill(0.0)
        np.copyto(g, grad_out, where=self._mask)
        return g


class GELU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        g = F.gelu_grad(self._x)
        np.multiply(grad_out, g, out=g)
        return g


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._y: np.ndarray | None = None

    def pipeline_out_meta(self, x: np.ndarray) -> tuple[tuple[int, ...], np.dtype]:
        return x.shape, np.result_type(x, 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        shape, dtype = self.pipeline_out_meta(x)
        y = arena.empty(shape, dtype)
        self.forward_into(x, y)
        return y

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> None:
        np.tanh(x, out=out)
        self._y = out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        t = arena.empty(self._y.shape, self._y.dtype)
        np.square(self._y, out=t)  # what ``y**2`` lowers to (numpy fast scalar power)
        np.subtract(1.0, t, out=t)
        np.multiply(grad_out, t, out=t)
        return t


class Sigmoid(Module):
    def __init__(self):
        super().__init__()
        self._y: np.ndarray | None = None

    def pipeline_out_meta(self, x: np.ndarray) -> tuple[tuple[int, ...], np.dtype]:
        return x.shape, np.result_type(x, 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        shape, dtype = self.pipeline_out_meta(x)
        y = arena.empty(shape, dtype)
        self.forward_into(x, y)
        return y

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> None:
        np.negative(x, out=out)
        np.exp(out, out=out)
        np.add(1.0, out, out=out)
        np.divide(1.0, out, out=out)
        self._y = out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        g = arena.empty(grad_out.shape, np.result_type(grad_out, self._y))
        np.multiply(grad_out, self._y, out=g)
        t = arena.empty(self._y.shape, self._y.dtype)
        np.subtract(1.0, self._y, out=t)
        np.multiply(g, t, out=g)
        return g


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
