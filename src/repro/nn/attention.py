"""Multi-head scaled dot-product attention with a hand-derived backward.

The backward pass uses the cached forward activations (Q, K, V heads and
attention weights) for activation-Jacobian products, and the *current*
projection weights for parameter-Jacobian products — matching the
backprop-with-different-weights gradient semantics of PipeMare §2.1.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module

_NEG_INF = -1e9


def causal_mask(t: int) -> np.ndarray:
    """(1, 1, t, t) boolean mask; True where attention is allowed."""
    return np.tril(np.ones((t, t), dtype=bool))[None, None]


def padding_mask(lengths: np.ndarray, t: int) -> np.ndarray:
    """(B, 1, 1, t) boolean mask: True for real tokens, False for padding."""
    lengths = np.asarray(lengths)
    return (np.arange(t)[None, :] < lengths[:, None])[:, None, None, :]


class MultiHeadAttention(Module):
    """Attention(query, key, value, mask) -> (B, Tq, d_model).

    ``mask`` is boolean, broadcastable to (B, H, Tq, Tk), True = attend.
    ``backward`` returns ``(d_query, d_key, d_value)``.
    """

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng)
        self.k_proj = Linear(d_model, d_model, rng)
        self.v_proj = Linear(d_model, d_model, rng)
        self.out_proj = Linear(d_model, d_model, rng)
        self._cache: tuple | None = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        B, T, _ = x.shape
        return x.reshape(B, T, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        B, H, T, D = x.shape
        return x.transpose(0, 2, 1, 3).reshape(B, T, H * D)

    def forward(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        qh = self._split(self.q_proj(query))
        kh = self._split(self.k_proj(key))
        vh = self._split(self.v_proj(value))
        scale = 1.0 / np.sqrt(self.d_head)
        scores = (qh @ kh.transpose(0, 1, 3, 2)) * scale
        if mask is not None:
            scores = np.where(mask, scores, _NEG_INF)
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ vh
        self._cache = (qh, kh, vh, attn, mask, scale)
        return self.out_proj(self._merge(ctx))

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        qh, kh, vh, attn, mask, scale = self._cache
        dctx = self._split(self.out_proj.backward(grad_out))
        dattn = dctx @ vh.transpose(0, 1, 3, 2)
        dvh = attn.transpose(0, 1, 3, 2) @ dctx
        dscores = F.softmax_backward(attn, dattn)
        if mask is not None:
            dscores = np.where(mask, dscores, 0.0)
        dqh = (dscores @ kh) * scale
        dkh = (dscores.transpose(0, 1, 3, 2) @ qh) * scale
        d_query = self.q_proj.backward(self._merge(dqh))
        d_key = self.k_proj.backward(self._merge(dkh))
        d_value = self.v_proj.backward(self._merge(dvh))
        return d_query, d_key, d_value
