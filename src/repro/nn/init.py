"""Weight initializers (Kaiming/Xavier), all taking an explicit Generator."""

from __future__ import annotations

import numpy as np


def kaiming_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-normal init: ``N(0, gain^2 / fan_in)`` — standard for ReLU nets."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot-uniform init: ``U(-a, a)`` with ``a = sqrt(6/(fan_in+fan_out))``."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
