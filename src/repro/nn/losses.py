"""Loss modules.  ``forward(pred, target) -> float``; ``backward() -> dpred``."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over (N, C) logits with optional label smoothing
    (the Transformer recipe in the paper uses smoothing 0.1, Table 7)."""

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = label_smoothing
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got {logits.shape}")
        n, c = logits.shape
        target_dist = F.one_hot(targets, c)
        if self.label_smoothing:
            eps = self.label_smoothing
            target_dist = (1.0 - eps) * target_dist + eps / c
        logp = F.log_softmax(logits, axis=-1)
        self._cache = (F.softmax(logits, axis=-1), target_dist, n)
        return float(-(target_dist * logp).sum() / n)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target_dist, n = self._cache
        return (probs - target_dist) / n


class SequenceCrossEntropyLoss(Module):
    """Token-level cross-entropy over (B, T, V) logits, ignoring padding.

    The mean is over non-pad tokens, matching fairseq's convention for the
    Transformer experiments (Appendix C.1).
    """

    def __init__(self, pad_id: int, label_smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.pad_id = pad_id
        self.label_smoothing = label_smoothing
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 3:
            raise ValueError(f"expected (B, T, V) logits, got {logits.shape}")
        b, t, v = logits.shape
        flat_logits = logits.reshape(b * t, v)
        flat_targets = targets.reshape(b * t)
        mask = flat_targets != self.pad_id
        n_tokens = int(mask.sum())
        if n_tokens == 0:
            raise ValueError("all tokens are padding")
        # Clamp pads to a valid class; their contribution is masked out.
        safe_targets = np.where(mask, flat_targets, 0)
        target_dist = F.one_hot(safe_targets, v)
        if self.label_smoothing:
            eps = self.label_smoothing
            target_dist = (1.0 - eps) * target_dist + eps / v
        target_dist *= mask[:, None]
        logp = F.log_softmax(flat_logits, axis=-1)
        probs = F.softmax(flat_logits, axis=-1) * mask[:, None]
        self._cache = (probs, target_dist, n_tokens, (b, t, v))
        return float(-(target_dist * logp).sum() / n_tokens)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target_dist, n_tokens, shape = self._cache
        return ((probs - target_dist) / n_tokens).reshape(shape)


class MSELoss(Module):
    """Mean squared error ``mean((pred - target)^2)`` (linear-regression)."""

    def __init__(self):
        super().__init__()
        self._cache: tuple | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        diff = pred - target
        self._cache = (diff, pred.size)
        return float(np.mean(diff**2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        diff, n = self._cache
        return 2.0 * diff / n
