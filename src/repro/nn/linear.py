"""Affine layers and shape utilities."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W + b`` over the trailing axis.

    Accepts inputs of shape ``(..., in_features)``.  The backward pass uses
    the *current* value of ``W`` for the input gradient (this is what allows
    forward/backward weight discrepancy in pipeline simulation) and the
    cached forward input for the weight gradient.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        gain: float | None = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if gain is None:
            w = init.xavier_uniform((in_features, out_features), in_features, out_features, rng)
        else:
            w = init.kaiming_normal((in_features, out_features), in_features, rng, gain=gain)
        self.weight = Parameter(w)
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected trailing dim {self.in_features}, got {x.shape}")
        self._x = x
        y = x @ self.weight.data
        if self.use_bias:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        x2 = x.reshape(-1, self.in_features)
        g2 = grad_out.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ g2
        if self.use_bias:
            self.bias.grad += g2.sum(axis=0)
        return grad_out @ self.weight.data.T


class Bias(Module):
    """Standalone bias add (used to give biasless graphs trainable offsets)."""

    def __init__(self, features: int):
        super().__init__()
        self.bias = Parameter(init.zeros((features,)))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self.bias.grad += grad_out.reshape(-1, grad_out.shape[-1]).sum(axis=0)
        return grad_out


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)
