"""Affine layers and shape utilities."""

from __future__ import annotations

import numpy as np

from repro.nn import arena, init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W + b`` over the trailing axis.

    Accepts inputs of shape ``(..., in_features)``.  The backward pass uses
    the *current* value of ``W`` for the input gradient (this is what allows
    forward/backward weight discrepancy in pipeline simulation) and the
    cached forward input for the weight gradient.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        gain: float | None = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if gain is None:
            w = init.xavier_uniform((in_features, out_features), in_features, out_features, rng)
        else:
            w = init.kaiming_normal((in_features, out_features), in_features, rng, gain=gain)
        self.weight = Parameter(w)
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        self._x: np.ndarray | None = None

    def pipeline_out_meta(self, x: np.ndarray) -> tuple[tuple[int, ...], np.dtype]:
        return x.shape[:-1] + (self.out_features,), np.result_type(x, self.weight.data)

    def forward(self, x: np.ndarray) -> np.ndarray:
        shape, dtype = self.pipeline_out_meta(x)
        y = arena.empty(shape, dtype)
        self.forward_into(x, y)
        return y

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> None:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected trailing dim {self.in_features}, got {x.shape}")
        self._x = x
        np.matmul(x, self.weight.data, out=out)
        if self.use_bias:
            np.add(out, self.bias.data, out=out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        x2 = x.reshape(-1, self.in_features)
        g2 = grad_out.reshape(-1, self.out_features)
        gw = arena.empty(self.weight.data.shape, self.weight.grad.dtype)
        np.matmul(x2.T, g2, out=gw)
        self.weight.grad += gw
        if self.use_bias:
            gb = arena.empty(self.bias.data.shape, self.bias.grad.dtype)
            np.sum(g2, axis=0, out=gb)
            self.bias.grad += gb
        gx = arena.empty(
            grad_out.shape[:-1] + (self.in_features,),
            np.result_type(grad_out, self.weight.data),
        )
        np.matmul(grad_out, self.weight.data.T, out=gx)
        return gx


class Bias(Module):
    """Standalone bias add (used to give biasless graphs trainable offsets)."""

    def __init__(self, features: int):
        super().__init__()
        self.bias = Parameter(init.zeros((features,)))

    def pipeline_out_meta(self, x: np.ndarray) -> tuple[tuple[int, ...], np.dtype]:
        return x.shape, np.result_type(x, self.bias.data)

    def forward(self, x: np.ndarray) -> np.ndarray:
        shape, dtype = self.pipeline_out_meta(x)
        y = arena.empty(shape, dtype)
        self.forward_into(x, y)
        return y

    def forward_into(self, x: np.ndarray, out: np.ndarray) -> None:
        np.add(x, self.bias.data, out=out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g2 = grad_out.reshape(-1, grad_out.shape[-1])
        gb = arena.empty(self.bias.data.shape, self.bias.grad.dtype)
        np.sum(g2, axis=0, out=gb)
        self.bias.grad += gb
        return grad_out


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)
