"""A small numpy neural-network framework with *explicit* backward passes.

Unlike tape-based autodiff, every :class:`Module` implements ``backward``
by hand against whatever values its parameters hold *at backward time*.
This is exactly what asynchronous pipeline-parallel execution needs: the
executor can swap a stage's parameters to the delayed forward version
``u_fwd`` before ``forward`` and to a different version ``u_bkwd`` before
``backward``, producing the backpropagation-with-different-weights gradient
``∇f_t(u_fwd, u_bkwd)`` of PipeMare §2.1.
"""

from repro.nn.module import Module, Parameter, Residual, Sequential
from repro.nn.linear import Linear, Bias, Flatten
from repro.nn.activations import ReLU, GELU, Tanh, Sigmoid, Identity
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm2d, GroupNorm, LayerNorm
from repro.nn.pooling import AvgPool2d, MaxPool2d, GlobalAvgPool2d
from repro.nn.embedding import Embedding, PositionalEncoding
from repro.nn.dropout import Dropout
from repro.nn.attention import MultiHeadAttention, causal_mask, padding_mask
from repro.nn.losses import (
    CrossEntropyLoss,
    MSELoss,
    SequenceCrossEntropyLoss,
)

__all__ = [
    "Module",
    "Parameter",
    "Residual",
    "Sequential",
    "causal_mask",
    "padding_mask",
    "Linear",
    "Bias",
    "Flatten",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Conv2d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Embedding",
    "PositionalEncoding",
    "Dropout",
    "MultiHeadAttention",
    "CrossEntropyLoss",
    "MSELoss",
    "SequenceCrossEntropyLoss",
]
