"""Token embedding and fixed sinusoidal positional encoding."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table (vocab, d_model); input is an integer array (B, T)."""

    def __init__(self, vocab_size: int, d_model: int, rng: np.random.Generator, scale: bool = False):
        super().__init__()
        self.vocab_size = vocab_size
        self.d_model = d_model
        # Transformer convention: N(0, 1/d_model) then optionally scale by sqrt(d)
        self.weight = Parameter(rng.normal(0.0, 1.0 / np.sqrt(d_model), size=(vocab_size, d_model)))
        self.scale = np.sqrt(d_model) if scale else 1.0
        # A stack, not a single slot: a *shared* embedding (WMT17-style tied
        # encoder/decoder embedding) is called twice per forward pass, and
        # backward must pop caches in LIFO order.
        self._idx_stack: list[np.ndarray] = []

    def forward(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError(f"Embedding expects integer indices, got dtype {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.vocab_size):
            raise ValueError("token index out of vocabulary range")
        if self.training:  # eval-mode forwards (e.g. greedy decoding) never backward
            self._idx_stack.append(idx)
        return self.weight.data[idx] * self.scale

    def backward(self, grad_out: np.ndarray) -> None:
        if not self._idx_stack:
            raise RuntimeError("backward called before forward")
        idx = self._idx_stack.pop()
        flat_idx = idx.reshape(-1)
        flat_g = grad_out.reshape(-1, self.d_model) * self.scale
        np.add.at(self.weight.grad, flat_idx, flat_g)
        return None  # no gradient flows into integer tokens


class PositionalEncoding(Module):
    """Adds fixed sinusoidal position encodings (Vaswani et al., 2017)."""

    # ``pe`` is deterministic from the constructor arguments and never
    # written after __init__ — pipeline workers must not treat it as
    # mutable persistent state (see WorkerCompute.persistent_state).
    pipeline_constant_attrs = ("pe",)

    def __init__(self, d_model: int, max_len: int = 2048):
        super().__init__()
        position = np.arange(max_len)[:, None]
        div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
        pe = np.zeros((max_len, d_model))
        pe[:, 0::2] = np.sin(position * div)
        pe[:, 1::2] = np.cos(position * div[: pe[:, 1::2].shape[1]])
        self.pe = pe  # not a Parameter: fixed
        self.max_len = max_len

    def forward(self, x: np.ndarray) -> np.ndarray:
        T = x.shape[1]
        if T > self.max_len:
            raise ValueError(f"sequence length {T} exceeds max_len {self.max_len}")
        return x + self.pe[None, :T]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
