"""Single-file ``.npz`` checkpoints.

Layout: one flat array per npz entry, with structured keys

* ``model/<param-name>`` — model weights,
* ``optim/g<i>/p<j>/<key>`` — optimizer state arrays,
* ``exec/corrector/s<i>/p<j>`` — T2 velocity buffers,
* ``exec/store/s<i>/v<version>/p<j>`` — resident weight versions,
* ``meta`` — a JSON string with scalars (step counters, lr scales, the
  version window) and the user's ``extra`` dict.

The nested ``state_dict`` structures live on the classes themselves
(:meth:`Module.state_dict`, :meth:`Optimizer.state_dict`,
:meth:`PipelineExecutor.state_dict`); this module only flattens them to
npz entries and back.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.pipeline.executor import PipelineExecutor

FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or incompatible."""


# -- model-only convenience ----------------------------------------------------

def save_model(path: str | os.PathLike, model: Module) -> None:
    """Write just the model weights (``model/<name>`` entries)."""
    arrays = {f"model/{name}": arr for name, arr in model.state_dict().items()}
    arrays["meta"] = np.array(
        json.dumps({"format_version": FORMAT_VERSION, "kind": "model"})
    )
    np.savez(path, **arrays)


def load_model(path: str | os.PathLike, model: Module) -> None:
    """Load weights saved by :func:`save_model` or :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        state = {
            key[len("model/"):]: data[key]
            for key in data.files
            if key.startswith("model/")
        }
    if not state:
        raise CheckpointError(f"{path}: no model entries found")
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"{path}: incompatible model state: {exc}") from exc


# -- full training checkpoints ---------------------------------------------------

def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    executor: PipelineExecutor | None = None,
    extra: dict[str, Any] | None = None,
) -> None:
    """Write a restartable training checkpoint.

    ``extra`` must be JSON-serializable (epoch counters, best metric, rng
    seeds — anything the training loop wants back on resume).
    """
    arrays: dict[str, np.ndarray] = {
        f"model/{name}": arr for name, arr in model.state_dict().items()
    }
    meta: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "kind": "checkpoint",
        "extra": extra or {},
    }

    if optimizer is not None:
        ostate = optimizer.state_dict()
        meta["optim"] = {
            "steps": ostate["steps"],
            "lr": ostate["lr"],
            "lr_scales": ostate["lr_scales"],
            "group_sizes": [len(states) for states in ostate["param_states"]],
        }
        for gi, states in enumerate(ostate["param_states"]):
            for pj, pstate in enumerate(states):
                for key, arr in pstate.items():
                    arrays[f"optim/g{gi}/p{pj}/{key}"] = arr

    if executor is not None:
        estate = executor.state_dict()
        store = estate["store"]
        meta["exec"] = {
            "t": estate["t"],
            "store_oldest": store["oldest_version"],
            "store_counts": [len(v) for v in store["payloads"]],
            "has_corrector": "corrector" in estate,
        }
        for si, versions in enumerate(store["payloads"]):
            for vi, weights in enumerate(versions):
                for pj, w in enumerate(weights):
                    arrays[f"exec/store/s{si}/v{vi}/p{pj}"] = w
        if "corrector" in estate:
            for si, stage in enumerate(estate["corrector"]["velocity"]):
                for pj, v in enumerate(stage):
                    arrays[f"exec/corrector/s{si}/p{pj}"] = v

    arrays["meta"] = np.array(json.dumps(meta))
    np.savez(path, **arrays)


def _read_meta(data) -> dict:
    if "meta" not in data.files:
        raise CheckpointError("file has no 'meta' entry — not a repro checkpoint")
    meta = json.loads(str(data["meta"]))
    if meta.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {meta.get('format_version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return meta


def _group_keys(files: list[str], prefix: str) -> list[str]:
    return [k for k in files if k.startswith(prefix)]


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    executor: PipelineExecutor | None = None,
) -> dict[str, Any]:
    """Restore a checkpoint onto already-constructed objects.

    The caller rebuilds the model/optimizer/executor with the original
    configuration (the library keeps configuration in code, not pickles);
    this function restores their mutable state.  Returns the ``extra`` dict
    passed at save time.
    """
    with np.load(path, allow_pickle=False) as data:
        meta = _read_meta(data)
        if meta.get("kind") != "checkpoint":
            raise CheckpointError(
                f"{path}: kind={meta.get('kind')!r} is not a training checkpoint"
            )

        model_state = {
            key[len("model/"):]: data[key]
            for key in _group_keys(data.files, "model/")
        }
        try:
            model.load_state_dict(model_state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(f"{path}: incompatible model: {exc}") from exc

        if optimizer is not None:
            if "optim" not in meta:
                raise CheckpointError(f"{path}: checkpoint has no optimizer state")
            om = meta["optim"]
            param_states = []
            for gi, size in enumerate(om["group_sizes"]):
                states = []
                for pj in range(size):
                    prefix = f"optim/g{gi}/p{pj}/"
                    states.append(
                        {
                            key[len(prefix):]: data[key]
                            for key in _group_keys(data.files, prefix)
                        }
                    )
                param_states.append(states)
            try:
                optimizer.load_state_dict(
                    {
                        "steps": om["steps"],
                        "lr": om["lr"],
                        "lr_scales": om["lr_scales"],
                        "param_states": param_states,
                    }
                )
            except ValueError as exc:
                raise CheckpointError(f"{path}: incompatible optimizer: {exc}") from exc

        if executor is not None:
            if "exec" not in meta:
                raise CheckpointError(f"{path}: checkpoint has no executor state")
            em = meta["exec"]
            payloads = []
            for si, count in enumerate(em["store_counts"]):
                versions = []
                for vi in range(count):
                    prefix = f"exec/store/s{si}/v{vi}/"
                    keys = _group_keys(data.files, prefix)
                    keys.sort(key=lambda k: int(k.rsplit("/p", 1)[1]))
                    versions.append([data[k] for k in keys])
                payloads.append(versions)
            estate: dict[str, Any] = {
                "t": em["t"],
                "store": {"oldest_version": em["store_oldest"], "payloads": payloads},
            }
            if em["has_corrector"]:
                velocity = []
                for si in range(len(em["store_counts"])):
                    prefix = f"exec/corrector/s{si}/"
                    keys = _group_keys(data.files, prefix)
                    keys.sort(key=lambda k: int(k.rsplit("/p", 1)[1]))
                    velocity.append([data[k] for k in keys])
                estate["corrector"] = {"velocity": velocity}
            try:
                executor.load_state_dict(estate)
            except ValueError as exc:
                raise CheckpointError(f"{path}: incompatible executor: {exc}") from exc

    return meta["extra"]
