"""Single-file ``.npz`` checkpoints.

Layout: one flat array per npz entry, with structured keys

* ``model/<param-name>`` — model weights,
* ``optim/g<i>/p<j>/<key>`` — optimizer state arrays,
* ``exec/corrector/s<i>/p<j>`` — T2 velocity buffers,
* ``exec/store/s<i>/v<version>/p<j>`` — resident weight versions,
* ``meta`` — a JSON string with scalars (step counters, lr scales, the
  version window) and the user's ``extra`` dict.

The nested ``state_dict`` structures live on the classes themselves
(:meth:`Module.state_dict`, :meth:`Optimizer.state_dict`,
:meth:`PipelineExecutor.state_dict`); this module only flattens them to
npz entries and back.

Crash safety
------------
Writes are atomic: the npz is assembled in a temp file in the target
directory, fsync'd, and ``os.replace``'d into place — a driver killed
mid-save leaves either the old file or the new one, never a torn half.
``meta`` carries a crc32 per array blob, verified on load; any mismatch,
truncation, or unreadable zip raises :class:`CheckpointCorruptError` (a
:class:`CheckpointError`) instead of silently restoring garbage.
:class:`CheckpointManager` adds a rolling directory of snapshots with a
``latest`` pointer and falls back to the previous good snapshot when the
newest is corrupt.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from typing import Any

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.pipeline.executor import PipelineExecutor

FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or incompatible."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file exists but its bytes are damaged — unreadable
    zip container, truncated entry, or a crc32 mismatch on an array blob.
    Distinct from plain :class:`CheckpointError` so callers (e.g.
    :meth:`CheckpointManager.load_latest`) can fall back to an older
    snapshot on corruption but still surface incompatibility loudly."""


# -- crash-safe primitives -----------------------------------------------------

def _checksums(arrays: dict[str, np.ndarray]) -> dict[str, int]:
    """crc32 per array blob, over the C-contiguous bytes (layout-independent:
    the checksum covers values, the npz entry preserves layout)."""
    return {
        key: zlib.crc32(np.ascontiguousarray(arr).tobytes())
        for key, arr in arrays.items()
    }


def _atomic_savez(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> str:
    """``np.savez`` into a temp file in the target directory, fsync, then
    ``os.replace`` over ``path``.  Mirrors np.savez's string-path behavior
    of appending ``.npz``; returns the final path."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _open_npz(path: str | os.PathLike):
    """``np.load`` with damage mapped to :class:`CheckpointCorruptError`
    (missing file stays a plain :class:`CheckpointError`)."""
    if not os.path.exists(path):
        raise CheckpointError(f"{path}: no such checkpoint")
    try:
        return np.load(path, allow_pickle=False)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        # BadZipFile is a plain Exception (not OSError); a torn npz shows
        # up as any of these depending on where the damage landed.
        raise CheckpointCorruptError(f"{path}: unreadable npz: {exc}") from exc


def _verify_checksums(data, meta: dict, path) -> None:
    sums = meta.get("checksums")
    if sums is None:
        return  # pre-crc32 checkpoint (same FORMAT_VERSION): still loadable
    for key, expect in sums.items():
        if key not in data.files:
            raise CheckpointCorruptError(
                f"{path}: entry {key!r} listed in checksums but missing"
            )
        try:
            arr = data[key]
        except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            raise CheckpointCorruptError(
                f"{path}: entry {key!r} unreadable: {exc}"
            ) from exc
        got = zlib.crc32(np.ascontiguousarray(arr).tobytes())
        if got != expect:
            raise CheckpointCorruptError(
                f"{path}: crc32 mismatch on {key!r} "
                f"(stored {expect:#010x}, computed {got:#010x})"
            )


# -- model-only convenience ----------------------------------------------------

def save_model(path: str | os.PathLike, model: Module) -> None:
    """Write just the model weights (``model/<name>`` entries)."""
    arrays = {f"model/{name}": arr for name, arr in model.state_dict().items()}
    arrays["meta"] = np.array(
        json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "kind": "model",
                "checksums": _checksums(arrays),
            }
        )
    )
    _atomic_savez(path, arrays)


def load_model(path: str | os.PathLike, model: Module) -> None:
    """Load weights saved by :func:`save_model` or :func:`save_checkpoint`."""
    with _open_npz(path) as data:
        meta = _read_meta(data)
        _verify_checksums(data, meta, path)
        state = {
            key[len("model/"):]: data[key]
            for key in data.files
            if key.startswith("model/")
        }
    if not state:
        raise CheckpointError(f"{path}: no model entries found")
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"{path}: incompatible model state: {exc}") from exc


# -- full training checkpoints ---------------------------------------------------

def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    executor: PipelineExecutor | None = None,
    extra: dict[str, Any] | None = None,
) -> None:
    """Write a restartable training checkpoint.

    ``extra`` must be JSON-serializable (epoch counters, best metric, rng
    seeds — anything the training loop wants back on resume).
    """
    arrays: dict[str, np.ndarray] = {
        f"model/{name}": arr for name, arr in model.state_dict().items()
    }
    meta: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "kind": "checkpoint",
        "extra": extra or {},
    }

    if optimizer is not None:
        ostate = optimizer.state_dict()
        meta["optim"] = {
            "steps": ostate["steps"],
            "lr": ostate["lr"],
            "lr_scales": ostate["lr_scales"],
            "group_sizes": [len(states) for states in ostate["param_states"]],
        }
        for gi, states in enumerate(ostate["param_states"]):
            for pj, pstate in enumerate(states):
                for key, arr in pstate.items():
                    arrays[f"optim/g{gi}/p{pj}/{key}"] = arr

    if executor is not None:
        estate = executor.state_dict()
        store = estate["store"]
        meta["exec"] = {
            "t": estate["t"],
            "store_oldest": store["oldest_version"],
            "store_counts": [len(v) for v in store["payloads"]],
            "has_corrector": "corrector" in estate,
        }
        for si, versions in enumerate(store["payloads"]):
            for vi, weights in enumerate(versions):
                for pj, w in enumerate(weights):
                    arrays[f"exec/store/s{si}/v{vi}/p{pj}"] = w
        if "corrector" in estate:
            for si, stage in enumerate(estate["corrector"]["velocity"]):
                for pj, v in enumerate(stage):
                    arrays[f"exec/corrector/s{si}/p{pj}"] = v

    meta["checksums"] = _checksums(arrays)
    arrays["meta"] = np.array(json.dumps(meta))
    _atomic_savez(path, arrays)


def _read_meta(data) -> dict:
    if "meta" not in data.files:
        raise CheckpointError("file has no 'meta' entry — not a repro checkpoint")
    try:
        meta = json.loads(str(data["meta"]))
    except (OSError, ValueError, EOFError) as exc:
        raise CheckpointCorruptError(f"damaged 'meta' entry: {exc}") from exc
    if meta.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {meta.get('format_version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return meta


def _group_keys(files: list[str], prefix: str) -> list[str]:
    return [k for k in files if k.startswith(prefix)]


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    executor: PipelineExecutor | None = None,
) -> dict[str, Any]:
    """Restore a checkpoint onto already-constructed objects.

    The caller rebuilds the model/optimizer/executor with the original
    configuration (the library keeps configuration in code, not pickles);
    this function restores their mutable state.  Returns the ``extra`` dict
    passed at save time.
    """
    with _open_npz(path) as data:
        meta = _read_meta(data)
        _verify_checksums(data, meta, path)
        if meta.get("kind") != "checkpoint":
            raise CheckpointError(
                f"{path}: kind={meta.get('kind')!r} is not a training checkpoint"
            )

        model_state = {
            key[len("model/"):]: data[key]
            for key in _group_keys(data.files, "model/")
        }
        try:
            model.load_state_dict(model_state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(f"{path}: incompatible model: {exc}") from exc

        if optimizer is not None:
            if "optim" not in meta:
                raise CheckpointError(f"{path}: checkpoint has no optimizer state")
            om = meta["optim"]
            param_states = []
            for gi, size in enumerate(om["group_sizes"]):
                states = []
                for pj in range(size):
                    prefix = f"optim/g{gi}/p{pj}/"
                    states.append(
                        {
                            key[len(prefix):]: data[key]
                            for key in _group_keys(data.files, prefix)
                        }
                    )
                param_states.append(states)
            try:
                optimizer.load_state_dict(
                    {
                        "steps": om["steps"],
                        "lr": om["lr"],
                        "lr_scales": om["lr_scales"],
                        "param_states": param_states,
                    }
                )
            except ValueError as exc:
                raise CheckpointError(f"{path}: incompatible optimizer: {exc}") from exc

        if executor is not None:
            if "exec" not in meta:
                raise CheckpointError(f"{path}: checkpoint has no executor state")
            em = meta["exec"]
            payloads = []
            for si, count in enumerate(em["store_counts"]):
                versions = []
                for vi in range(count):
                    prefix = f"exec/store/s{si}/v{vi}/"
                    keys = _group_keys(data.files, prefix)
                    keys.sort(key=lambda k: int(k.rsplit("/p", 1)[1]))
                    versions.append([data[k] for k in keys])
                payloads.append(versions)
            estate: dict[str, Any] = {
                "t": em["t"],
                "store": {"oldest_version": em["store_oldest"], "payloads": payloads},
            }
            if em["has_corrector"]:
                velocity = []
                for si in range(len(em["store_counts"])):
                    prefix = f"exec/corrector/s{si}/"
                    keys = _group_keys(data.files, prefix)
                    keys.sort(key=lambda k: int(k.rsplit("/p", 1)[1]))
                    velocity.append([data[k] for k in keys])
                estate["corrector"] = {"velocity": velocity}
            try:
                executor.load_state_dict(estate)
            except ValueError as exc:
                raise CheckpointError(f"{path}: incompatible executor: {exc}") from exc

    return meta["extra"]


# -- rolling snapshot directory ------------------------------------------------

class CheckpointManager:
    """A directory of rolling snapshots with a crash-safe ``latest`` pointer.

    ``save`` writes ``ckpt-<n>.npz`` atomically, then atomically updates a
    ``latest`` pointer file, then prunes beyond ``keep`` snapshots.  The
    ordering makes every crash window safe: dying before the pointer
    update leaves the pointer on the previous good snapshot; dying after
    leaves an extra file that the next save prunes.

    ``load_latest`` follows the pointer first, and on
    :class:`CheckpointCorruptError` walks the remaining snapshots newest
    to oldest — the autosave cadence guarantees at most one torn file, so
    the previous snapshot is good unless the directory was damaged
    externally.
    """

    POINTER = "latest"
    PREFIX = "ckpt-"

    def __init__(self, directory: str | os.PathLike, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)

    # -- bookkeeping -----------------------------------------------------------

    def _snapshots(self) -> list[str]:
        """Snapshot filenames, oldest first (by sequence number)."""
        names = [
            n
            for n in os.listdir(self.directory)
            if n.startswith(self.PREFIX) and n.endswith(".npz")
        ]
        return sorted(names, key=self._seq)

    @staticmethod
    def _seq(name: str) -> int:
        try:
            return int(name[len(CheckpointManager.PREFIX):-len(".npz")])
        except ValueError:
            return -1

    def latest_path(self) -> str | None:
        """The pointer target if it exists on disk, else the newest
        snapshot, else None."""
        pointer = os.path.join(self.directory, self.POINTER)
        try:
            with open(pointer, "r", encoding="utf-8") as fh:
                name = fh.read().strip()
            if name and os.path.exists(os.path.join(self.directory, name)):
                return os.path.join(self.directory, name)
        except OSError:
            pass
        names = self._snapshots()
        return os.path.join(self.directory, names[-1]) if names else None

    # -- save / load -----------------------------------------------------------

    def save(
        self,
        model: Module,
        optimizer: Optimizer | None = None,
        executor: PipelineExecutor | None = None,
        extra: dict[str, Any] | None = None,
    ) -> str:
        names = self._snapshots()
        seq = self._seq(names[-1]) + 1 if names else 0
        name = f"{self.PREFIX}{seq:06d}.npz"
        path = os.path.join(self.directory, name)
        save_checkpoint(path, model, optimizer, executor, extra)

        # Pointer update is its own atomic rename, *after* the data file
        # is durable — a crash between the two leaves the old pointer.
        pointer = os.path.join(self.directory, self.POINTER)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(name)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, pointer)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

        for old in self._snapshots()[: -self.keep]:
            try:
                os.unlink(os.path.join(self.directory, old))
            except OSError:
                pass
        return path

    def load_latest(
        self,
        model: Module,
        optimizer: Optimizer | None = None,
        executor: PipelineExecutor | None = None,
    ) -> dict[str, Any]:
        """Restore the newest loadable snapshot; returns its ``extra``.

        Raises :class:`CheckpointError` if the directory holds no
        snapshots, :class:`CheckpointCorruptError` if every snapshot is
        damaged.  Incompatibility (wrong shapes, missing optimizer state)
        is *not* fallback-worthy and re-raises immediately.
        """
        candidates: list[str] = []
        pointed = self.latest_path()
        if pointed is not None:
            candidates.append(pointed)
        for name in reversed(self._snapshots()):
            path = os.path.join(self.directory, name)
            if path not in candidates:
                candidates.append(path)
        if not candidates:
            raise CheckpointError(f"{self.directory}: no snapshots to load")
        last_corrupt: CheckpointCorruptError | None = None
        for path in candidates:
            try:
                return load_checkpoint(path, model, optimizer, executor)
            except CheckpointCorruptError as exc:
                last_corrupt = exc
        raise CheckpointCorruptError(
            f"{self.directory}: every snapshot is corrupt "
            f"(last error: {last_corrupt})"
        )
