"""Checkpointing: save and restore training state as ``.npz`` files.

Long pipeline-parallel runs (the paper's are 60-200 epochs) need restartable
training.  A checkpoint captures the full simulator state — model weights,
optimizer state, the per-stage weight-version queues that delayed reads
depend on, and the T2 velocity buffers — so a restored run continues
*bit-exactly* where the original left off (verified by the resume-
equivalence tests).
"""

from repro.io.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    load_model,
    save_checkpoint,
    save_model,
)

__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointManager",
    "load_checkpoint",
    "load_model",
    "save_checkpoint",
    "save_model",
]
