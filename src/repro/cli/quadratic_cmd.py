"""``repro quadratic`` — Figure 3(a)/5(a): loss trajectories of delayed SGD
on the 1-D quadratic, for several delays (and optionally a discrepancy Δ).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cli._command import Command
from repro.theory.quadratic import simulate_delayed_sgd, simulate_discrepancy_sgd
from repro.viz import line_plot


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--taus", type=int, nargs="+", default=[0, 5, 10],
        help="delays to simulate (Figure 3a defaults)",
    )
    parser.add_argument("--alpha", type=float, default=0.2, help="step size α")
    parser.add_argument("--lam", type=float, default=1.0, help="curvature λ")
    parser.add_argument("--steps", type=int, default=250, help="iterations")
    parser.add_argument(
        "--delta", type=float, default=None,
        help="discrepancy sensitivity Δ; switches to the Figure 5a model "
        "(τ_fwd=max(taus), τ_bkwd sweeps over the given taus)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _run(args: argparse.Namespace) -> int:
    if args.alpha <= 0 or args.lam <= 0 or args.steps < 1:
        print("alpha, lam must be positive and steps >= 1")
        return 2
    series: dict[str, tuple[list[float], list[float]]] = {}
    if args.delta is None:
        for tau in args.taus:
            traj = simulate_delayed_sgd(
                args.lam, args.alpha, tau, args.steps,
                rng=np.random.default_rng(args.seed),
            )
            xs = list(range(len(traj.losses)))
            series[f"τ={tau}{' (diverged)' if traj.diverged else ''}"] = (
                xs, traj.losses.tolist()
            )
        title = f"Figure 3(a) — quadratic, α={args.alpha}, λ={args.lam}"
    else:
        tau_fwd = max(args.taus)
        for tau_b in sorted(set(args.taus)):
            if tau_b > tau_fwd:
                continue
            traj = simulate_discrepancy_sgd(
                args.lam, args.alpha, tau_fwd, tau_b, args.delta, args.steps,
                rng=np.random.default_rng(args.seed),
            )
            series[
                f"τb={tau_b}{' (diverged)' if traj.diverged else ''}"
            ] = (list(range(len(traj.losses))), traj.losses.tolist())
        title = (
            f"Figure 5(a) — discrepancy Δ={args.delta}, τ_fwd={tau_fwd}, "
            f"α={args.alpha}"
        )
    print(
        line_plot(
            series, title=title, ylabel="loss", xlabel="iteration", logy=True
        )
    )
    return 0


COMMAND = Command(
    "quadratic", "Figure 3a/5a quadratic-model trajectories", _add_arguments, _run
)
