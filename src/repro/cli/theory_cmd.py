"""``repro theory`` — the stability thresholds of Lemmas 1-3 next to the
numerically computed maxima, for a given delay configuration.

This is the quadratic-model calculator behind Figures 3(b), 5(b), 8 and 16:
closed-form bounds from :mod:`repro.theory.stability` and bisection over
the exact characteristic polynomials from :mod:`repro.theory.polynomials`.
"""

from __future__ import annotations

import argparse

from repro.cli._command import Command
from repro.theory import (
    lemma1_alpha_max,
    lemma2_alpha_bound,
    lemma3_alpha_bound,
    max_stable_alpha,
)
from repro.theory.polynomials import (
    char_poly_delayed_sgd,
    char_poly_discrepancy,
    char_poly_momentum,
    char_poly_t2,
)
from repro.viz import format_table


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tau", type=int, default=10, help="forward delay τ_fwd")
    parser.add_argument("--tau-bkwd", type=int, default=0, help="backward delay τ_bkwd")
    parser.add_argument("--lam", type=float, default=1.0, help="curvature λ")
    parser.add_argument(
        "--delta", type=float, default=0.0,
        help="discrepancy sensitivity Δ (Section 3.2)",
    )
    parser.add_argument("--beta", type=float, default=0.0, help="momentum β (Lemma 3)")
    parser.add_argument(
        "--decay", type=float, default=None,
        help="T2 decay D; when set, also report the T2-corrected threshold",
    )


def _run(args: argparse.Namespace) -> int:
    tau, tb, lam = args.tau, args.tau_bkwd, args.lam
    if tau < 1 or tb < 0 or tb > tau:
        print("need 1 <= tau and 0 <= tau_bkwd <= tau")
        return 2
    if lam <= 0:
        print("curvature lam must be positive")
        return 2

    rows: list[list] = []
    rows.append(
        [
            "Lemma 1 (plain SGD)",
            lemma1_alpha_max(tau, lam),
            max_stable_alpha(lambda a: char_poly_delayed_sgd(tau, a, lam)),
        ]
    )
    if args.beta > 0:
        rows.append(
            [
                f"Lemma 3 (momentum β={args.beta})",
                lemma3_alpha_bound(tau, lam),
                max_stable_alpha(
                    lambda a: char_poly_momentum(tau, a, lam, args.beta)
                ),
            ]
        )
    if args.delta != 0.0 and tb < tau:
        rows.append(
            [
                f"Lemma 2 (Δ={args.delta})",
                lemma2_alpha_bound(tau, tb, lam, args.delta),
                max_stable_alpha(
                    lambda a: char_poly_discrepancy(tau, tb, a, lam, args.delta)
                ),
            ]
        )
        if args.decay is not None:
            # per-stage rule from §3.2: γ_i = D^{1/(τ_fwd−τ_bkwd)}
            gamma = float(args.decay) ** (1.0 / (tau - tb)) if args.decay > 0 else 0.0
            rows.append(
                [
                    f"T2-corrected (D={args.decay}, γ={gamma:.3f})",
                    None,
                    max_stable_alpha(
                        lambda a: char_poly_t2(
                            tau, tb, a, lam, args.delta, gamma=gamma
                        )
                    ),
                ]
            )
    print(
        format_table(
            ["model", "closed-form bound", "numerical max stable α"],
            rows,
            title=(
                f"Stability thresholds — τ_fwd={tau}, τ_bkwd={tb}, λ={lam:g}"
            ),
            float_fmt=".5f",
        )
    )
    print(
        "\nLemma 1/3 are exact-threshold and upper bounds respectively;"
        "\nLemma 2 bounds the first instability from above (§3.2)."
    )
    return 0


COMMAND = Command("theory", "Lemma 1-3 stability thresholds", _add_arguments, _run)
