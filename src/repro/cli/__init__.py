"""Command-line interface: ``python -m repro <command>``.

Each paper artifact the library can regenerate is exposed as a subcommand,
so a user can reproduce a table or explore the theory without writing any
code.  Commands are thin: they parse arguments, call the corresponding
:mod:`repro.experiments` / :mod:`repro.theory` entry point, and render the
result with :mod:`repro.viz`.

========== =====================================================
command     regenerates
========== =====================================================
info        package/experiment index
delays      Table 1 delay/throughput/memory characterization
theory      Lemma 1-3 bounds + numerical stability thresholds
quadratic   Figure 3(a)/5(a) quadratic-model trajectories
heatmap     Figure 3(b) α-τ stability heatmap
train       one workload run (any method/technique combination)
table2      Table 2 end-to-end comparison
table3      Table 3 technique ablation
sweep       Figure 2/15 stage-count sweeps
recompute   Table 4/5 + Figure 6 activation-memory analysis
hogwild     Appendix E stochastic-asynchrony study
========== =====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.cli import (
    delays_cmd,
    heatmap_cmd,
    hogwild_cmd,
    info_cmd,
    quadratic_cmd,
    recompute_cmd,
    schedule_cmd,
    sweep_cmd,
    table_cmds,
    theory_cmd,
    train_cmd,
)

# Every module contributes (name, help, add_arguments, run).
_COMMANDS = [
    info_cmd.COMMAND,
    delays_cmd.COMMAND,
    schedule_cmd.COMMAND,
    theory_cmd.COMMAND,
    quadratic_cmd.COMMAND,
    heatmap_cmd.COMMAND,
    train_cmd.COMMAND,
    table_cmds.TABLE2,
    table_cmds.TABLE3,
    sweep_cmd.COMMAND,
    recompute_cmd.COMMAND,
    hogwild_cmd.COMMAND,
]


def build_parser() -> argparse.ArgumentParser:
    """The top-level parser with one subparser per command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PipeMare (MLSYS 2021) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", metavar="command")
    for cmd in _COMMANDS:
        p = sub.add_parser(cmd.name, help=cmd.help, description=cmd.help)
        cmd.add_arguments(p)
        p.set_defaults(_run=cmd.run)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "_run", None):
        parser.print_help()
        return 2
    return int(args._run(args) or 0)


def run(argv: Sequence[str] | None = None) -> None:  # pragma: no cover
    sys.exit(main(argv))
