"""The subcommand protocol shared by every CLI module."""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Command:
    """One CLI subcommand: its name, help line, and behavior."""

    name: str
    help: str
    add_arguments: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


def add_workload_arg(parser: argparse.ArgumentParser) -> None:
    """Shared ``--workload`` choice across training commands."""
    parser.add_argument(
        "--workload",
        choices=["cifar", "imagenet", "iwslt", "wmt", "translation"],
        default="cifar",
        help="paper task stand-in (default: cifar; 'translation' is an "
        "alias for the iwslt preset)",
    )


def add_common_run_args(parser: argparse.ArgumentParser) -> None:
    """Arguments every training-style command shares."""
    parser.add_argument("--epochs", type=int, default=6, help="training epochs")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--stages", type=int, default=None,
        help="pipeline stage count (default: workload's finest granularity)",
    )


def make_workload(name: str):
    """Build the named workload preset."""
    from repro.experiments.workloads import make_image_workload, make_translation_workload

    if name in ("cifar", "imagenet"):
        return make_image_workload(name)
    return make_translation_workload("iwslt" if name == "translation" else name)
