"""``repro hogwild`` — Appendix E: training under Hogwild!-style stochastic
(truncated-exponential) per-stage delays, with and without T1."""

from __future__ import annotations

import argparse

from repro.cli._command import Command, make_workload
from repro.experiments.hogwild_study import run_hogwild_image
from repro.viz import format_table, sparkline


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=["cifar", "imagenet"], default="cifar",
        help="image workload preset (Appendix E studies both task families; "
        "the CLI exposes the image one)",
    )
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--stages", type=int, default=None)
    parser.add_argument(
        "--tau-max", type=int, default=None,
        help="delay truncation (default: 3x the mean pipeline delay)",
    )


def _run(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    rows = []
    curves = {}
    for label, use_t1 in (("hogwild", False), ("hogwild+T1", True)):
        result = run_hogwild_image(
            workload,
            epochs=args.epochs,
            use_t1=use_t1,
            tau_max=args.tau_max,
            num_stages=args.stages,
            seed=args.seed,
        )
        rows.append([label, result.best_metric, str(result.diverged)])
        curves[label] = result.history.series("eval_metric")
    print(
        format_table(
            ["run", f"best {workload.metric_name}", "diverged"],
            rows,
            title=f"Appendix E — stochastic delays on {workload.name}",
            float_fmt=".2f",
        )
    )
    print("\neval-metric curves:")
    for label, ys in curves.items():
        print(f"  {label:<12} {sparkline(ys)}")
    print(
        "\nExpected shape: T1's per-stage rescheduling improves (or rescues)"
        "\nfinal quality under stochastic asynchrony, as in Figure 19."
    )
    return 0


COMMAND = Command("hogwild", "Appendix E stochastic-delay study", _add_arguments, _run)
