"""``repro train`` — run one workload with any method/technique combination
and print the learning curve plus summary row.

This is the single-run workhorse behind Figures 4, 9, 10 and 17/18: pick a
workload preset, a pipeline method, and which of T1/T2/T3 to enable.
"""

from __future__ import annotations

import argparse

from repro.cli._command import Command, add_common_run_args, add_workload_arg, make_workload
from repro.core import PipeMareConfig
from repro.pipeline import check_replica_count
from repro.viz import line_plot, sparkline


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    add_workload_arg(parser)
    add_common_run_args(parser)
    parser.add_argument(
        "--method", choices=["gpipe", "pipedream", "pipemare"], default="pipemare"
    )
    parser.add_argument(
        "--techniques", default="t1,t2",
        help="comma list from {t1,t2,t3,none} (pipemare only; default t1,t2)",
    )
    parser.add_argument(
        "--warmup-epochs", type=int, default=4, help="T3 synchronous epochs"
    )
    parser.add_argument(
        "--recompute-segment", type=int, default=None,
        help="activation recompute segment size (Appendix D)",
    )
    parser.add_argument(
        "--runtime", choices=["simulator", "async", "process", "socket"],
        default="simulator",
        help="pipeline backend: the sequential simulator, the concurrent "
        "thread-worker runtime, the multi-process shared-memory runtime, or "
        "the framed-socket runtime with worker registry and typed failure "
        "handling (all bit-identical trajectories; see README 'Runtime "
        "backends')",
    )
    parser.add_argument(
        "--overlap-boundary", choices=["on", "off"], default="on",
        help="concurrent runtimes only: overlap the optimizer boundary of "
        "step t with step t+1's pipeline fill via version-gated weight "
        "reads (default on; trajectories stay bit-identical either way; "
        "ignored by the simulator)",
    )
    parser.add_argument(
        "--fuse-waves", choices=["on", "off"], default="on",
        help="concurrent runtimes only: compile the step schedule into "
        "fused per-worker command blocks so the scheduler issues one "
        "command per block instead of one per wave (default on; 'off' "
        "keeps the per-wave reference path — trajectories are "
        "bit-identical either way; ignored by the simulator)",
    )
    parser.add_argument(
        "--granularity", choices=["layer", "sublayer"], default="layer",
        help="stage-graph slicing granularity for the concurrent runtimes: "
        "'sublayer' splits attention/FFN/norm-residual sub-chains into "
        "separate elements, so fine partitions run with strictly more "
        "workers than layers (trajectories stay bit-identical)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="hybrid data × pipeline parallelism: R complete pipeline "
        "replicas sharing one version clock, each training on its own "
        "shard of every minibatch, gradients folded into one optimizer "
        "step per minibatch (staleness is unchanged for any R; R=1 is "
        "plain pipeline parallelism, bit for bit)",
    )
    parser.add_argument(
        "--partition", choices=["even", "auto", "profile"], default="even",
        help="how weight units split into stages: the paper's even-by-count "
        "rule, the analytic flops/bytes balanced partition, or a "
        "micro-profiled balanced partition timed on a sample batch "
        "(see 'repro info --workload ... --stages N' for the table)",
    )
    parser.add_argument(
        "--autosave-every", type=int, default=None, metavar="N",
        help="crash-safe checkpointing: every N optimizer steps, write a "
        "rolling snapshot (atomic rename + per-array checksums + 'latest' "
        "pointer) into --autosave-dir; a killed run restarted with "
        "--resume continues bit-exactly from the last snapshot",
    )
    parser.add_argument(
        "--autosave-dir", default=None, metavar="DIR",
        help="snapshot directory for --autosave-every",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="load the newest snapshot from --autosave-dir before training "
        "(no-op if the directory is empty)",
    )
    parser.add_argument("--plot", action="store_true", help="ASCII learning curve")


def parse_techniques(spec: str, workload, warmup_epochs: int) -> PipeMareConfig:
    """Build a PipeMareConfig from a ``t1,t2,t3``-style list."""
    picked = {t.strip().lower() for t in spec.split(",") if t.strip()}
    unknown = picked - {"t1", "t2", "t3", "none"}
    if unknown:
        raise ValueError(f"unknown technique(s): {sorted(unknown)}")
    if "none" in picked and picked != {"none"}:
        raise ValueError("'none' cannot be combined with other techniques")
    if picked == {"none"}:
        return PipeMareConfig.naive_async()
    k = workload.default_anneal_steps()
    d = workload.tuned_decay
    return PipeMareConfig(
        use_t1="t1" in picked,
        anneal_steps=k,
        use_t2="t2" in picked,
        decay=d,
        use_t3="t3" in picked,
        warmup_steps=warmup_epochs * workload.steps_per_epoch if "t3" in picked else 0,
    )


def _run(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    cfg = None
    if args.method == "pipemare":
        try:
            cfg = parse_techniques(args.techniques, workload, args.warmup_epochs)
        except ValueError as exc:
            print(exc)
            return 2

    if args.runtime not in workload.supported_runtimes():
        print(
            f"workload {workload.name!r} does not support --runtime "
            f"{args.runtime} (supported: {', '.join(workload.supported_runtimes())}); "
            "see README 'Runtime backends'"
        )
        return 2
    try:
        check_replica_count(args.replicas, model_name=workload.name)
    except ValueError as exc:
        print(exc)
        return 2
    if (args.autosave_every is not None) != (args.autosave_dir is not None):
        print("--autosave-every and --autosave-dir must be given together")
        return 2
    if args.resume and args.autosave_dir is None:
        print("--resume requires --autosave-every/--autosave-dir")
        return 2

    desc = cfg.describe() if cfg else "synchronous"
    print(
        f"workload={workload.name} method={args.method} config={desc} "
        f"runtime={args.runtime} epochs={args.epochs} stages="
        f"{args.stages if args.stages else workload.max_stages()} "
        f"granularity={args.granularity} partition={args.partition} "
        f"replicas={args.replicas}"
    )
    result = workload.run(
        method=args.method,
        pipemare=cfg,
        epochs=args.epochs,
        seed=args.seed,
        num_stages=args.stages,
        recompute_segment=args.recompute_segment,
        runtime=args.runtime,
        overlap_boundary=args.overlap_boundary == "on",
        fuse_waves=args.fuse_waves == "on",
        granularity=args.granularity,
        partition=args.partition,
        replicas=args.replicas,
        autosave_every=args.autosave_every,
        autosave_dir=args.autosave_dir,
        resume=args.resume,
    )
    metric = result.history.series("eval_metric")
    losses = result.history.series("train_loss")
    print(f"\ntrain loss   {sparkline(losses)}")
    print(f"eval metric  {sparkline(metric)}")
    print(
        f"\nbest {workload.metric_name} = {result.best_metric:.3f}"
        f"   diverged = {result.diverged}"
    )
    if args.plot and metric:
        print()
        print(
            line_plot(
                {workload.metric_name: (list(range(len(metric))), metric)},
                title=f"{workload.name}: {desc}",
                ylabel=workload.metric_name,
                xlabel="epoch",
            )
        )
    return 1 if result.diverged else 0


COMMAND = Command("train", "run one workload end to end", _add_arguments, _run)
