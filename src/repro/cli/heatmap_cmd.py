"""``repro heatmap`` — Figure 3(b): the (α, τ) stability heatmap on the
cpusmall-like regression, rendered as ASCII with the Lemma 1 boundary."""

from __future__ import annotations

import argparse

import numpy as np

from repro.cli._command import Command
from repro.experiments.stability_heatmap import run_stability_heatmap
from repro.viz import heatmap as render_heatmap


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--steps", type=int, default=2000,
        help="SGD iterations per cell (paper: 1e6; default CPU-scale 2000)",
    )
    parser.add_argument(
        "--alpha-range", type=int, nargs=2, default=[-12, -2], metavar=("LO", "HI"),
        help="α grid as powers of two [2^LO, 2^HI)",
    )
    parser.add_argument(
        "--tau-max-pow", type=int, default=5,
        help="τ grid = 4^0 .. 4^pow (default 5 -> τ up to 1024)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _run(args: argparse.Namespace) -> int:
    lo, hi = args.alpha_range
    if lo >= hi:
        print("alpha range LO must be < HI")
        return 2
    alphas = 2.0 ** np.arange(lo, hi)
    taus = 4 ** np.arange(0, args.tau_max_pow + 1)
    result = run_stability_heatmap(
        alphas=alphas, taus=taus, steps=args.steps, seed=args.seed
    )
    grid = np.log10(np.where(np.isfinite(result.final_loss), result.final_loss, np.nan))
    print(
        render_heatmap(
            grid,
            row_labels=[f"τ={int(t)}" for t in taus],
            col_labels=[f"2^{e}" for e in range(lo, hi)],
            title=(
                "Figure 3(b) — log10(final loss); X = diverged "
                f"(λ={result.curvature:.3g})"
            ),
            cell_width=4,
        )
    )
    print("\nLemma 1 boundary α=(2/λ)sin(π/(4τ+2)) per row:")
    for t, a in zip(taus, result.lemma1_curve):
        print(f"  τ={int(t):>5}: α_max = {a:.6f}")
    print(
        "\nExpected shape: the diverged region's left edge moves one column"
        "\nleft each time τ quadruples — the α ∝ 1/τ slope of Lemma 1."
    )
    return 0


COMMAND = Command("heatmap", "Figure 3b α-τ stability heatmap", _add_arguments, _run)
