"""``repro schedule`` — Figure 1, made executable: per-stage occupancy
grids for throughput-poor (GPipe), memory-hungry (PipeDream) and PipeMare
pipelining, with measured bubble fractions."""

from __future__ import annotations

import argparse

from repro.cli._command import Command
from repro.pipeline import Method
from repro.pipeline.costmodel import weight_memory
from repro.pipeline.schedule import bubble_fraction, build_schedule


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-p", "--stages", type=int, default=4, help="pipeline stages P")
    parser.add_argument(
        "-n", "--microbatches", type=int, default=3, help="microbatches per minibatch N"
    )
    parser.add_argument(
        "--minibatches", type=int, default=6, help="minibatches to schedule"
    )
    parser.add_argument(
        "--max-slots", type=int, default=72, help="truncate rendering to this many slots"
    )


def _run(args: argparse.Namespace) -> int:
    p, n = args.stages, args.microbatches
    if p < 1 or n < 1 or args.minibatches < 1:
        print("stages, microbatches and minibatches must be >= 1")
        return 2
    captions = {
        Method.GPIPE: "(a) Throughput-poor pipelining (GPipe): drains at "
        "minibatch boundaries",
        Method.PIPEDREAM: "(b) Memory-hungry pipelining (PipeDream): "
        "bubble-free via weight stashing",
        Method.PIPEMARE: "(c) PipeMare: bubble-free with one weight copy "
        "(asynchronous)",
    }
    print(f"Figure 1 — pipeline modes, P={p}, N={n} (F=forward, B=backward, .=idle)\n")
    for method in (Method.GPIPE, Method.PIPEDREAM, Method.PIPEMARE):
        sched = build_schedule(method, p, n, num_minibatches=args.minibatches)
        frac = bubble_fraction(sched)
        steady = bubble_fraction(sched, steady_state_only=True)
        mem = weight_memory(method, 1, p, n)
        print(captions[method])
        print(sched.render(max_slots=args.max_slots))
        print(
            f"bubble fraction: {frac:.3f} overall, {steady:.3f} steady-state; "
            f"weight copies: {mem:.2f}x\n"
        )
    print(
        "GPipe's bubbles grow with P ((P-1)/(N+P-1) per minibatch);"
        "\nPipeDream erases them by stashing W*P/N extra weights; PipeMare"
        "\nerases them with one weight copy by accepting asynchrony."
    )
    return 0


COMMAND = Command("schedule", "Figure 1 pipeline-mode occupancy grids", _add_arguments, _run)
