"""``repro sweep`` — Figure 2/15: throughput, weight+optimizer memory,
final quality, and time-to-target as the stage count grows."""

from __future__ import annotations

import argparse
import math

from repro.cli._command import Command, add_workload_arg, make_workload
from repro.experiments.stage_sweep import run_stage_sweep
from repro.viz import format_table, line_plot


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    add_workload_arg(parser)
    parser.add_argument(
        "--stage-counts", type=int, nargs="+", default=None,
        help="stage counts to sweep (default: 4 points up to the finest)",
    )
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--analytic-only", action="store_true",
        help="skip training; report the analytic throughput/memory columns",
    )
    parser.add_argument("--plot", action="store_true", help="ASCII throughput plot")


def _run(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    if args.stage_counts:
        counts = sorted(set(args.stage_counts))
    else:
        finest = workload.max_stages()
        counts = sorted({max(2, finest // 8), max(2, finest // 4), max(2, finest // 2), finest})
    train_methods = () if args.analytic_only else ("gpipe", "pipedream", "pipemare")
    result = run_stage_sweep(
        workload, counts, epochs=args.epochs, seed=args.seed,
        train_methods=train_methods,
    )
    rows = []
    for pt in result.points:
        rows.append(
            [
                pt.num_stages,
                pt.method,
                pt.throughput,
                pt.memory,
                None if math.isnan(pt.best_metric) else pt.best_metric,
                None if math.isinf(pt.time_to_target) else pt.time_to_target,
            ]
        )
    print(
        format_table(
            ["P", "method", "throughput", "W+opt mem", "best", "time-to-target"],
            rows,
            title=f"Figure 2/15 sweep — {workload.name}, stages={counts}",
            float_fmt=".3g",
        )
    )
    if args.plot:
        series = {
            m: result.series(m, "throughput")
            for m in ("gpipe", "pipedream", "pipemare")
        }
        series = {m: s for m, s in series.items() if s[0]}
        print()
        print(
            line_plot(
                series,
                title="normalized throughput vs stage count",
                ylabel="tput", xlabel="P",
            )
        )
    return 0


COMMAND = Command("sweep", "Figure 2/15 stage-count sweep", _add_arguments, _run)
