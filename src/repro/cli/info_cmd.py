"""``repro info`` — the experiment index: which command regenerates which
paper artifact, plus package metadata."""

from __future__ import annotations

import argparse

from repro._version import __version__
from repro.cli._command import Command
from repro.viz import format_table

_INDEX = [
    ("Figure 1", "pipeline-mode occupancy schedules", "repro schedule"),
    ("Table 1", "delay/throughput/memory characterization", "repro delays"),
    ("Table 2", "end-to-end method comparison", "repro table2"),
    ("Table 3", "technique ablation (T1/T2/T3)", "repro table3"),
    ("Table 4/5", "activation memory w/ and w/o recompute", "repro recompute"),
    ("Figure 2/15", "stage-count sweeps", "repro sweep"),
    ("Figure 3a/5a", "quadratic-model divergence", "repro quadratic"),
    ("Figure 3b", "α-τ stability heatmap", "repro heatmap"),
    ("Figure 4/10", "technique learning curves", "repro table3 --curves"),
    ("Figure 6", "per-stage activation profile", "repro recompute --stages-detail"),
    ("Lemmas 1-3", "stability thresholds", "repro theory"),
    ("Appendix E", "Hogwild!-style stochastic delays", "repro hogwild"),
]


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    del parser  # no options


def _run(args: argparse.Namespace) -> int:
    del args
    print(f"repro {__version__} — PipeMare: Asynchronous Pipeline Parallel DNN Training")
    print("(Yang et al., MLSYS 2021; arXiv:1910.05124)\n")
    print(
        format_table(
            ["artifact", "what it shows", "command"],
            [list(row) for row in _INDEX],
            title="Paper artifact index",
        )
    )
    print("\nFull benchmark harness: pytest benchmarks/ --benchmark-only -s")
    return 0


COMMAND = Command("info", "package and experiment index", _add_arguments, _run)
