"""``repro info`` — the experiment index plus, with ``--workload``, the
partition table for a given ``--stages/--granularity/--partition``: which
segments land on which worker, their parameter counts and estimated cost
share, and the partition's max/mean imbalance."""

from __future__ import annotations

import argparse

from repro._version import __version__
from repro.cli._command import Command, add_workload_arg, make_workload
from repro.viz import format_table

_INDEX = [
    ("Figure 1", "pipeline-mode occupancy schedules", "repro schedule"),
    ("Table 1", "delay/throughput/memory characterization", "repro delays"),
    ("Table 2", "end-to-end method comparison", "repro table2"),
    ("Table 3", "technique ablation (T1/T2/T3)", "repro table3"),
    ("Table 4/5", "activation memory w/ and w/o recompute", "repro recompute"),
    ("Figure 2/15", "stage-count sweeps", "repro sweep"),
    ("Figure 3a/5a", "quadratic-model divergence", "repro quadratic"),
    ("Figure 3b", "α-τ stability heatmap", "repro heatmap"),
    ("Figure 4/10", "technique learning curves", "repro table3 --curves"),
    ("Figure 6", "per-stage activation profile", "repro recompute --stages-detail"),
    ("Lemmas 1-3", "stability thresholds", "repro theory"),
    ("Appendix E", "Hogwild!-style stochastic delays", "repro hogwild"),
]


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    add_workload_arg(parser)
    parser.add_argument(
        "--partition-table", action="store_true",
        help="print the stage/worker partition table for --workload at "
        "--stages/--granularity/--partition instead of the artifact index",
    )
    parser.add_argument(
        "--stages", type=int, default=None,
        help="stage count for the partition table (default: the workload's "
        "default pipeline depth)",
    )
    parser.add_argument(
        "--granularity", choices=["layer", "sublayer"], default="layer",
        help="stage-graph slicing granularity for the partition table",
    )
    parser.add_argument(
        "--partition", choices=["even", "auto", "profile"], default="even",
        help="partition mode for the table (profile times a sample batch)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="hybrid data × pipeline parallelism: render the table for R "
        "pipeline replicas (every replica runs the identical partition; "
        "worker counts and minibatch shares scale by R)",
    )


def partition_table(
    workload, num_stages, granularity: str, partition: str, replicas: int = 1
) -> str:
    """Render the per-worker partition table: segments, parameter counts,
    estimated cost shares, and the plan's max/mean imbalance.  With
    ``replicas`` > 1 the table describes one replica's pipeline (all R are
    identical) and the summary reports the group totals."""
    from repro.pipeline.stage_compute import build_worker_graph

    from repro.pipeline import check_replica_count, costmodel

    check_replica_count(replicas, model_name=workload.name)

    model = workload.build_model(0)
    plan = workload.partition_plan(model, num_stages, granularity, partition)
    stages = plan.stages(model)
    graph = build_worker_graph(model, stages, granularity=granularity)

    # The even plan records uniform unit costs by design, so score its
    # bounds under the analytic estimates — otherwise the table would
    # report unit-count shares and a meaningless 1.0-ish imbalance.
    unit_costs = (
        [u.cost for u in costmodel.analytic_unit_costs(model)]
        if plan.mode == "even"
        else None
    )
    stage_costs = plan.stage_costs(unit_costs)
    total_cost = sum(stage_costs) or 1.0
    rows = []
    for worker in graph.workers:
        segments = [
            f"{seg.node.name}[{'+'.join(sorted({type(el).__name__.lstrip('_') for el in seg.elements}))}]"
            for seg in worker.segments
        ]
        owned = sorted(worker.stages)
        span = (
            f"{owned[0]}" if len(owned) == 1 else f"{owned[0]}-{owned[-1]}"
        ) if owned else "-"
        # A stage whose parameters span a worker boundary is shared: charge
        # each worker its owned share, so the columns sum to the totals.
        params = sum(p.size for b in worker.bindings for p in b.params)
        cost = sum(
            stage_costs[b.stage]
            * (sum(p.size for p in b.params) / max(stages[b.stage].size, 1))
            for b in worker.bindings
        )
        units = len({
            name.rsplit(".", 1)[0] if "." in name else name
            for b in worker.bindings
            for name in (stages[b.stage].names[pos] for pos in b.positions)
        })
        rows.append([
            str(worker.index),
            span,
            str(units),
            str(params),
            f"{100.0 * cost / total_cost:.1f}%",
            ", ".join(segments),
        ])
    header = (
        f"partition: workload={workload.name} stages={plan.num_stages} "
        f"granularity={granularity} partition={partition} "
        f"workers={graph.num_workers}"
    )
    if replicas > 1:
        header += (
            f" replicas={replicas} "
            f"total workers={graph.num_workers}×{replicas}"
            f"={graph.num_workers * replicas}"
        )
    table = format_table(
        ["worker", "stages", "units", "params", "cost share", "segments"],
        rows,
        title=header,
    )
    mean = sum(stage_costs) / len(stage_costs)
    source = "analytic estimates" if plan.mode == "even" else f"{plan.mode} costs"
    summary = (
        f"stage cost imbalance (max/mean): {plan.imbalance(unit_costs):.3f}  "
        f"(max {max(stage_costs):.3g}, mean {mean:.3g} over "
        f"{plan.num_stages} stages, {source})"
    )
    if replicas > 1:
        summary += (
            f"\nhybrid: {replicas} identical pipeline replicas, each training "
            f"on 1/{replicas} of every minibatch; gradients fold into one "
            f"optimizer step per minibatch (weight staleness unchanged)"
        )
    return f"{table}\n{summary}"


def _run(args: argparse.Namespace) -> int:
    # Any partition-shaped flag (or a workload other than the shared
    # default) asks for the table — never silently drop an argument.
    wants_table = (
        args.partition_table
        or args.stages is not None
        or args.granularity != "layer"
        or args.partition != "even"
        or args.replicas != 1
        or args.workload != "cifar"
    )
    if wants_table:
        workload = make_workload(args.workload)
        num_stages = args.stages if args.stages is not None else workload.default_stages
        from repro.pipeline import check_replica_count

        try:
            check_replica_count(args.replicas, model_name=workload.name)
        except ValueError as exc:
            print(exc)
            return 2
        print(
            partition_table(
                workload, num_stages, args.granularity, args.partition,
                args.replicas,
            )
        )
        return 0
    print(f"repro {__version__} — PipeMare: Asynchronous Pipeline Parallel DNN Training")
    print("(Yang et al., MLSYS 2021; arXiv:1910.05124)\n")
    print(
        format_table(
            ["artifact", "what it shows", "command"],
            [list(row) for row in _INDEX],
            title="Paper artifact index",
        )
    )
    print("\nFull benchmark harness: pytest benchmarks/ --benchmark-only -s")
    print(
        "Partition table: repro info --partition-table --workload iwslt "
        "--stages 12 --granularity sublayer --partition auto"
    )
    return 0


COMMAND = Command("info", "package and experiment index", _add_arguments, _run)
