"""``repro recompute`` — the activation-memory analysis of Appendix A/D:
Table 4 asymptotics, Table 5 savings ratios, and the Figure 6 per-stage
profile as a bar chart."""

from __future__ import annotations

import argparse

from repro.cli._command import Command
from repro.pipeline import Method
from repro.pipeline.recompute import (
    optimal_segment_size,
    per_stage_activation_counts,
    recompute_savings_ratio,
    table4_asymptotics,
    total_activation_memory,
)
from repro.viz import bar_chart, format_table


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-p", "--stages", type=int, default=16, help="pipeline stages P")
    parser.add_argument(
        "-n", "--microbatches", type=int, default=4, help="microbatches per minibatch N"
    )
    parser.add_argument(
        "--segment", type=int, default=None,
        help="recompute segment size S (default: optimal ≈ √P)",
    )
    parser.add_argument(
        "--stages-detail", action="store_true",
        help="print the Figure 6 per-stage activation bars",
    )


def _run(args: argparse.Namespace) -> int:
    p, n = args.stages, args.microbatches
    if p < 1 or n < 1:
        print("stages and microbatches must be >= 1")
        return 2
    if args.segment is not None and not 1 <= args.segment <= p:
        print(f"segment must be in [1, {p}]; try {optimal_segment_size(p)}")
        return 2

    rows = []
    segments: dict[Method, int] = {}
    for method in (Method.GPIPE, Method.PIPEMARE):
        # each method has its own optimum: S=√N for GPipe, S=√P otherwise
        segment = args.segment or optimal_segment_size(p, method, n)
        segments[method] = segment
        plain = total_activation_memory(
            p, segment_size=None, num_microbatches=n, method=method
        )
        recomp = total_activation_memory(
            p, segment_size=segment, num_microbatches=n, method=method
        )
        rows.append(
            [method.value, segment, float(plain), float(recomp), recomp / plain]
        )
    print(
        format_table(
            ["method", "S", "act. mem (no recompute)", "with recompute", "ratio"],
            rows,
            title=f"Tables 4/5 — P={p}, N={n} (microbatch-activation units)",
            float_fmt=".4g",
        )
    )
    segment = segments[Method.PIPEMARE]
    print(
        f"\nasymptotics (Table 4): {table4_asymptotics(p, n)}"
        f"\npaper's 1/√P savings estimate: {recompute_savings_ratio(p):.4f}"
    )

    if args.stages_detail:
        with_rc = per_stage_activation_counts(
            p, segment_size=segment, num_microbatches=n
        )
        without = per_stage_activation_counts(p, segment_size=None, num_microbatches=n)
        print()
        print(
            bar_chart(
                [f"stage {i}" for i in range(p)],
                [float(v) for v in without],
                title="Figure 6 — cached activations per stage, no recompute",
                fmt=".0f",
            )
        )
        print()
        print(
            bar_chart(
                [f"stage {i}" for i in range(p)],
                [float(v) for v in with_rc],
                title=f"Figure 6 — with PipeMare Recompute (S={segment})",
                fmt=".0f",
            )
        )
    return 0


COMMAND = Command("recompute", "Table 4/5 + Figure 6 activation memory", _add_arguments, _run)
