"""``repro table2`` and ``repro table3`` — the paper's two main tables.

Table 2 compares GPipe / PipeDream / PipeMare end to end; Table 3 ablates
T1/T2/T3.  Both print with the paper's columns (best metric, shared target,
epochs- and speedup-to-target, throughput, memory multiplier).
"""

from __future__ import annotations

import argparse
import math

from repro.cli._command import Command, add_common_run_args, add_workload_arg, make_workload
from repro.experiments.ablation import format_ablation_table, run_ablation
from repro.experiments.end_to_end import run_end_to_end
from repro.viz import format_table, sparkline


def _none_if_inf(v: float):
    return None if (isinstance(v, float) and (math.isinf(v) or math.isnan(v))) else v


def _add_table2_args(parser: argparse.ArgumentParser) -> None:
    add_workload_arg(parser)
    add_common_run_args(parser)
    parser.add_argument(
        "--warmup-epochs", type=int, default=0, help="T3 epochs for the PipeMare row"
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="seeds to average (paper uses 3)",
    )


def _run_table2(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    rows, _ = run_end_to_end(
        workload,
        epochs=args.epochs,
        warmup_epochs=args.warmup_epochs,
        seeds=tuple(args.seeds),
        num_stages=args.stages,
    )
    table = [
        [
            r.method,
            r.best_metric,
            r.target_metric,
            _none_if_inf(r.speedup_vs_gpipe),
            _none_if_inf(r.epochs_to_target),
            r.throughput,
            r.memory_multiplier,
        ]
        for r in rows
    ]
    print(
        format_table(
            [
                "method", "best", "target", "speedup", "epochs-to-target",
                "throughput", "W+opt mem x",
            ],
            table,
            title=f"Table 2 — {workload.name} ({workload.metric_name})",
            float_fmt=".2f",
        )
    )
    print("\n'-' = did not reach the target (the paper's PipeDream-on-Transformer case)")
    return 0


def _add_table3_args(parser: argparse.ArgumentParser) -> None:
    add_workload_arg(parser)
    add_common_run_args(parser)
    parser.add_argument(
        "--t3", action="store_true", help="include the T1+T2+T3 variant"
    )
    parser.add_argument(
        "--warmup-epochs", type=int, default=4, help="T3 synchronous epochs"
    )
    parser.add_argument(
        "--curves", action="store_true",
        help="print per-variant eval-metric sparklines (Figure 4/10 shapes)",
    )


def _run_table3(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    results = run_ablation(
        workload,
        epochs=args.epochs,
        include_t3=args.t3,
        warmup_epochs=args.warmup_epochs,
        seed=args.seed,
        num_stages=args.stages,
    )
    print(f"Table 3 — {workload.name} ablation")
    for line in format_ablation_table(workload, results):
        print(line)
    if args.curves:
        print("\neval-metric curves (one char per epoch; ! = diverged):")
        for name, r in results.items():
            print(f"  {name:<10} {sparkline(r.history.series('eval_metric'))}")
    return 0


TABLE2 = Command("table2", "Table 2 end-to-end comparison", _add_table2_args, _run_table2)
TABLE3 = Command("table3", "Table 3 technique ablation", _add_table3_args, _run_table3)
