"""``repro delays`` — Table 1 for a chosen pipeline shape.

Prints per-method forward/backward delays (first stage / per-stage table),
normalized throughput, and weight(+optimizer) memory multipliers.
"""

from __future__ import annotations

import argparse

from repro.cli._command import Command
from repro.pipeline import DelayProfile, Method, costmodel
from repro.viz import format_table


def _add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-p", "--stages", type=int, default=8, help="pipeline stages P")
    parser.add_argument(
        "-n", "--microbatches", type=int, default=4, help="microbatches per minibatch N"
    )
    parser.add_argument(
        "--optimizer", choices=["sgd", "adam"], default="sgd",
        help="optimizer for the memory column",
    )
    parser.add_argument(
        "--per-stage", action="store_true", help="print the per-stage delay table too"
    )


def _run(args: argparse.Namespace) -> int:
    p, n = args.stages, args.microbatches
    if p < 1 or n < 1:
        print("stages and microbatches must be >= 1")
        return 2

    rows = []
    for method in (Method.PIPEDREAM, Method.GPIPE, Method.PIPEMARE):
        prof = DelayProfile(p, n, method)
        rows.append(
            [
                method.value,
                float(prof.tau_fwd(0)),
                float(prof.tau_bkwd(0)),
                costmodel.normalized_throughput(method, p, n),
                costmodel.memory_multiplier(
                    method, p, n, optimizer=args.optimizer,
                    t2=(method is Method.PIPEMARE),
                ),
            ]
        )
    print(
        format_table(
            ["method", "τ_fwd(stage 1)", "τ_bkwd(stage 1)", "throughput", "W+opt mem ×"],
            rows,
            title=f"Table 1 — P={p} stages, N={n} microbatches, {args.optimizer}",
            float_fmt=".3f",
        )
    )

    if args.per_stage:
        prof = DelayProfile(p, n, Method.PIPEMARE)
        stage_rows = [
            [i + 1, float(prof.tau_fwd(i)), float(prof.tau_bkwd(i))]
            for i in range(p)
        ]
        print()
        print(
            format_table(
                ["stage", "τ_fwd", "τ_bkwd"],
                stage_rows,
                title="PipeMare per-stage delays ((2(P−i)+1)/N, 0)",
                float_fmt=".3f",
            )
        )
    return 0


COMMAND = Command("delays", "Table 1 characterization", _add_arguments, _run)
