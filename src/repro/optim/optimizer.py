"""Optimizer base class with param groups and gradient clipping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Parameter


@dataclass
class ParamGroup:
    """A set of parameters updated with a shared ``lr_scale`` multiplier.

    ``name`` typically identifies the pipeline stage.  ``lr_scale`` is
    mutated over training by PipeMare T1.
    """

    params: list[Parameter]
    lr_scale: float = 1.0
    name: str = ""
    extra: dict = field(default_factory=dict)


class Optimizer:
    """Base optimizer.  Subclasses implement :meth:`_update_param`.

    Construction accepts either a flat list of Parameters (one group) or a
    list of :class:`ParamGroup`.
    """

    def __init__(self, params, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], ParamGroup):
            self.groups: list[ParamGroup] = list(params)
        else:
            self.groups = [ParamGroup(params=list(params))]
        self.lr = lr
        self._state: dict[int, dict[str, np.ndarray]] = {}
        self._steps = 0

    # -- state -----------------------------------------------------------
    def state_for(self, p: Parameter) -> dict[str, np.ndarray]:
        return self._state.setdefault(id(p), self._init_state(p))

    def _init_state(self, p: Parameter) -> dict[str, np.ndarray]:
        return {}

    def state_memory_elements(self) -> int:
        """Total optimizer-state scalar count (for the memory cost model)."""
        total = 0
        for group in self.groups:
            for p in group.params:
                total += sum(v.size for v in self.state_for(p).values())
        return total

    @property
    def steps(self) -> int:
        return self._steps

    def state_dict(self) -> dict:
        """Serializable snapshot: step counter, per-group lr scales, and
        per-parameter state arrays (in group/param order — a parameter's
        identity across save/load is its position, not its ``id``)."""
        return {
            "steps": self._steps,
            "lr": self.lr,
            "lr_scales": [group.lr_scale for group in self.groups],
            "param_states": [
                [
                    {k: v.copy() for k, v in self.state_for(p).items()}
                    for p in group.params
                ]
                for group in self.groups
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` onto the same
        parameter layout (group and param counts must match)."""
        param_states = state["param_states"]
        if len(param_states) != len(self.groups):
            raise ValueError(
                f"checkpoint has {len(param_states)} param groups, "
                f"optimizer has {len(self.groups)}"
            )
        for group, scale, states in zip(self.groups, state["lr_scales"], param_states):
            if len(states) != len(group.params):
                raise ValueError(
                    f"group '{group.name}' has {len(group.params)} params, "
                    f"checkpoint has {len(states)}"
                )
            group.lr_scale = float(scale)
            for p, pstate in zip(group.params, states):
                fresh = self._init_state(p)
                if set(pstate) != set(fresh):
                    raise ValueError(
                        f"state keys {sorted(pstate)} do not match optimizer "
                        f"keys {sorted(fresh)} for {p.name}"
                    )
                self._state[id(p)] = {k: np.array(v) for k, v in pstate.items()}
        self._steps = int(state["steps"])
        self.lr = float(state["lr"])

    # -- update ----------------------------------------------------------
    def zero_grad(self) -> None:
        for group in self.groups:
            for p in group.params:
                p.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter using ``lr * lr_scale``."""
        for group in self.groups:
            lr = self.lr * group.lr_scale
            for p in group.params:
                self._update_param(p, lr, self.state_for(p))
        self._steps += 1

    def step_detached(
        self, weights_per_group: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Like :meth:`step`, but read the base weights from
        ``weights_per_group`` (one array per parameter, in group order) and
        return the updated arrays instead of rebinding ``Parameter.data``.

        Gradients and per-parameter state still come from the real
        parameters, and ``_update_param`` runs unchanged on a shim exposing
        the supplied base array — so the arithmetic (and the state
        mutation) is bit-for-bit the regular :meth:`step` whenever
        ``weights_per_group`` holds the arrays ``Parameter.data`` would
        have pointed at.  Used by the overlapped optimizer boundary, which
        must not touch live parameter pointers while the next minibatch's
        workers re-point them.
        """
        new: list[list[np.ndarray]] = []
        for group, weights in zip(self.groups, weights_per_group):
            lr = self.lr * group.lr_scale
            row = []
            for p, w in zip(group.params, weights):
                shim = _DetachedParam(w, p.grad, p.name)
                self._update_param(shim, lr, self.state_for(p))
                row.append(shim.data)
            new.append(row)
        self._steps += 1
        return new

    def _update_param(self, p: Parameter, lr: float, state: dict[str, np.ndarray]) -> None:
        raise NotImplementedError


class _DetachedParam:
    """Parameter shim for :meth:`Optimizer.step_detached`: the real
    gradient, an explicit base-weight array, and nothing else —
    ``_update_param`` rebinding ``data`` lands the update here instead of
    on the live parameter."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, grad: np.ndarray, name: str):
        self.data = data
        self.grad = grad
        self.name = name


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (fairseq-style; the paper's IWSLT recipe clips
    at 25, Table 7).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        total += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm
