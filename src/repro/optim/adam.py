"""Adam and AdamW — the Transformer optimizer (Table 7: AdamW,
betas (0.9, 0.98), weight decay 1e-4)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; ``weight_decay`` is coupled (L2-style)."""

    decoupled_weight_decay = False

    def __init__(
        self,
        params,
        lr: float,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay

    def _init_state(self, p: Parameter) -> dict[str, np.ndarray]:
        return {"m": np.zeros_like(p.data), "v": np.zeros_like(p.data), "t": np.zeros(1)}

    def _update_param(self, p: Parameter, lr: float, state: dict[str, np.ndarray]) -> None:
        b1, b2 = self.betas
        g = p.grad
        if self.weight_decay and not self.decoupled_weight_decay:
            g = g + self.weight_decay * p.data
        state["t"] += 1
        t = float(state["t"][0])
        m, v = state["m"], state["v"]
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        m_hat = m / (1 - b1**t)
        v_hat = v / (1 - b2**t)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay and self.decoupled_weight_decay:
            update = update + self.weight_decay * p.data
        p.data = p.data - lr * update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    decoupled_weight_decay = True
