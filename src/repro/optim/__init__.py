"""Optimizers and learning-rate schedulers.

Optimizers operate on *param groups*, each with an ``lr_scale`` multiplier.
PipeMare's T1 (learning-rate rescheduling) assigns one group per pipeline
stage and drives each group's ``lr_scale`` as ``τ_i^{-p_k}`` (§3.1, eq. 5).
"""

from repro.optim.optimizer import Optimizer, ParamGroup, clip_grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.schedulers import (
    ConstantLR,
    LRSchedule,
    StepDecayLR,
    WarmupInverseSqrtLR,
    WarmupLinearLR,
)

__all__ = [
    "Optimizer",
    "ParamGroup",
    "clip_grad_norm",
    "SGD",
    "Adam",
    "AdamW",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "WarmupInverseSqrtLR",
    "WarmupLinearLR",
]
