"""Base learning-rate schedules ``α_base,k`` (step index k, in minibatches).

These are the *synchronous* schedules the paper inherits from standard
recipes: step decay for ResNet (Table 6: drop by 0.1 every 80/30 epochs) and
linear-warmup + inverse-sqrt for the Transformer (Table 7).  PipeMare T1
multiplies whatever base schedule is in force by ``τ_i^{-p_k}``.
"""

from __future__ import annotations


class LRSchedule:
    """Maps step index -> base learning rate."""

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return self.lr_at(step)


class ConstantLR(LRSchedule):
    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        return self.lr


class StepDecayLR(LRSchedule):
    """``lr * factor^(step // interval)`` — the ResNet recipe."""

    def __init__(self, lr: float, interval_steps: int, factor: float = 0.1):
        if lr <= 0 or interval_steps <= 0 or not 0 < factor <= 1:
            raise ValueError("invalid StepDecayLR configuration")
        self.lr = lr
        self.interval_steps = interval_steps
        self.factor = factor

    def lr_at(self, step: int) -> float:
        return self.lr * self.factor ** (step // self.interval_steps)


class WarmupInverseSqrtLR(LRSchedule):
    """Linear warmup from ``init_lr`` to ``peak_lr`` over ``warmup_steps``,
    then decay ``∝ 1/sqrt(step)`` — the fairseq Transformer recipe."""

    def __init__(self, peak_lr: float, warmup_steps: int, init_lr: float = 1e-7):
        if peak_lr <= 0 or warmup_steps <= 0 or init_lr <= 0:
            raise ValueError("invalid WarmupInverseSqrtLR configuration")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.init_lr = init_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            frac = step / self.warmup_steps
            return self.init_lr + frac * (self.peak_lr - self.init_lr)
        return self.peak_lr * (self.warmup_steps / step) ** 0.5


class WarmupLinearLR(LRSchedule):
    """Linear warmup then constant (useful for short synthetic runs)."""

    def __init__(self, peak_lr: float, warmup_steps: int, init_lr: float = 1e-7):
        if peak_lr <= 0 or warmup_steps <= 0 or init_lr <= 0:
            raise ValueError("invalid WarmupLinearLR configuration")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.init_lr = init_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            frac = step / self.warmup_steps
            return self.init_lr + frac * (self.peak_lr - self.init_lr)
        return self.peak_lr
