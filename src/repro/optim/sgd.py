"""SGD with momentum and (coupled) L2 weight decay — the ResNet optimizer
(Table 6: momentum 0.9, l2 5e-4 / 1e-4)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """``v ← βv + (g + wd·w); w ← w − αv`` (PyTorch-style momentum)."""

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _init_state(self, p: Parameter) -> dict[str, np.ndarray]:
        if self.momentum == 0.0:
            return {}
        return {"velocity": np.zeros_like(p.data)}

    def _update_param(self, p: Parameter, lr: float, state: dict[str, np.ndarray]) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            v = state["velocity"]
            v *= self.momentum
            v += g
            g = v
        p.data = p.data - lr * g
