"""The paper's hyperparameter records (Tables 6–9) and our scaled
counterparts, kept as data so the table benchmarks can print both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperRecipe:
    """One column of Table 6/7."""

    task: str
    optimizer: str
    lr: float
    schedule: str
    momentum_or_betas: str
    weight_decay: float
    epochs: int
    minibatch: str
    microbatch: str
    extras: dict = field(default_factory=dict)


TABLE6_RESNET = {
    "cifar10": PaperRecipe(
        task="CIFAR10/ResNet50", optimizer="SGD+momentum", lr=0.01,
        schedule="drop 0.1x every 80 epochs", momentum_or_betas="0.9",
        weight_decay=5e-4, epochs=200, minibatch="64", microbatch="8",
    ),
    "imagenet": PaperRecipe(
        task="ImageNet/ResNet50", optimizer="SGD+momentum", lr=0.1,
        schedule="drop 0.1x every 30 epochs", momentum_or_betas="0.9",
        weight_decay=1e-4, epochs=100, minibatch="256", microbatch="16",
    ),
}

TABLE7_TRANSFORMER = {
    "iwslt": PaperRecipe(
        task="IWSLT14/Transformer", optimizer="AdamW", lr=5e-4,
        schedule="linear warmup 8000 steps + inverse sqrt",
        momentum_or_betas="(0.9, 0.98)", weight_decay=1e-4, epochs=60,
        minibatch="3600 tokens", microbatch="245 tokens",
        extras={"label_smoothing": 0.1, "dropout": 0.3, "grad_clip": 25,
                "num_microbatches": 19},
    ),
    "wmt": PaperRecipe(
        task="WMT17/Transformer", optimizer="AdamW", lr=7e-4,
        schedule="linear warmup 8000 steps + inverse sqrt",
        momentum_or_betas="(0.9, 0.98)", weight_decay=0.0, epochs=80,
        minibatch="29000 tokens", microbatch="1792 tokens",
        extras={"label_smoothing": 0.1, "dropout": 0.1, "num_microbatches": 19},
    ),
}

# Table 8: PipeMare tuning grids (optimal values bolded in the paper).
TABLE8_GRIDS = {
    "cifar10": {
        "annealing_epochs": {"grid": [10, 20, 40, 80, 160], "optimal": 20},
        "decay": {"grid": [0.1, 0.5, 0.9], "optimal": 0.5},
        "warmup_epochs": {"grid": [0], "optimal": 0},
    },
    "iwslt": {
        "annealing_epochs": {"grid": [15, 30, 60], "optimal": 15},
        "decay": {"grid": [0.01, 0.1, 0.2], "optimal": 0.1},
        "warmup_epochs": {"grid": [3, 5, 10], "optimal": 10},
    },
}

# Table 9: transferred PipeMare hyperparameters for the large tasks.
TABLE9_TRANSFER = {
    "imagenet": {"sync_warmup_epochs": 0, "decay": 0.5, "annealing_epochs": 10},
    "wmt": {"sync_warmup_epochs": 4, "decay": 0.1, "annealing_epochs": 4},
}

# Paper stage counts (§4.1): finest granularity with ≥1 weight per stage.
PAPER_STAGE_COUNTS = {
    "resnet50": 107,
    "transformer_iwslt": 93,   # independent embeddings
    "transformer_wmt": 91,     # shared embeddings remove two stages
    "resnet152": 150,
}

# Our scaled equivalents (see experiments.workloads presets).
OUR_STAGE_NOTES = {
    "cifar": "21 weight units at finest granularity (resnet_tiny)",
    "imagenet": "~31 weight units (3-stage resnet)",
    "iwslt": "45 weight units; default pipeline uses 12 stages",
    "wmt": "shared embeddings reduce unit count by one embedding",
}
