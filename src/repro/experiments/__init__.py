"""Experiment runners — one per paper table/figure (see DESIGN.md §5).

Each runner is a plain function with CPU-scale defaults; ``benchmarks/``
invokes them and prints paper-shaped rows, and the integration tests run
them at reduced scale.
"""

from repro.experiments.workloads import (
    ImageWorkload,
    TranslationWorkload,
    make_image_workload,
    make_translation_workload,
)

__all__ = [
    "ImageWorkload",
    "TranslationWorkload",
    "make_image_workload",
    "make_translation_workload",
]
