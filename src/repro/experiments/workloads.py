"""Workload builders: the CPU-scale stand-ins for the paper's four tasks.

=============== ======================= ==============================
paper task      stand-in                builder
=============== ======================= ==============================
CIFAR10/ResNet50   resnet_tiny + synthetic images   ``make_image_workload("cifar")``
ImageNet/ResNet50  wider images, more classes       ``make_image_workload("imagenet")``
IWSLT14/Transformer   transformer_tiny + reversal task   ``make_translation_workload("iwslt")``
WMT17/Transformer     shared-embedding variant            ``make_translation_workload("wmt")``
=============== ======================= ==============================

Each workload knows how to build a fresh (model, loss, optimizer, executor)
bundle for any pipeline method/config, plus its evaluation function and the
paper's target-metric rule (best-across-methods − 1.0 accuracy / 0.4 BLEU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core import PipeMareConfig
from repro.data import TranslationTask, batch_iterator, make_image_classification
from repro.models import ResNet, Transformer, transformer_tiny
from repro.nn import CrossEntropyLoss, SequenceCrossEntropyLoss
from repro.nn.module import Module
from repro.optim import SGD, AdamW, StepDecayLR, WarmupInverseSqrtLR
from repro.optim.schedulers import LRSchedule
from repro.pipeline import (
    AsyncPipelineRuntime,
    Method,
    ModelSpec,
    Partitioner,
    PipelineExecutor,
    check_replica_count,
    make_backend,
)
from repro.pipeline.plan import split_views
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.partition import PartitionPlan, num_weight_units
from repro.train import PipelineTrainer, evaluate_classifier, evaluate_translation
from repro.train.pipeline_trainer import TrainResult


@dataclass
class WorkloadBundle:
    """One ready-to-train instance of a workload.  ``executor`` is any
    pipeline backend (sequential simulator, thread-worker async runtime, or
    the multi-process shared-memory runtime)."""

    model: Module
    executor: object
    trainer: PipelineTrainer
    num_stages: int


class _BaseWorkload:
    name: str = ""
    metric_name: str = ""
    target_slack: float = 0.0  # best-across-methods minus this = target
    optimizer_kind: str = "sgd"
    # Stage count used when the caller doesn't specify one.  ``None`` means
    # the finest granularity (one weight unit per stage).  Calibration note:
    # async tolerance of a model scales with its size — the paper's models
    # tolerate τ≈10 at 91–107 stages; our CPU-scale stand-ins tolerate the
    # same *relative* asynchrony at proportionally fewer stages.
    default_stages: int | None = None

    def resolve_stages(self, num_stages: int | None) -> int | None:
        return self.default_stages if num_stages is None else num_stages

    def sample_profile_inputs(self) -> tuple:
        """One small sample array per external model input — what the
        ``profile`` partition mode times stage-graph elements on."""
        raise NotImplementedError

    def partition_plan(
        self,
        model: Module,
        num_stages: int | None,
        granularity: str = "layer",
        partition: str = "even",
    ) -> PartitionPlan:
        """The workload's :class:`~repro.pipeline.partition.PartitionPlan`
        for the requested stage count / granularity / cost mode.

        Plans are cached per (partition, granularity, stages): profiling
        timers are nondeterministic, so every bundle of one workload —
        simulator and concurrent runtimes alike — must consume the *same*
        plan object or their stage boundaries (and hence trajectories)
        could silently diverge.  Costs depend only on parameter shapes,
        which are seed-independent, so the cache is safe across seeds.
        """
        cache = self.__dict__.setdefault("_plan_cache", {})
        key = (partition, granularity, num_stages)
        if key not in cache:
            sample = self.sample_profile_inputs() if partition == "profile" else None
            cache[key] = Partitioner(partition, granularity).plan(
                model, num_stages, sample_inputs=sample
            )
        return cache[key]

    def supported_runtimes(self) -> tuple[str, ...]:
        """Pipeline backends this workload can train on.  Every workload —
        including the two-stream Transformer, which slices through its
        stage-program graph (:mod:`repro.pipeline.stage_compute`) — runs on
        all four; the process and socket backends rebuild the model in each
        worker from a picklable :class:`~repro.pipeline.ModelSpec`."""
        return ("simulator", "async", "process", "socket")

    def max_stages(self) -> int:
        raise NotImplementedError

    def bundle(
        self,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        num_stages: int | None = None,
        seed: int = 0,
        recompute_segment: int | None = None,
        runtime: str = "simulator",
        overlap_boundary: bool | None = None,
        granularity: str = "layer",
        partition: str = "even",
        replicas: int = 1,
        autosave_every: int | None = None,
        autosave_dir: str | None = None,
        fuse_waves: bool | None = None,
    ) -> WorkloadBundle:
        raise NotImplementedError

    def run(
        self,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        epochs: int = 10,
        num_stages: int | None = None,
        seed: int = 0,
        recompute_segment: int | None = None,
        eval_every: int = 1,
        runtime: str = "simulator",
        overlap_boundary: bool | None = None,
        granularity: str = "layer",
        partition: str = "even",
        replicas: int = 1,
        autosave_every: int | None = None,
        autosave_dir: str | None = None,
        resume: bool = False,
        fuse_waves: bool | None = None,
    ) -> TrainResult:
        b = self.bundle(
            method, pipemare, num_stages, seed, recompute_segment, runtime,
            overlap_boundary, granularity, partition, replicas,
            autosave_every=autosave_every, autosave_dir=autosave_dir,
            fuse_waves=fuse_waves,
        )
        try:
            result = b.trainer.run(epochs, eval_every=eval_every, resume=resume)
        finally:
            if hasattr(b.executor, "close"):
                b.executor.close()
        result.meta["workload"] = self.name
        result.meta["runtime"] = runtime
        result.meta["replicas"] = replicas
        return result


class ImageWorkload(_BaseWorkload):
    """ResNet on synthetic images, SGD + momentum + step decay (Table 6)."""

    metric_name = "test_accuracy"
    target_slack = 1.0  # accuracy points
    optimizer_kind = "sgd"

    def __init__(
        self,
        name: str,
        num_train: int,
        num_test: int,
        num_classes: int,
        image_size: int,
        blocks_per_stage: tuple[int, ...],
        channels_per_stage: tuple[int, ...],
        lr: float,
        momentum: float,
        weight_decay: float,
        batch_size: int,
        num_microbatches: int,
        lr_drop_epochs: int,
        noise: float = 0.6,
        data_seed: int = 0,
        tuned_anneal_steps: int | None = None,
        tuned_decay: float = 0.5,
        default_stages: int | None = None,
    ):
        self.name = name
        self.tuned_anneal_steps = tuned_anneal_steps
        self.tuned_decay = tuned_decay
        self.default_stages = default_stages
        self.num_classes = num_classes
        self.blocks_per_stage = blocks_per_stage
        self.channels_per_stage = channels_per_stage
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.num_microbatches = num_microbatches
        self.lr_drop_epochs = lr_drop_epochs
        self.data = make_image_classification(
            num_train=num_train,
            num_test=num_test,
            num_classes=num_classes,
            image_size=image_size,
            noise=noise,
            rng=np.random.default_rng(data_seed),
        )
        self.steps_per_epoch = len(self.data.train_x) // batch_size

    def build_model(self, seed: int) -> ResNet:
        return ResNet(
            np.random.default_rng(seed),
            num_classes=self.num_classes,
            blocks_per_stage=self.blocks_per_stage,
            channels_per_stage=self.channels_per_stage,
            norm="group",
        )

    def max_stages(self) -> int:
        return num_weight_units(self.build_model(0))

    def base_schedule(self) -> LRSchedule:
        return StepDecayLR(self.lr, self.lr_drop_epochs * self.steps_per_epoch, 0.1)

    def default_anneal_steps(self) -> int:
        """§3.1 rule of thumb: a quarter of the first fixed-LR phase.  The
        tuned value (from the Table 8-style sweep in
        ``experiments.sensitivity``) overrides it when present."""
        if self.tuned_anneal_steps is not None:
            return self.tuned_anneal_steps
        return max(1, self.lr_drop_epochs * self.steps_per_epoch // 4)

    def default_config(self, warmup_epochs: int = 0) -> PipeMareConfig:
        if warmup_epochs > 0:
            return PipeMareConfig.full(
                self.default_anneal_steps(),
                warmup_epochs * self.steps_per_epoch,
                decay=self.tuned_decay,
            )
        return PipeMareConfig.t1_t2(self.default_anneal_steps(), decay=self.tuned_decay)

    def sample_profile_inputs(self) -> tuple:
        micro = max(1, self.batch_size // self.num_microbatches)
        return (self.data.train_x[:micro],)

    def bundle(self, method=Method.PIPEMARE, pipemare=None, num_stages=None,
               seed=0, recompute_segment=None, runtime="simulator",
               overlap_boundary=None, granularity="layer",
               partition="even", replicas=1,
               autosave_every=None, autosave_dir=None,
               fuse_waves=None) -> WorkloadBundle:
        check_replica_count(replicas, model_name=f"{self.name} ResNet")
        model = self.build_model(seed)
        loss = CrossEntropyLoss()
        plan = self.partition_plan(
            model, self.resolve_stages(num_stages), granularity, partition
        )
        stages = plan.stages(model)
        opt = SGD(
            param_groups_from_stages(stages),
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        executor = make_backend(
            runtime, model, loss, opt, stages, self.num_microbatches, method,
            pipemare=pipemare, base_schedule=self.base_schedule(),
            recompute_segment=recompute_segment, overlap_boundary=overlap_boundary,
            granularity=granularity, partition_plan=plan, num_replicas=replicas,
            fuse_waves=fuse_waves,
        )

        def batch_fn(rng):
            return batch_iterator(
                self.data.train_x, self.data.train_y, self.batch_size, rng
            )

        def eval_fn():
            return evaluate_classifier(model, self.data.test_x, self.data.test_y)

        trainer = PipelineTrainer(
            executor, batch_fn, eval_fn, seed=seed,
            autosave_every=autosave_every, autosave_dir=autosave_dir,
        )
        return WorkloadBundle(model, executor, trainer, len(stages))


class TranslationWorkload(_BaseWorkload):
    """Transformer on the reversal task, AdamW + warmup/inverse-sqrt
    (Table 7).

    Runs on all four pipeline backends: the two-stream encoder/decoder
    dataflow slices through the stage-program graph
    (:meth:`repro.models.Transformer.pipeline_graph`), and training-mode
    dropout (``dropout > 0``) uses counter-based masks so every backend
    derives identical draws (see :mod:`repro.nn.dropout`).
    """

    metric_name = "bleu"
    target_slack = 0.4  # BLEU points
    optimizer_kind = "adamw"

    def __init__(
        self,
        name: str,
        vocab_size: int,
        num_layers: int,
        share_embeddings: bool,
        lr: float,
        warmup_steps: int,
        weight_decay: float,
        label_smoothing: float,
        grad_clip: float | None,
        batch_size: int,
        num_microbatches: int,
        batches_per_epoch: int,
        eval_size: int = 128,
        max_len: int = 9,
        data_seed: int = 0,
        tuned_anneal_steps: int | None = None,
        tuned_decay: float = 0.1,
        default_stages: int | None = None,
        dropout: float = 0.0,
    ):
        self.name = name
        self.dropout = dropout
        self.tuned_anneal_steps = tuned_anneal_steps
        self.tuned_decay = tuned_decay
        self.default_stages = default_stages
        self.vocab_size = vocab_size
        self.num_layers = num_layers
        self.share_embeddings = share_embeddings
        self.lr = lr
        self.warmup_steps = warmup_steps
        self.weight_decay = weight_decay
        self.label_smoothing = label_smoothing
        self.grad_clip = grad_clip
        self.batch_size = batch_size
        self.num_microbatches = num_microbatches
        self.batches_per_epoch = batches_per_epoch
        self.steps_per_epoch = batches_per_epoch
        self.task = TranslationTask(
            vocab_size=vocab_size, max_len=max_len, rng=np.random.default_rng(data_seed)
        )
        self.eval_pairs = self.task.fixed_eval_set(eval_size)

    def _model_kwargs(self, seed: int) -> dict:
        kwargs = dict(
            vocab=self.vocab_size,
            share_embeddings=self.share_embeddings,
            num_layers=self.num_layers,
            dropout=self.dropout,
        )
        if self.dropout > 0:
            kwargs["dropout_seed"] = seed  # counter-based masks: runtime-safe
        return kwargs

    def build_model(self, seed: int) -> Transformer:
        return transformer_tiny(np.random.default_rng(seed), **self._model_kwargs(seed))

    def model_spec(
        self,
        seed: int,
        num_stages: int | None,
        plan: PartitionPlan | None = None,
    ) -> ModelSpec:
        """Factory-based spec for process workers: replicas rebuild from the
        constructor recipe instead of a pickled snapshot, so only shapes and
        deterministic attributes (dropout layer ids) matter.  ``plan``
        carries a non-even partition so every replica rebuilds the driver's
        exact stage boundaries."""
        return ModelSpec(
            factory="repro.models.transformer:transformer_tiny",
            args=(np.random.default_rng(seed),),
            kwargs=self._model_kwargs(seed),
            num_stages=num_stages,
            plan=plan,
        )

    def sample_profile_inputs(self) -> tuple:
        saved = self.task.rng
        self.task.rng = np.random.default_rng(0)
        try:
            b = self.task.sample_batch(max(2, self.batch_size // self.num_microbatches))
        finally:
            self.task.rng = saved
        return (b.src, b.tgt_in)

    def max_stages(self) -> int:
        return num_weight_units(self.build_model(0))

    def base_schedule(self) -> LRSchedule:
        return WarmupInverseSqrtLR(self.lr, self.warmup_steps)

    def default_anneal_steps(self) -> int:
        """§3.1 rule of thumb: 5× the linear LR warmup steps (tuned value
        overrides when present)."""
        if self.tuned_anneal_steps is not None:
            return self.tuned_anneal_steps
        return 5 * self.warmup_steps

    def default_config(self, warmup_epochs: int = 0) -> PipeMareConfig:
        if warmup_epochs > 0:
            return PipeMareConfig.full(
                self.default_anneal_steps(),
                warmup_epochs * self.steps_per_epoch,
                decay=self.tuned_decay,
            )
        return PipeMareConfig.t1_t2(self.default_anneal_steps(), decay=self.tuned_decay)

    def bundle(self, method=Method.PIPEMARE, pipemare=None, num_stages=None,
               seed=0, recompute_segment=None, runtime="simulator",
               overlap_boundary=None, granularity="layer",
               partition="even", replicas=1,
               autosave_every=None, autosave_dir=None,
               fuse_waves=None) -> WorkloadBundle:
        if runtime not in self.supported_runtimes():
            raise ValueError(
                f"unknown runtime {runtime!r} for translation workloads "
                f"(supported: {', '.join(self.supported_runtimes())})"
            )
        check_replica_count(replicas, model_name=f"{self.name} Transformer")
        model = self.build_model(seed)
        loss = SequenceCrossEntropyLoss(
            pad_id=self.task.pad_id, label_smoothing=self.label_smoothing
        )
        plan = self.partition_plan(
            model, self.resolve_stages(num_stages), granularity, partition
        )
        stages = plan.stages(model)
        opt = AdamW(
            param_groups_from_stages(stages),
            lr=self.lr,
            betas=(0.9, 0.98),
            weight_decay=self.weight_decay,
        )
        common = dict(
            pipemare=pipemare, base_schedule=self.base_schedule(),
            grad_clip=self.grad_clip, recompute_segment=recompute_segment,
            partition_plan=plan, num_replicas=replicas,
        )
        if runtime == "simulator":
            executor: object = _TranslationExecutor(
                model, loss, opt, stages, self.num_microbatches, method, **common
            )
        else:
            common["overlap_boundary"] = overlap_boundary
            common["granularity"] = granularity
            common["fuse_waves"] = fuse_waves
            if runtime in ("process", "socket"):
                common["backend"] = runtime
                common["model_spec"] = self.model_spec(seed, len(stages), plan)
            executor = _TranslationRuntime(
                model, loss, opt, stages, self.num_microbatches, method, **common
            )
        task = self.task

        def batch_fn(rng):
            saved = task.rng
            task.rng = rng
            batches = [task.sample_batch(self.batch_size) for _ in range(self.batches_per_epoch)]
            task.rng = saved
            # pipeline executor consumes (x, y); pack (src, tgt_in) as x
            return [((b.src, b.tgt_in), b.tgt_out) for b in batches]

        def eval_fn():
            return evaluate_translation(model, task, self.eval_pairs)

        trainer = PipelineTrainer(
            executor, batch_fn, eval_fn, seed=seed,
            autosave_every=autosave_every, autosave_dir=autosave_dir,
        )
        return WorkloadBundle(model, executor, trainer, len(stages))


class _TranslationBatching:
    """Microbatch plumbing for (src, tgt_in) sample tuples.  All pipeline
    semantics come from the shared :class:`~repro.pipeline.plan.StepPlan`;
    the same overrides work against any backend (the concurrent runtimes
    transpose the tuples into per-graph-input streams themselves)."""

    def _split_minibatch(self, x, y, n):  # type: ignore[override]
        src, tgt_in = x
        if len(src) < n:
            raise ValueError(f"batch of {len(src)} cannot form {n} microbatches")
        xs = list(zip(split_views(src, n), split_views(tgt_in, n)))
        return xs, split_views(y, n)

    def _shard_minibatch(self, x, y, r):  # type: ignore[override]
        # Hybrid replicas shard the (src, tgt_in) tuple the same way the
        # microbatch split does: per-replica (src, tgt_in) shard tuples.
        src, tgt_in = x
        xs = list(zip(split_views(src, r), split_views(tgt_in, r)))
        return xs, split_views(y, r)

    def _forward_model(self, model, xj):  # type: ignore[override]
        # Overriding the model-explicit hook (not _forward) makes the tuple
        # unpacking apply to every pipeline replica, not just the live model.
        return model(*xj)

    def _num_samples(self, xj):  # type: ignore[override]
        return len(xj[0])


class _TranslationExecutor(_TranslationBatching, PipelineExecutor):
    """Sequential simulator over (src, tgt_in) samples."""


class _TranslationRuntime(_TranslationBatching, AsyncPipelineRuntime):
    """Concurrent runtime (thread or process workers) over (src, tgt_in)
    samples: the Transformer slices through its two-stream stage graph."""


# -- factories ----------------------------------------------------------------

# Calibrated so that (as in the paper): synchronous training is comfortably
# stable and reaches high quality; naive asynchronous training fails or badly
# underperforms; T1(+T2[+T3]) recovers synchronous quality.  The tuned K and
# D values come from the Table 8-style sweeps in experiments.sensitivity.
_IMAGE_PRESETS = {
    "cifar": dict(
        num_train=512, num_test=256, num_classes=10, image_size=8,
        blocks_per_stage=(2, 2), channels_per_stage=(8, 16),
        lr=0.05, momentum=0.9, weight_decay=5e-4,
        batch_size=16, num_microbatches=4, lr_drop_epochs=8, noise=1.0,
        tuned_anneal_steps=128, tuned_decay=0.5,
    ),
    "imagenet": dict(
        num_train=768, num_test=256, num_classes=16, image_size=8,
        blocks_per_stage=(2, 2, 2), channels_per_stage=(8, 16, 16),
        lr=0.05, momentum=0.9, weight_decay=1e-4,
        batch_size=16, num_microbatches=4, lr_drop_epochs=8, noise=0.9,
        tuned_anneal_steps=128, tuned_decay=0.5,
    ),
    "resnet152": dict(
        num_train=512, num_test=256, num_classes=10, image_size=8,
        blocks_per_stage=(3, 3, 3), channels_per_stage=(8, 16, 16),
        lr=0.05, momentum=0.9, weight_decay=5e-4,
        batch_size=16, num_microbatches=4, lr_drop_epochs=8, noise=1.0,
        tuned_anneal_steps=128, tuned_decay=0.5,
    ),
}

_TRANSLATION_PRESETS = {
    "iwslt": dict(
        vocab_size=32, num_layers=2, share_embeddings=False,
        lr=3e-3, warmup_steps=40, weight_decay=1e-4, label_smoothing=0.1,
        grad_clip=25.0, batch_size=32, num_microbatches=8, batches_per_epoch=24,
        tuned_anneal_steps=200, tuned_decay=0.1, default_stages=12,
    ),
    "wmt": dict(
        vocab_size=32, num_layers=2, share_embeddings=True,
        lr=3e-3, warmup_steps=40, weight_decay=0.0, label_smoothing=0.1,
        grad_clip=None, batch_size=32, num_microbatches=8, batches_per_epoch=24,
        tuned_anneal_steps=200, tuned_decay=0.1, default_stages=12,
    ),
}


def make_image_workload(preset: str = "cifar", **overrides) -> ImageWorkload:
    """Build the CIFAR10 / ImageNet / ResNet152 stand-in workload."""
    if preset not in _IMAGE_PRESETS:
        raise ValueError(f"unknown image preset {preset!r} (have {sorted(_IMAGE_PRESETS)})")
    kwargs = dict(_IMAGE_PRESETS[preset])
    kwargs.update(overrides)
    return ImageWorkload(name=preset, **kwargs)


def make_translation_workload(preset: str = "iwslt", **overrides) -> TranslationWorkload:
    """Build the IWSLT14 / WMT17 stand-in workload."""
    if preset not in _TRANSLATION_PRESETS:
        raise ValueError(
            f"unknown translation preset {preset!r} (have {sorted(_TRANSLATION_PRESETS)})"
        )
    kwargs = dict(_TRANSLATION_PRESETS[preset])
    kwargs.update(overrides)
    return TranslationWorkload(name=preset, **kwargs)
