"""Pipeline-stage sweep — Figures 2 and 15.

For a list of stage counts, report per method: normalized throughput,
weight+optimizer memory, best model quality, and time-to-target-quality.
Throughput and memory come from the analytic cost model (as in the paper);
quality comes from actual training runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.workloads import _BaseWorkload
from repro.pipeline import costmodel
from repro.train.pipeline_trainer import TrainResult


@dataclass
class SweepPoint:
    """One (stage count, method) cell of Figure 2/15."""

    num_stages: int
    method: str
    throughput: float
    memory: float
    best_metric: float = math.nan
    time_to_target: float = math.inf


@dataclass
class StageSweepResult:
    points: list[SweepPoint] = field(default_factory=list)
    target: float = math.nan

    def series(self, method: str, attr: str) -> tuple[list[int], list[float]]:
        xs, ys = [], []
        for pt in self.points:
            if pt.method == method:
                xs.append(pt.num_stages)
                ys.append(getattr(pt, attr))
        return xs, ys


def run_stage_sweep(
    workload: _BaseWorkload,
    stage_counts: list[int],
    epochs: int,
    methods: tuple[str, ...] = ("gpipe", "pipedream", "pipemare"),
    seed: int = 0,
    train_methods: tuple[str, ...] = ("gpipe", "pipedream", "pipemare"),
) -> StageSweepResult:
    """Sweep stage counts.  Methods not in ``train_methods`` get analytic
    throughput/memory only (quality NaN) to keep sweeps affordable."""
    weight_elems = workload.bundle(num_stages=min(stage_counts)).model.num_parameters()
    n = workload.num_microbatches
    out = StageSweepResult()
    results: dict[tuple[int, str], TrainResult] = {}
    for p in stage_counts:
        for method in methods:
            tput = costmodel.method_throughput(method, p, n, gpipe_model="table1")
            mem = costmodel.weight_optimizer_memory(
                method, weight_elems, p, n,
                optimizer=workload.optimizer_kind, t2=(method == "pipemare"),
            )
            pt = SweepPoint(num_stages=p, method=method, throughput=tput, memory=mem)
            if method in train_methods:
                cfg = workload.default_config() if method == "pipemare" else None
                r = workload.run(
                    method=method, pipemare=cfg, epochs=epochs, seed=seed,
                    num_stages=p,
                )
                results[(p, method)] = r
                pt.best_metric = r.best_metric
            out.points.append(pt)

    # Shared target: best across everything trained, minus the paper slack.
    trained = [pt.best_metric for pt in out.points if not math.isnan(pt.best_metric)]
    if trained:
        out.target = max(trained) - workload.target_slack
        for pt in out.points:
            r = results.get((pt.num_stages, pt.method))
            if r is not None:
                epochs_to = r.epochs_to_target(out.target)
                pt.time_to_target = costmodel.time_to_accuracy(epochs_to, pt.throughput)
    return out
