"""Divergence anatomy — Figures 7 and 11.

Figure 7: naive asynchronous training of a ResNet diverges; the cause is
the forward delay, exacerbated by forward-backward discrepancy.  Compared
configurations (paper's legend):

* ``sync``                          — GPipe-style baseline;
* ``discrepancy @ P``               — PipeMare-style, τ_fwd ≠ τ_bkwd;
* ``no discrepancy @ P``            — PipeDream-style, τ_fwd = τ_bkwd;
* ``no discrepancy @ kP``           — PipeDream-style at k× stage count
  (the paper's 1712 vs 107): large enough pure delay also diverges.

Figure 11: a deeper ResNet (ResNet152 stand-in) where T1 alone diverges and
T1+T2 recovers the synchronous accuracy.
"""

from __future__ import annotations

from repro.core import PipeMareConfig
from repro.experiments.workloads import ImageWorkload
from repro.train.pipeline_trainer import TrainResult


def run_divergence_anatomy(
    workload: ImageWorkload,
    epochs: int,
    num_stages: int | None = None,
    deep_multiple: int = 2,
    seed: int = 0,
) -> dict[str, TrainResult]:
    """Run the four Figure 7 configurations.

    ``deep_multiple`` scales the delay of the "more stages" PipeDream run by
    shrinking microbatch count (equivalent asynchrony scaling: τ ∝ P/N).
    """
    stages = num_stages if num_stages is not None else workload.max_stages()
    naive = PipeMareConfig.naive_async()
    out: dict[str, TrainResult] = {}
    out["sync"] = workload.run(method="gpipe", epochs=epochs, seed=seed, num_stages=stages)
    out["discrepancy"] = workload.run(
        method="pipemare", pipemare=naive, epochs=epochs, seed=seed, num_stages=stages
    )
    out["no_discrepancy"] = workload.run(
        method="pipedream", epochs=epochs, seed=seed, num_stages=stages
    )
    # k× the delay with PipeDream semantics: same stages, fewer microbatches
    saved = workload.num_microbatches
    workload.num_microbatches = max(1, saved // deep_multiple)
    try:
        out[f"no_discrepancy_{deep_multiple}x_delay"] = workload.run(
            method="pipedream", epochs=epochs, seed=seed, num_stages=stages
        )
    finally:
        workload.num_microbatches = saved
    return out


def run_deep_resnet_t2(
    workload: ImageWorkload,
    epochs: int,
    seed: int = 0,
    num_stages: int | None = None,
) -> dict[str, TrainResult]:
    """Figure 11: T1 only vs T1+T2 on the deep ResNet."""
    k = workload.default_anneal_steps()
    return {
        "sync": workload.run(method="gpipe", epochs=epochs, seed=seed, num_stages=num_stages),
        "t1": workload.run(
            method="pipemare", pipemare=PipeMareConfig.t1_only(k),
            epochs=epochs, seed=seed, num_stages=num_stages,
        ),
        "t1+t2": workload.run(
            method="pipemare",
            pipemare=PipeMareConfig.t1_t2(k, decay=workload.tuned_decay),
            epochs=epochs, seed=seed, num_stages=num_stages,
        ),
    }
