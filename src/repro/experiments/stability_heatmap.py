"""Figure 3(b): the (step size α, delay τ) stability heatmap on a
cpusmall-like linear regression, with the Lemma 1 boundary overlaid.

The paper runs pipeline-parallel SGD for T=10⁶ iterations over a log-spaced
grid and paints final losses, red = divergence; the black curve is
``α = (2/λ)sin(π/(4τ+2))`` with λ the largest curvature of the objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import make_cpusmall_like
from repro.models import LinearRegressionModel
from repro.theory import lemma1_alpha_max
from repro.theory.quadratic import simulate_delayed_least_squares


@dataclass
class HeatmapResult:
    alphas: np.ndarray
    taus: np.ndarray
    final_loss: np.ndarray  # (len(taus), len(alphas)); inf = diverged
    lemma1_curve: np.ndarray  # max stable alpha per tau
    curvature: float

    def divergence_boundary_alpha(self, tau_idx: int) -> float:
        """Smallest α that diverged for the given τ row (inf if none did)."""
        row = self.final_loss[tau_idx]
        diverged = np.where(~np.isfinite(row))[0]
        if len(diverged) == 0:
            return float("inf")
        return float(self.alphas[diverged[0]])


def run_stability_heatmap(
    alphas: np.ndarray | None = None,
    taus: np.ndarray | None = None,
    steps: int = 4000,
    batch_size: int = 64,
    num_samples: int = 1024,
    seed: int = 0,
) -> HeatmapResult:
    """Compute the heatmap.  Defaults cover the paper's ranges
    (α ∈ [2⁻¹², 2⁻²], τ ∈ [1, 1024]) at CPU-feasible step counts."""
    if alphas is None:
        alphas = 2.0 ** np.arange(-12, -1)
    if taus is None:
        taus = 4 ** np.arange(0, 6)  # 1 .. 1024
    rng = np.random.default_rng(seed)
    x, y = make_cpusmall_like(num_samples=num_samples, rng=rng)
    lam = LinearRegressionModel.largest_curvature(x)

    losses = np.zeros((len(taus), len(alphas)))
    for i, tau in enumerate(taus):
        for j, alpha in enumerate(alphas):
            series, diverged = simulate_delayed_least_squares(
                x, y, float(alpha), int(tau), steps,
                batch_size=batch_size, rng=np.random.default_rng((seed, i, j)),
            )
            # flag exponential growth that hasn't yet hit the iterate cap:
            # a short run at a mildly unstable α still paints red, as in the
            # paper's 10⁶-step heatmap
            unstable = diverged or series[-1] > max(1e12, 1e6 * series[0])
            losses[i, j] = np.inf if unstable else series[-1]
    curve = np.array([lemma1_alpha_max(float(t), lam) for t in taus])
    return HeatmapResult(
        alphas=np.asarray(alphas, dtype=float),
        taus=np.asarray(taus, dtype=float),
        final_loss=losses,
        lemma1_curve=curve,
        curvature=lam,
    )


def boundary_slope_loglog(result: HeatmapResult) -> float:
    """Slope of log(boundary α) vs log(τ): Lemma 1 predicts −1."""
    xs, ys = [], []
    for i, tau in enumerate(result.taus):
        b = result.divergence_boundary_alpha(i)
        if np.isfinite(b) and tau >= 1:
            xs.append(np.log(tau))
            ys.append(np.log(b))
    if len(xs) < 2:
        return float("nan")
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)
