"""End-to-end comparison of GPipe / PipeDream / PipeMare — Table 2 and
Figure 9.

Per method: best metric, the shared target (best-across-methods minus the
paper's slack: 1.0 accuracy point / 0.4 BLEU), epochs-to-target, estimated
throughput, speedup-to-target over GPipe, and weight+optimizer memory
multiplier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import PipeMareConfig
from repro.experiments.workloads import _BaseWorkload
from repro.pipeline import Method, costmodel
from repro.train.pipeline_trainer import TrainResult


@dataclass
class MethodRow:
    """One Table 2 row."""

    method: str
    best_metric: float
    target_metric: float
    epochs_to_target: float
    throughput: float
    time_to_target: float
    speedup_vs_gpipe: float
    memory_multiplier: float

    def format(self) -> str:
        def f(v, spec=".1f"):
            return "-" if math.isinf(v) or math.isnan(v) else format(v, spec)

        return (
            f"{self.method:<10} best={f(self.best_metric)} "
            f"target={f(self.target_metric)} epochs={f(self.epochs_to_target, '.0f')} "
            f"tput={self.throughput:.2f}x speedup={f(self.speedup_vs_gpipe, '.2f')}x "
            f"mem={self.memory_multiplier:.2f}x"
        )


def run_end_to_end(
    workload: _BaseWorkload,
    epochs: int,
    methods: tuple[str, ...] = ("pipedream", "gpipe", "pipemare"),
    warmup_epochs: int = 0,
    seeds: tuple[int, ...] = (0,),
    num_stages: int | None = None,
) -> tuple[list[MethodRow], dict[str, list[TrainResult]]]:
    """Run every method on ``workload``; returns (rows, raw results)."""
    results: dict[str, list[TrainResult]] = {}
    for method in methods:
        cfg = None
        if method == "pipemare":
            cfg = workload.default_config(warmup_epochs=warmup_epochs)
        results[method] = [
            workload.run(
                method=method, pipemare=cfg, epochs=epochs, seed=seed,
                num_stages=num_stages,
            )
            for seed in seeds
        ]
    return summarize(workload, results, warmup_epochs, epochs, num_stages), results


def summarize(
    workload: _BaseWorkload,
    results: dict[str, list[TrainResult]],
    warmup_epochs: int,
    epochs: int,
    num_stages: int | None = None,
) -> list[MethodRow]:
    """Build Table 2 rows from raw results (seed-averaged metric curves)."""
    p = results[next(iter(results))][0].meta["num_stages"]
    n = results[next(iter(results))][0].meta["num_microbatches"]

    best = {
        m: float(np.mean([r.best_metric for r in rs])) for m, rs in results.items()
    }
    target = max(best.values()) - workload.target_slack

    rows = []
    gpipe_time = math.nan
    for method in ("pipedream", "gpipe", "pipemare"):
        if method not in results:
            continue
        rs = results[method]
        epochs_to = float(np.mean([r.epochs_to_target(target) for r in rs]))
        throughput = costmodel.method_throughput(
            method, p, n,
            warmup_epochs=warmup_epochs if method == "pipemare" else 0,
            total_epochs=epochs,
        )
        time_to = costmodel.time_to_accuracy(epochs_to, throughput)
        rows.append(
            MethodRow(
                method=method,
                best_metric=best[method],
                target_metric=target,
                epochs_to_target=epochs_to,
                throughput=throughput,
                time_to_target=time_to,
                speedup_vs_gpipe=math.nan,
                memory_multiplier=costmodel.memory_multiplier(
                    method, p, n,
                    optimizer=workload.optimizer_kind,
                    t2=(method == "pipemare"),
                ),
            )
        )
        if method == "gpipe":
            gpipe_time = time_to
    for row in rows:
        row.speedup_vs_gpipe = (
            gpipe_time / row.time_to_target if row.time_to_target > 0 else math.inf
        )
    return rows
