"""Hogwild!-asynchrony study — Figure 19 (Appendix E).

Compares synchronous training, Hogwild!-style stochastic-delay training,
and Hogwild! + T1 learning-rate rescheduling on the image workload.  The
paper reports T1 lifting CIFAR accuracy 94.51 → 94.80 and Transformer BLEU
3.6 → 33.8 under stochastic delays.
"""

from __future__ import annotations

import numpy as np

from repro.data import batch_iterator
from repro.experiments.workloads import ImageWorkload
from repro.hogwild import HogwildExecutor, TruncatedExponentialDelays
from repro.metrics.tracker import MetricTracker
from repro.optim import SGD
from repro.pipeline import DelayProfile, Method, partition_model
from repro.pipeline.executor import param_groups_from_stages
from repro.train import evaluate_classifier
from repro.train.pipeline_trainer import TrainResult
from repro.train.trainer import parameter_norm
from repro.utils.history import History


def run_hogwild_image(
    workload: ImageWorkload,
    epochs: int,
    use_t1: bool = False,
    tau_max: int | None = None,
    num_stages: int | None = None,
    seed: int = 0,
) -> TrainResult:
    """Train the image workload under stochastic per-stage delays."""
    model = workload.build_model(seed)
    from repro.nn import CrossEntropyLoss

    loss = CrossEntropyLoss()
    stages = partition_model(model, workload.resolve_stages(num_stages))
    # Delay means follow the pipeline τ_fwd profile (Appendix E).
    profile = DelayProfile(len(stages), workload.num_microbatches, Method.PIPEMARE)
    means = profile.tau_fwd_all()
    if tau_max is None:
        tau_max = int(np.ceil(3 * means.max()))
    delays = TruncatedExponentialDelays(
        means, tau_max, rng=np.random.default_rng((seed, 77))
    )
    opt = SGD(
        param_groups_from_stages(stages),
        lr=workload.lr,
        momentum=workload.momentum,
        weight_decay=workload.weight_decay,
    )
    executor = HogwildExecutor(
        model, loss, opt, stages, delays,
        anneal_steps=workload.default_anneal_steps() if use_t1 else None,
        base_schedule=workload.base_schedule(),
    )
    history = History()
    tracker = MetricTracker(mode="max")
    diverged = False
    for epoch in range(epochs):
        rng = np.random.default_rng((seed, epoch))
        losses = [
            executor.train_step(x, y)
            for x, y in batch_iterator(
                workload.data.train_x, workload.data.train_y, workload.batch_size, rng
            )
        ]
        mean_loss = float(np.mean(losses))
        norm = parameter_norm(model)
        history.log(step=epoch, train_loss=mean_loss, param_norm=norm)
        if not np.isfinite(mean_loss) or norm > 1e6:
            diverged = True
            tracker.record(epoch, -np.inf, 1.0)
            break
        metric = evaluate_classifier(model, workload.data.test_x, workload.data.test_y)
        history.log(step=epoch, eval_metric=metric)
        tracker.record(epoch, metric, 1.0)
    return TrainResult(
        history=history, tracker=tracker, diverged=diverged,
        meta={"mode": "hogwild", "t1": use_t1, "tau_max": tau_max},
    )
