"""PipeMare Recompute training studies — Figures 17 and 18 (Appendix D.2).

The paper sets gradient checkpoints at module boundaries ({2, 4, 17} for
ResNet50, {2, 12, 31} for the Transformer) and shows that with discrepancy
correction, training with recompute matches training without; without T2,
Transformer recompute runs destabilise.

In our executor a "checkpoint count" c maps to segment size S = ceil(P/c).
"""

from __future__ import annotations

import math

from repro.core import PipeMareConfig
from repro.experiments.workloads import _BaseWorkload
from repro.train.pipeline_trainer import TrainResult


def checkpoints_to_segment(num_stages: int, checkpoints: int) -> int:
    """Segment size for a given number of gradient checkpoints."""
    if checkpoints < 1:
        raise ValueError(f"checkpoints must be >= 1, got {checkpoints}")
    return max(1, math.ceil(num_stages / checkpoints))


def run_recompute_study(
    workload: _BaseWorkload,
    checkpoint_grid: list[int | None],
    epochs: int,
    config: PipeMareConfig | None = None,
    seed: int = 0,
    num_stages: int | None = None,
) -> dict[str, TrainResult]:
    """Train PipeMare with each checkpoint count (``None`` = no recompute).

    ``config`` defaults to the workload's tuned T1+T2.
    """
    if config is None:
        config = workload.default_config()
    stages = workload.resolve_stages(num_stages)
    if stages is None:
        stages = workload.max_stages()
    out: dict[str, TrainResult] = {}
    for ckpts in checkpoint_grid:
        if ckpts is None:
            key, segment = "no_recompute", None
        else:
            key = f"{ckpts}_ckpts"
            segment = checkpoints_to_segment(stages, ckpts)
        out[key] = workload.run(
            method="pipemare", pipemare=config, epochs=epochs, seed=seed,
            num_stages=stages, recompute_segment=segment,
        )
    return out
