"""Hyperparameter-sensitivity studies — Figures 12, 13, 14 and the
Table 8 grids.

Each sweep fixes everything except one PipeMare hyperparameter:

* annealing steps K (Figure 12) — too small reverts to unstable naive async
  before the base schedule decays; too large wastes the full-rate phase;
* T2 decay D (Figure 13) — the paper finds D ≤ 0.5 necessary on CIFAR and
  D ≈ 0.1 on IWSLT, with bad D worse than no correction;
* warmup epochs M (Figure 14) — more sync epochs improve quality but cost
  throughput (each costs 1/0.3× time).
"""

from __future__ import annotations

from repro.core import PipeMareConfig
from repro.experiments.workloads import _BaseWorkload
from repro.pipeline import costmodel
from repro.train.pipeline_trainer import TrainResult


def sweep_anneal_steps(
    workload: _BaseWorkload,
    anneal_grid: list[int],
    epochs: int,
    use_t2: bool = False,
    seed: int = 0,
) -> dict[int, TrainResult]:
    """Figure 12: model quality vs K."""
    out: dict[int, TrainResult] = {}
    for k in anneal_grid:
        cfg = (
            PipeMareConfig.t1_t2(k, decay=workload.tuned_decay)
            if use_t2
            else PipeMareConfig.t1_only(k)
        )
        out[k] = workload.run(method="pipemare", pipemare=cfg, epochs=epochs, seed=seed)
    return out


def sweep_decay(
    workload: _BaseWorkload,
    decay_grid: list[float],
    epochs: int,
    seed: int = 0,
) -> dict[float, TrainResult]:
    """Figure 13: model quality vs T2 decay D (with tuned K)."""
    k = workload.default_anneal_steps()
    out: dict[float, TrainResult] = {}
    for d in decay_grid:
        if d == 0.0:
            cfg = PipeMareConfig.t1_only(k)  # D=0 ⇒ no usable correction
        else:
            cfg = PipeMareConfig.t1_t2(k, decay=d)
        out[d] = workload.run(method="pipemare", pipemare=cfg, epochs=epochs, seed=seed)
    return out


def sweep_warmup_epochs(
    workload: _BaseWorkload,
    warmup_grid: list[int],
    epochs: int,
    target: float | None = None,
    seed: int = 0,
    num_stages: int | None = None,
) -> dict[int, dict]:
    """Figure 14: quality and time-to-target vs number of sync warmup
    epochs.  Returns per warmup count: result, amortized throughput,
    time-to-target."""
    out: dict[int, dict] = {}
    results: dict[int, TrainResult] = {}
    for m in warmup_grid:
        cfg = workload.default_config(warmup_epochs=m)
        results[m] = workload.run(
            method="pipemare", pipemare=cfg, epochs=epochs, seed=seed,
            num_stages=num_stages,
        )
    if target is None:
        target = max(r.best_metric for r in results.values()) - workload.target_slack
    for m, r in results.items():
        tput = costmodel.method_throughput(
            "pipemare", 1, 1, warmup_epochs=m, total_epochs=epochs
        )
        out[m] = {
            "result": r,
            "best": r.best_metric,
            "throughput": tput,
            "time_to_target": r.time_to_target(target),
            "epochs_to_target": r.epochs_to_target(target),
        }
    return out
