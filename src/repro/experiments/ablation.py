"""Technique ablation — Table 3 and the Figure 4/10 learning curves.

Runs the paper's variants on one workload: naive async, T1 only, T2 only,
T1+T2, and (for translation) T1+T2+T3, plus the synchronous reference.
"""

from __future__ import annotations

from repro.core import PipeMareConfig
from repro.experiments.workloads import _BaseWorkload
from repro.train.pipeline_trainer import TrainResult


def ablation_variants(
    workload: _BaseWorkload, include_t3: bool = False, warmup_epochs: int = 4
) -> dict[str, PipeMareConfig | None]:
    """The Table 3 variant grid.  ``None`` marks the synchronous baseline."""
    k = workload.default_anneal_steps()
    d = workload.tuned_decay
    variants: dict[str, PipeMareConfig | None] = {
        "sync": None,
        "naive": PipeMareConfig.naive_async(),
        "t1": PipeMareConfig.t1_only(k),
        "t2": PipeMareConfig.t2_only(decay=d),
        "t1+t2": PipeMareConfig.t1_t2(k, decay=d),
    }
    if include_t3:
        variants["t1+t2+t3"] = PipeMareConfig.full(
            k, warmup_epochs * workload.steps_per_epoch, decay=d
        )
    return variants


def run_ablation(
    workload: _BaseWorkload,
    epochs: int,
    include_t3: bool = False,
    warmup_epochs: int = 4,
    seed: int = 0,
    num_stages: int | None = None,
    variants: dict[str, PipeMareConfig | None] | None = None,
) -> dict[str, TrainResult]:
    """Run each variant; returns results keyed by variant name."""
    if variants is None:
        variants = ablation_variants(workload, include_t3, warmup_epochs)
    results: dict[str, TrainResult] = {}
    for name, cfg in variants.items():
        if cfg is None:
            results[name] = workload.run(
                method="gpipe", epochs=epochs, seed=seed, num_stages=num_stages
            )
        else:
            results[name] = workload.run(
                method="pipemare", pipemare=cfg, epochs=epochs, seed=seed,
                num_stages=num_stages,
            )
    return results


def format_ablation_table(
    workload: _BaseWorkload, results: dict[str, TrainResult]
) -> list[str]:
    """Table 3-style rows: variant, best metric, epochs to shared target."""
    best_all = max(r.best_metric for r in results.values())
    target = best_all - workload.target_slack
    lines = [f"target = best({best_all:.2f}) - {workload.target_slack} = {target:.2f}"]
    for name, r in results.items():
        epochs_to = r.epochs_to_target(target)
        e = "-" if epochs_to == float("inf") else f"{epochs_to:.0f}"
        lines.append(
            f"{name:<10} best={r.best_metric:7.2f} epochs_to_target={e:>4} "
            f"diverged={r.diverged}"
        )
    return lines
