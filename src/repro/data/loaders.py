"""Minibatch iteration helpers."""

from __future__ import annotations

from typing import Iterator

import numpy as np


def batch_iterator(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    drop_last: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (x_batch, y_batch) minibatches for one epoch.

    ``drop_last`` defaults True so every minibatch splits into equal
    microbatches in the pipeline executor.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y disagree on length: {len(x)} vs {len(y)}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = len(x)
    order = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng(0)
        rng.shuffle(order)
    end = n - (n % batch_size) if drop_last and n >= batch_size else n
    for start in range(0, end, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            break
        yield x[idx], y[idx]
