"""Synthetic translation (IWSLT14/WMT17 stand-in).

The "language pair" is a deterministic transformation of random token
sequences: the target is the *reversed* source with a fixed vocabulary
rotation.  Reversal forces the decoder to attend non-monotonically — the
structural property that makes seq2seq genuinely need attention — while the
rotation prevents trivial copy solutions.  BLEU against the exact reference
behaves like BLEU on real data: 0 for an untrained model, approaching 100
as the model masters the mapping, with intermediate values under partial
learning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PAD, BOS, EOS = 0, 1, 2
NUM_SPECIAL = 3


@dataclass
class TranslationBatch:
    """Padded integer batches ready for the Transformer."""

    src: np.ndarray       # (B, Ts)
    tgt_in: np.ndarray    # (B, Tt) — BOS + target
    tgt_out: np.ndarray   # (B, Tt) — target + EOS


class TranslationTask:
    """Sampler of (source, reference) pairs plus batching utilities."""

    def __init__(
        self,
        vocab_size: int = 32,
        min_len: int = 4,
        max_len: int = 9,
        rotation: int = 5,
        rng: np.random.Generator | None = None,
    ):
        if vocab_size <= NUM_SPECIAL + 1:
            raise ValueError(f"vocab_size must exceed {NUM_SPECIAL + 1}")
        if not 1 <= min_len <= max_len:
            raise ValueError("need 1 <= min_len <= max_len")
        self.vocab_size = vocab_size
        self.min_len = min_len
        self.max_len = max_len
        self.rotation = rotation
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def pad_id(self) -> int:
        return PAD

    @property
    def bos_id(self) -> int:
        return BOS

    @property
    def eos_id(self) -> int:
        return EOS

    def translate(self, src_tokens: np.ndarray) -> np.ndarray:
        """Ground-truth mapping: reverse + rotate within the content vocab."""
        content = self.vocab_size - NUM_SPECIAL
        rotated = (src_tokens - NUM_SPECIAL + self.rotation) % content + NUM_SPECIAL
        return rotated[::-1]

    def sample_pairs(self, n: int) -> list[tuple[np.ndarray, np.ndarray]]:
        pairs = []
        for _ in range(n):
            length = int(self.rng.integers(self.min_len, self.max_len + 1))
            src = self.rng.integers(NUM_SPECIAL, self.vocab_size, size=length)
            pairs.append((src, self.translate(src)))
        return pairs

    def make_batch(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> TranslationBatch:
        """Pad a list of pairs into rectangular arrays."""
        if not pairs:
            raise ValueError("empty batch")
        ts = max(len(s) for s, _ in pairs)
        tt = max(len(t) for _, t in pairs) + 1  # room for BOS/EOS
        b = len(pairs)
        src = np.full((b, ts), PAD, dtype=np.int64)
        tgt_in = np.full((b, tt), PAD, dtype=np.int64)
        tgt_out = np.full((b, tt), PAD, dtype=np.int64)
        for i, (s, t) in enumerate(pairs):
            src[i, : len(s)] = s
            tgt_in[i, 0] = BOS
            tgt_in[i, 1 : len(t) + 1] = t
            tgt_out[i, : len(t)] = t
            tgt_out[i, len(t)] = EOS
        return TranslationBatch(src=src, tgt_in=tgt_in, tgt_out=tgt_out)

    def sample_batch(self, batch_size: int) -> TranslationBatch:
        return self.make_batch(self.sample_pairs(batch_size))

    def fixed_eval_set(self, n: int, seed: int = 1234) -> list[tuple[np.ndarray, np.ndarray]]:
        """A reproducible held-out set for BLEU evaluation."""
        saved = self.rng
        self.rng = np.random.default_rng(seed)
        try:
            return self.sample_pairs(n)
        finally:
            self.rng = saved

    @staticmethod
    def strip_special(tokens: np.ndarray) -> list[int]:
        """Remove BOS/EOS/PAD; truncate at the first EOS."""
        out = []
        for tok in tokens:
            if tok == EOS:
                break
            if tok not in (PAD, BOS):
                out.append(int(tok))
        return out
