"""cpusmall-like linear regression (the Figure 3(b) workload).

cpusmall is a 12-feature LIBSVM regression dataset with heterogeneous
feature scales; what the stability heatmap needs from it is a fixed
quadratic objective whose largest curvature is known.  We generate features
with a geometric spread of scales so the Hessian spectrum is spread like a
real dataset's.
"""

from __future__ import annotations

import numpy as np


def make_cpusmall_like(
    num_samples: int = 2048,
    num_features: int = 12,
    noise: float = 0.5,
    scale_spread: float = 8.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Returns ``(x, y)`` with ``y = x·w* + noise`` and feature scales
    spanning a factor of ``scale_spread``.

    Features are centred so the curvature is governed by the scales alone.
    """
    if num_samples < num_features:
        raise ValueError("need at least as many samples as features")
    if scale_spread < 1.0:
        raise ValueError(f"scale_spread must be >= 1, got {scale_spread}")
    rng = rng if rng is not None else np.random.default_rng(0)
    scales = np.geomspace(1.0, scale_spread, num_features)
    x = rng.normal(size=(num_samples, num_features)) * scales
    w_true = rng.normal(size=num_features) / scales  # keep targets O(1)
    y = x @ w_true + noise * rng.normal(size=num_samples)
    return x, y
