"""Synthetic datasets standing in for the paper's workloads (see DESIGN.md
§2 for the substitution rationale):

* :func:`make_image_classification` — CIFAR10/ImageNet stand-in,
* :func:`make_cpusmall_like` — the LIBSVM cpusmall regression of Fig. 3(b),
* :class:`TranslationTask` — IWSLT14/WMT17 stand-in with real BLEU scoring.
"""

from repro.data.synthetic_images import ImageDataset, make_image_classification
from repro.data.regression import make_cpusmall_like
from repro.data.translation import TranslationBatch, TranslationTask
from repro.data.loaders import batch_iterator

__all__ = [
    "ImageDataset",
    "make_image_classification",
    "make_cpusmall_like",
    "TranslationTask",
    "TranslationBatch",
    "batch_iterator",
]
