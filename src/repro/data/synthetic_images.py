"""Synthetic image classification (CIFAR10/ImageNet stand-in).

Each class is a smooth random spatial template; samples are the template
plus white noise and a random brightness jitter.  The task is learnable to
high accuracy by a small CNN yet non-trivial (classes overlap under noise),
which is what the paper's divergence/recovery phenomena need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter


@dataclass
class ImageDataset:
    """NCHW float images with integer labels, plus a held-out test split."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.train_x.shape[1:]

    def __len__(self) -> int:
        return len(self.train_x)


def make_image_classification(
    num_train: int = 512,
    num_test: int = 256,
    num_classes: int = 10,
    image_size: int = 8,
    channels: int = 3,
    noise: float = 0.6,
    rng: np.random.Generator | None = None,
) -> ImageDataset:
    """Generate a class-template image dataset.

    ``noise`` controls difficulty: 0 is trivially separable; ≥1 approaches
    chance level for small models.
    """
    if num_classes < 2:
        raise ValueError(f"need at least 2 classes, got {num_classes}")
    if num_train < num_classes or num_test < 1:
        raise ValueError("dataset too small")
    rng = rng if rng is not None else np.random.default_rng(0)
    templates = rng.normal(size=(num_classes, channels, image_size, image_size))
    # Smooth spatially so classes have CNN-learnable low-frequency structure.
    for k in range(num_classes):
        for c in range(channels):
            templates[k, c] = gaussian_filter(templates[k, c], sigma=1.0, mode="wrap")
    templates /= templates.std(axis=(1, 2, 3), keepdims=True)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, num_classes, size=n)
        brightness = rng.normal(1.0, 0.1, size=(n, 1, 1, 1))
        x = templates[y] * brightness + noise * rng.normal(size=(n, channels, image_size, image_size))
        return x, y

    train_x, train_y = sample(num_train)
    test_x, test_y = sample(num_test)
    return ImageDataset(train_x, train_y, test_x, test_y, num_classes)
