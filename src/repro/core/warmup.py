"""T3 — synchronous warmup epochs (§3.3).

Early training traverses "bad regions" where the quadratic proxy fails and
asynchronous SGD gets stuck; T3 runs the first M epochs synchronously
(GPipe-style, throughput ≈ 0.3) before switching to asynchronous execution
(throughput 1.0).  The amortized-throughput accounting here feeds the
time-to-accuracy metric.
"""

from __future__ import annotations


class WarmupSchedule:
    """Tracks whether a given optimizer step is inside the synchronous
    warmup window."""

    def __init__(self, warmup_steps: int):
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be non-negative, got {warmup_steps}")
        self.warmup_steps = int(warmup_steps)

    def is_synchronous(self, step: int) -> bool:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return step < self.warmup_steps

    @staticmethod
    def amortized_throughput(
        total_epochs: float,
        warmup_epochs: float,
        sync_throughput: float = 0.3,
        async_throughput: float = 1.0,
    ) -> float:
        """Average throughput of a run with ``warmup_epochs`` synchronous
        epochs out of ``total_epochs``.

        Time per epoch ∝ 1/throughput, so the average is the harmonic
        combination; e.g. IWSLT14 (10 warmup of 35 epochs) gives ≈ 0.6×,
        matching Table 2.
        """
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if not 0 <= warmup_epochs <= total_epochs:
            raise ValueError("warmup_epochs must lie within [0, total_epochs]")
        time = warmup_epochs / sync_throughput + (total_epochs - warmup_epochs) / async_throughput
        return total_epochs / time
