"""T2 — discrepancy correction (§3.2).

During backward, PipeMare no longer has the forward weights ``u_fwd`` in
memory.  T2 approximates them by extrapolating backwards along the recent
weight trajectory:

    ``u_bkwd,i = w_i − (τ_fwd,i − τ_bkwd,i) · δ_i``
    ``δ_{t+1,i} = γ_i δ_{t,i} + (1 − γ_i)(w_{t+1,i} − w_{t,i})``
    ``γ_i = D^{1/(τ_fwd,i − τ_bkwd,i)}``

with the global decay ``D`` defaulting near ``e^{−2} ≈ 0.135``, the value
for which the second-order Taylor expansion of the corrected system's
characteristic polynomial at ω=1 is independent of the discrepancy
sensitivity Δ (Appendix B.5).

Memory cost: one extra buffer the size of the weights — the footnote-2
"+33% for SGD / +25% for Adam" optimizer-state increase.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

PAPER_DEFAULT_DECAY = float(np.exp(-2.0))  # ≈ 0.1353


class DiscrepancyCorrector:
    """Maintains per-stage velocity EWMAs and produces corrected backward
    weights.

    Parameters
    ----------
    stage_params:
        One list of Parameters per pipeline stage.
    tau_fwd, tau_bkwd:
        Per-stage delays in optimizer steps (floats; PipeMare has
        ``τ_bkwd = 0``).  Stages with ``τ_fwd − τ_bkwd <= 0`` get no
        correction (γ undefined there).
    decay:
        The global hyperparameter D.
    """

    def __init__(
        self,
        stage_params: list[list[Parameter]],
        tau_fwd: list[float] | np.ndarray,
        tau_bkwd: list[float] | np.ndarray,
        decay: float = PAPER_DEFAULT_DECAY,
    ):
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay D must be in [0, 1), got {decay}")
        tau_fwd = np.asarray(tau_fwd, dtype=float)
        tau_bkwd = np.asarray(tau_bkwd, dtype=float)
        if not (len(stage_params) == len(tau_fwd) == len(tau_bkwd)):
            raise ValueError("stage_params, tau_fwd, tau_bkwd must align")
        if np.any(tau_bkwd > tau_fwd):
            raise ValueError("tau_bkwd must not exceed tau_fwd")
        self.stage_params = stage_params
        self.dtau = tau_fwd - tau_bkwd
        self.decay = decay
        # γ_i = D^{1/Δτ_i}; Δτ→0 ⇒ no correction needed for that stage.
        with np.errstate(divide="ignore", over="ignore"):
            self.gamma = np.where(self.dtau > 0, decay ** (1.0 / np.maximum(self.dtau, 1e-12)), 0.0)
        self.velocity: list[list[np.ndarray]] = [
            [np.zeros_like(p.data) for p in params] for params in stage_params
        ]

    @property
    def num_stages(self) -> int:
        return len(self.stage_params)

    def corrected_weights(self, stage: int) -> list[np.ndarray]:
        """``w − Δτ·δ`` for every parameter of ``stage`` (current w)."""
        return self.correct(stage, [p.data for p in self.stage_params[stage]])

    def correct(self, stage: int, weights: list[np.ndarray]) -> list[np.ndarray]:
        """``w − Δτ·δ`` applied to explicit ``weights`` (one array per stage
        parameter).  Taking the base weights as an argument instead of
        reading ``Parameter.data`` keeps the result independent of which
        version the live parameters happen to point at — required by the
        concurrent runtime, where version loads are per-worker."""
        dtau = self.dtau[stage]
        if dtau <= 0:
            return list(weights)
        return [w - dtau * v for w, v in zip(weights, self.velocity[stage])]

    def update(self, stage: int, old_weights: list[np.ndarray]) -> None:
        """Fold the step just taken (``w_new − w_old``) into the EWMA."""
        g = self.gamma[stage]
        if self.dtau[stage] <= 0:
            return
        for p, v, old in zip(self.stage_params[stage], self.velocity[stage], old_weights):
            v *= g
            v += (1.0 - g) * (p.data - old)

    def update_all(self, old_weights_per_stage: list[list[np.ndarray]]) -> None:
        for stage, old in enumerate(old_weights_per_stage):
            self.update(stage, old)

    def update_arrays(
        self, stage: int, old_weights: list[np.ndarray], new_weights: list[np.ndarray]
    ) -> None:
        """:meth:`update` with the post-step weights passed explicitly
        instead of read from ``Parameter.data`` — the overlapped optimizer
        boundary computes the step detached from the live parameters (which
        the next minibatch's workers are already re-pointing)."""
        g = self.gamma[stage]
        if self.dtau[stage] <= 0:
            return
        for v, old, new in zip(self.velocity[stage], old_weights, new_weights):
            v *= g
            v += (1.0 - g) * (new - old)

    def update_all_arrays(
        self,
        old_per_stage: list[list[np.ndarray]],
        new_per_stage: list[list[np.ndarray]],
    ) -> None:
        for stage, (old, new) in enumerate(zip(old_per_stage, new_per_stage)):
            self.update_arrays(stage, old, new)

    def memory_elements(self) -> int:
        """Extra scalar storage: exactly one weight-sized buffer."""
        return sum(v.size for stage in self.velocity for v in stage)

    def state_dict(self) -> dict:
        """Snapshot of the velocity buffers (per stage, per parameter)."""
        return {
            "velocity": [[v.copy() for v in stage] for stage in self.velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore velocity buffers; shapes must match the current stages."""
        velocity = state["velocity"]
        if len(velocity) != len(self.velocity):
            raise ValueError(
                f"checkpoint has {len(velocity)} stages, corrector has "
                f"{len(self.velocity)}"
            )
        for s, (ours, theirs) in enumerate(zip(self.velocity, velocity)):
            if len(ours) != len(theirs):
                raise ValueError(f"stage {s}: parameter count mismatch")
            for v, saved in zip(ours, theirs):
                saved = np.asarray(saved)
                if v.shape != saved.shape:
                    raise ValueError(
                        f"stage {s}: velocity shape {saved.shape} != {v.shape}"
                    )
                v[...] = saved
