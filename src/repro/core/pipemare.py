"""PipeMareConfig — composition of T1 + T2 + T3 with the paper's defaults
and hyperparameter rules of thumb (§3.1, §3.3, Appendix C.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.discrepancy import PAPER_DEFAULT_DECAY


def anneal_steps_for_step_schedule(first_phase_steps: int) -> int:
    """§3.1 rule: K = one quarter of the first phase of a fixed-step
    schedule (the ResNet recipe)."""
    if first_phase_steps <= 0:
        raise ValueError("first_phase_steps must be positive")
    return max(1, first_phase_steps // 4)


def anneal_steps_for_warmup_schedule(linear_warmup_steps: int) -> int:
    """§3.1 rule: K = 5× the linear LR warmup steps (the Transformer
    recipe)."""
    if linear_warmup_steps <= 0:
        raise ValueError("linear_warmup_steps must be positive")
    return 5 * linear_warmup_steps


@dataclass
class PipeMareConfig:
    """Which techniques to enable, and their hyperparameters.

    ``use_t1=use_t2=use_t3=False`` is naive asynchronous training (diverges
    at fine granularity — Figure 7); all three enabled is full PipeMare.
    """

    use_t1: bool = True
    anneal_steps: int = 100
    use_t2: bool = True
    decay: float = PAPER_DEFAULT_DECAY
    use_t3: bool = False
    warmup_steps: int = 0

    def __post_init__(self):
        if self.use_t1 and self.anneal_steps <= 0:
            raise ValueError("T1 requires positive anneal_steps")
        if self.use_t2 and not 0.0 <= self.decay < 1.0:
            raise ValueError("T2 decay must be in [0, 1)")
        if self.use_t3 and self.warmup_steps <= 0:
            raise ValueError("T3 requires positive warmup_steps")
        if not self.use_t3:
            self.warmup_steps = 0

    @classmethod
    def naive_async(cls) -> "PipeMareConfig":
        return cls(use_t1=False, use_t2=False, use_t3=False)

    @classmethod
    def t1_only(cls, anneal_steps: int) -> "PipeMareConfig":
        return cls(use_t1=True, anneal_steps=anneal_steps, use_t2=False, use_t3=False)

    @classmethod
    def t2_only(cls, decay: float = PAPER_DEFAULT_DECAY) -> "PipeMareConfig":
        return cls(use_t1=False, use_t2=True, decay=decay, use_t3=False)

    @classmethod
    def t1_t2(cls, anneal_steps: int, decay: float = PAPER_DEFAULT_DECAY) -> "PipeMareConfig":
        return cls(use_t1=True, anneal_steps=anneal_steps, use_t2=True, decay=decay, use_t3=False)

    @classmethod
    def full(
        cls,
        anneal_steps: int,
        warmup_steps: int,
        decay: float = PAPER_DEFAULT_DECAY,
    ) -> "PipeMareConfig":
        return cls(
            use_t1=True,
            anneal_steps=anneal_steps,
            use_t2=True,
            decay=decay,
            use_t3=True,
            warmup_steps=warmup_steps,
        )

    def describe(self) -> str:
        parts = []
        if self.use_t1:
            parts.append(f"T1(K={self.anneal_steps})")
        if self.use_t2:
            parts.append(f"T2(D={self.decay:.3g})")
        if self.use_t3:
            parts.append(f"T3(warmup={self.warmup_steps})")
        return " + ".join(parts) if parts else "naive-async"
