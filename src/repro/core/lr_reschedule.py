"""T1 — learning-rate rescheduling (§3.1).

Lemma 1 shows fixed-delay SGD is stable only for ``α = O(1/(λτ))``; dividing
the step size by ``τ_i`` forever would be needlessly slow once the base
schedule has decayed, so T1 anneals the exponent:

    ``α_{k,i} = α_base,k / τ_i^{p_k}``,  ``p_k = 1 − min(k/K, 1)``.

At step 0 every stage runs at ``α/τ_i`` (the stability-safe rate); by step K
the scaling has relaxed back to the plain base schedule.
"""

from __future__ import annotations

import numpy as np


class LRReschedule:
    """Computes per-stage learning-rate scales and drives optimizer groups.

    Parameters
    ----------
    tau_fwd:
        Forward delay of each stage, in optimizer steps (the paper's
        ``τ_fwd,i = (2(P−i)+1)/N``).  Values below 1 are clamped to 1 —
        a sub-step delay needs no damping and must not *amplify* the rate.
    anneal_steps:
        K of eq. (5).  The paper's rules of thumb are implemented in
        :mod:`repro.core.pipemare`.
    """

    def __init__(self, tau_fwd: list[float] | np.ndarray, anneal_steps: int):
        if anneal_steps <= 0:
            raise ValueError(f"anneal_steps must be positive, got {anneal_steps}")
        tau = np.asarray(tau_fwd, dtype=float)
        if tau.size == 0:
            raise ValueError("tau_fwd must be non-empty")
        if np.any(tau < 0):
            raise ValueError("delays must be non-negative")
        self.tau = np.maximum(tau, 1.0)
        self.anneal_steps = int(anneal_steps)

    @property
    def num_stages(self) -> int:
        return len(self.tau)

    def exponent(self, step: int) -> float:
        """``p_k = 1 − min(k/K, 1)`` — decays linearly from 1 to 0."""
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return 1.0 - min(step / self.anneal_steps, 1.0)

    def scale(self, step: int, stage: int) -> float:
        """Multiplier ``τ_i^{−p_k}`` applied on top of the base schedule."""
        return float(self.tau[stage] ** (-self.exponent(step)))

    def scales(self, step: int) -> np.ndarray:
        """Vector of all per-stage multipliers at ``step``."""
        return self.tau ** (-self.exponent(step))

    def apply(self, optimizer, step: int) -> None:
        """Write per-stage ``lr_scale`` into the optimizer's param groups.

        The optimizer must have exactly one group per stage, in stage order
        (this is how the pipeline trainer constructs it).
        """
        if len(optimizer.groups) != self.num_stages:
            raise ValueError(
                f"optimizer has {len(optimizer.groups)} groups but reschedule "
                f"covers {self.num_stages} stages"
            )
        for stage, group in enumerate(optimizer.groups):
            group.lr_scale = self.scale(step, stage)
