"""The paper's contribution: the three PipeMare techniques.

* :class:`LRReschedule` — T1, per-stage step-size annealing
  ``α_{k,i} = α_base,k · τ_i^{−p_k}``, ``p_k = 1 − min(k/K, 1)`` (§3.1, eq. 5).
* :class:`DiscrepancyCorrector` — T2, velocity-EWMA extrapolation of the
  forward weights for use in the backward pass (§3.2), including the
  recompute variant of Appendix D.1.
* :class:`WarmupSchedule` — T3, synchronous (GPipe-style) warmup epochs
  before switching to asynchronous execution (§3.3).
* :class:`PipeMareConfig` — bundles the three with the paper's defaults and
  hyperparameter rules of thumb.
"""

from repro.core.lr_reschedule import LRReschedule
from repro.core.discrepancy import DiscrepancyCorrector
from repro.core.warmup import WarmupSchedule
from repro.core.pipemare import (
    PipeMareConfig,
    anneal_steps_for_step_schedule,
    anneal_steps_for_warmup_schedule,
)

__all__ = [
    "LRReschedule",
    "DiscrepancyCorrector",
    "WarmupSchedule",
    "PipeMareConfig",
    "anneal_steps_for_step_schedule",
    "anneal_steps_for_warmup_schedule",
]
