"""Aligned text tables for the paper's Tables 1-5 in CLI output.

A single generic formatter; the experiment modules build their rows and the
CLI renders them here so every command prints consistently shaped tables.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value, fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    float_fmt: str = ".3g",
    min_col_width: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` with per-column alignment.

    Floats are formatted with ``float_fmt``; ``None`` renders as ``-`` (the
    paper's marker for "method failed to reach the target").  Columns whose
    body cells are all numeric are right-aligned, text columns left-aligned.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )

    ncols = len(headers)
    body = [[_cell(v, float_fmt) for v in row] for row in rows]
    numeric = [
        all(isinstance(row[c], (int, float)) or row[c] is None for row in rows)
        for c in range(ncols)
    ]
    widths = [
        max(
            [len(headers[c]), min_col_width]
            + [len(body[r][c]) for r in range(len(body))]
        )
        for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for c, s in enumerate(cells):
            out.append(f"{s:>{widths[c]}}" if numeric[c] else f"{s:<{widths[c]}}")
        return "  ".join(out).rstrip()

    lines = [title] if title else []
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in body)
    return "\n".join(lines)
