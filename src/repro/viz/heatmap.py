"""ASCII heatmaps for the stability maps (Figure 3b's α-τ loss heatmap).

Cells are shaded with a density ramp; non-finite cells (divergence) render
as ``X`` — the analogue of the figure's red "diverged to infinity" region.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

# Light to dark; chosen to read as a monotone ramp in a terminal.
DEFAULT_RAMP = " .:-=+*#%@"
DIVERGED_CELL = "X"


def heatmap(
    grid: np.ndarray | Sequence[Sequence[float]],
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    title: str = "",
    ramp: str = DEFAULT_RAMP,
    cell_width: int = 2,
) -> str:
    """Render a 2-D array as a shaded character grid.

    Values are min-max normalised over the finite cells; NaN/inf cells are
    drawn as :data:`DIVERGED_CELL`.  ``row_labels``/``col_labels`` annotate
    the axes (column labels are thinned to fit).
    """
    arr = np.asarray(grid, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D array, got shape {arr.shape}")
    if len(ramp) < 2:
        raise ValueError("ramp must have at least 2 characters")
    n_rows, n_cols = arr.shape
    if row_labels is not None and len(row_labels) != n_rows:
        raise ValueError("row_labels length must match the number of rows")
    if col_labels is not None and len(col_labels) != n_cols:
        raise ValueError("col_labels length must match the number of columns")

    finite = arr[np.isfinite(arr)]
    if finite.size:
        lo, hi = float(finite.min()), float(finite.max())
    else:
        lo, hi = 0.0, 1.0
    span = hi - lo

    label_w = max((len(s) for s in row_labels), default=0) if row_labels else 0

    def shade(v: float) -> str:
        if not math.isfinite(v):
            return DIVERGED_CELL * cell_width
        t = 0.0 if span == 0 else (v - lo) / span
        return ramp[min(int(t * len(ramp)), len(ramp) - 1)] * cell_width

    lines: list[str] = []
    if title:
        lines.append(title)
    for r in range(n_rows):
        left = f"{row_labels[r]:>{label_w}} " if row_labels else ""
        lines.append(left + "".join(shade(arr[r, c]) for c in range(n_cols)))
    if col_labels:
        # Thin the column labels: print every k-th, left-aligned under its cell.
        footer = [" "] * (n_cols * cell_width)
        k = max(1, math.ceil(max(len(s) + 1 for s in col_labels) / cell_width))
        for c in range(0, n_cols, k):
            s = col_labels[c]
            pos = c * cell_width
            for i, ch in enumerate(s):
                if pos + i < len(footer):
                    footer[pos + i] = ch
        lines.append(" " * (label_w + 1 if row_labels else 0) + "".join(footer))
    lines.append(
        f"scale: '{ramp[0]}'={lo:.3g} .. '{ramp[-1]}'={hi:.3g}"
        + (f"   '{DIVERGED_CELL}'=diverged" if not np.isfinite(arr).all() else "")
    )
    return "\n".join(lines)
