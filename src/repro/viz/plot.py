"""ASCII line plots for metric curves (Figures 3a, 4, 9, 10, 12-14, 17-19).

The renderer rasterises each series onto a character grid with one marker
character per series, draws a y-axis with min/max labels, and appends a
legend.  Non-finite values are dropped point-wise, so a diverged run simply
stops where it diverged — which is exactly what the paper's divergence
figures show.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

# Marker cycle: visually distinct in any monospace font.
MARKERS = "*o+x#@%&"


def _finite_points(xs: Sequence[float], ys: Sequence[float]) -> list[tuple[float, float]]:
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} x vs {len(ys)} y")
    return [
        (float(x), float(y))
        for x, y in zip(xs, ys)
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]


def _bounds(values: Iterable[float]) -> tuple[float, float]:
    vals = list(values)
    lo, hi = min(vals), max(vals)
    if lo == hi:  # a flat line still needs a non-degenerate scale
        pad = 0.5 if lo == 0 else abs(lo) * 0.5
        lo, hi = lo - pad, hi + pad
    return lo, hi


def line_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    ylabel: str = "",
    xlabel: str = "",
    logy: bool = False,
) -> str:
    """Render named ``{label: (xs, ys)}`` series as an ASCII line plot.

    Parameters
    ----------
    series:
        Mapping from legend label to ``(xs, ys)`` pairs.  Later series
        overwrite earlier ones where they collide on the grid.
    width, height:
        Plot-area size in characters (axes and labels are extra).
    logy:
        Plot ``log10(y)``; non-positive y values are dropped.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area must be at least 8x4 characters")
    if not series:
        raise ValueError("no series to plot")

    cleaned: dict[str, list[tuple[float, float]]] = {}
    for label, (xs, ys) in series.items():
        pts = _finite_points(xs, ys)
        if logy:
            pts = [(x, math.log10(y)) for x, y in pts if y > 0]
        if pts:
            cleaned[label] = pts
    if not cleaned:
        return (title + "\n" if title else "") + "(no finite data)"

    all_x = [x for pts in cleaned.values() for x, _ in pts]
    all_y = [y for pts in cleaned.values() for _, y in pts]
    x_lo, x_hi = _bounds(all_x)
    y_lo, y_hi = _bounds(all_y)

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, pts) in enumerate(cleaned.items()):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in pts:
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    def ylab(v: float) -> str:
        if logy:
            return f"1e{v:.1f}"
        return f"{v:.3g}"

    label_w = max(len(ylab(y_lo)), len(ylab(y_hi)), len(ylabel))
    lines: list[str] = []
    if title:
        lines.append(title)
    if ylabel:
        lines.append(f"{ylabel:>{label_w}}")
    for r, row in enumerate(grid):
        if r == 0:
            left = ylab(y_hi)
        elif r == height - 1:
            left = ylab(y_lo)
        else:
            left = ""
        lines.append(f"{left:>{label_w}} |{''.join(row)}")
    lines.append(f"{'':>{label_w}} +{'-' * width}")
    x_axis = f"{ylab(x_lo) if not logy else f'{x_lo:.3g}'}"
    x_hi_s = f"{x_hi:.3g}"
    pad = width - len(x_axis) - len(x_hi_s)
    lines.append(f"{'':>{label_w}}  {x_axis}{' ' * max(1, pad)}{x_hi_s}")
    if xlabel:
        lines.append(f"{'':>{label_w}}  {xlabel:^{width}}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {label}" for i, label in enumerate(cleaned)
    )
    lines.append(f"{'':>{label_w}}  {legend}")
    return "\n".join(lines)
