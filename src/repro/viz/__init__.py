"""Terminal visualization helpers.

Every benchmark and experiment in this repo reports *shapes* — loss curves,
stability boundaries, per-stage memory profiles — and the paper presents
them as figures.  This package renders those shapes directly in the
terminal (no display or plotting dependency is available offline), so the
CLI and examples can show a figure-shaped artifact next to the numbers.

All functions are pure: they take data, return a ``str``, and never print.
"""

from repro.viz.bars import bar_chart, sparkline
from repro.viz.heatmap import heatmap
from repro.viz.plot import line_plot
from repro.viz.table import format_table

__all__ = [
    "bar_chart",
    "format_table",
    "heatmap",
    "line_plot",
    "sparkline",
]
