"""Horizontal bar charts and sparklines.

Bar charts back the per-stage memory profiles (Figure 6) and the
throughput/memory comparisons (Figure 2's bar-like panels); sparklines give
one-line loss-curve summaries in CLI table rows.
"""

from __future__ import annotations

import math
from typing import Sequence

SPARK_RAMP = ".:-=+*#%@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str = "",
    fmt: str = ".3g",
    fill: str = "#",
) -> str:
    """Render labelled values as horizontal bars scaled to ``width``.

    Negative values are clamped to zero-length bars (all quantities we chart
    — memory, throughput, delays — are non-negative by construction).
    """
    if len(labels) != len(values):
        raise ValueError(f"labels/values length mismatch: {len(labels)} vs {len(values)}")
    if width < 1:
        raise ValueError("width must be positive")
    if not labels:
        return title or ""

    vals = [float(v) for v in values]
    if any(not math.isfinite(v) for v in vals):
        raise ValueError("bar_chart requires finite values")
    peak = max(max(vals), 0.0)
    label_w = max(len(s) for s in labels)
    val_strs = [format(v, fmt) for v in vals]
    val_w = max(len(s) for s in val_strs)

    lines = [title] if title else []
    for label, v, vs in zip(labels, vals, val_strs):
        n = 0 if peak == 0 else round(max(v, 0.0) / peak * width)
        lines.append(f"{label:>{label_w}} |{fill * n:<{width}} {vs:>{val_w}}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], ramp: str = SPARK_RAMP) -> str:
    """Compress a series into one character per point (NaN/inf -> ``!``).

    Useful as a loss-curve thumbnail inside a table row; a trailing run of
    ``!`` is the signature of a diverged run.
    """
    if len(ramp) < 2:
        raise ValueError("ramp must have at least 2 characters")
    vals = [float(v) for v in values]
    finite = [v for v in vals if math.isfinite(v)]
    if not vals:
        return ""
    if not finite:
        return "!" * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo

    def cell(v: float) -> str:
        if not math.isfinite(v):
            return "!"
        t = 0.5 if span == 0 else (v - lo) / span
        return ramp[min(int(t * len(ramp)), len(ramp) - 1)]

    return "".join(cell(v) for v in vals)
