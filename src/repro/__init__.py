"""repro — a full reproduction of *PipeMare: Asynchronous Pipeline Parallel
DNN Training* (Yang et al., MLSYS 2021).

The package is organised as:

* :mod:`repro.nn` — numpy layer framework with explicit forward/backward so
  different weight versions can be used in the two passes.
* :mod:`repro.models` — MLP / ResNet / Transformer / linear-regression zoo.
* :mod:`repro.optim` — SGD(+momentum), Adam(W), LR schedulers.
* :mod:`repro.pipeline` — stage partitioning, delay profiles, weight-version
  store, the GPipe/PipeDream/PipeMare executors, and the analytic
  throughput/memory cost models.
* :mod:`repro.core` — the paper's contribution: T1 learning-rate
  rescheduling, T2 discrepancy correction, T3 synchronous warmup.
* :mod:`repro.theory` — companion matrices, characteristic polynomials and
  stability analysis (Lemmas 1–3, Appendix B/D).
* :mod:`repro.data`, :mod:`repro.metrics`, :mod:`repro.train`,
  :mod:`repro.hogwild`, :mod:`repro.experiments`.
"""

from repro._version import __version__

__all__ = ["__version__"]
