"""Classification accuracy."""

from __future__ import annotations

import numpy as np


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label, in percent
    (the paper reports test accuracy as e.g. 95.0)."""
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {logits.shape}")
    if len(logits) != len(labels):
        raise ValueError("logits and labels disagree on length")
    if len(labels) == 0:
        raise ValueError("empty evaluation set")
    pred = logits.argmax(axis=1)
    return float((pred == labels).mean() * 100.0)
