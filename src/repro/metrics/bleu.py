"""BLEU (Papineni et al., 2002) with add-one smoothing for higher-order
n-grams (Lin & Och smoothing-1), the standard choice for short synthetic
corpora.  Scores are on the 0–100 scale the paper reports (IWSLT14 34.5,
WMT17 27.8)."""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence


def _ngrams(tokens: Sequence[int], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def _modified_precision(
    candidate: Sequence[int], reference: Sequence[int], n: int
) -> tuple[int, int]:
    """(clipped matches, total candidate n-grams)."""
    cand = _ngrams(candidate, n)
    ref = _ngrams(reference, n)
    matches = sum(min(count, ref[gram]) for gram, count in cand.items())
    total = max(sum(cand.values()), 0)
    return matches, total


def corpus_bleu(
    candidates: Sequence[Sequence[int]],
    references: Sequence[Sequence[int]],
    max_n: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus-level BLEU-``max_n`` with brevity penalty.

    ``candidates[i]`` is scored against the single reference
    ``references[i]`` (our synthetic tasks have exact references).
    """
    if len(candidates) != len(references):
        raise ValueError("candidates and references disagree on length")
    if not candidates:
        raise ValueError("empty corpus")
    if max_n < 1:
        raise ValueError(f"max_n must be >= 1, got {max_n}")

    matches = [0] * max_n
    totals = [0] * max_n
    cand_len = 0
    ref_len = 0
    for cand, ref in zip(candidates, references):
        cand_len += len(cand)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            m, t = _modified_precision(cand, ref, n)
            matches[n - 1] += m
            totals[n - 1] += t

    if cand_len == 0:
        return 0.0

    log_precisions = []
    for n in range(max_n):
        m, t = matches[n], totals[n]
        if smooth and n > 0:  # add-one smoothing above unigrams
            m, t = m + 1, t + 1
        if t == 0:
            return 0.0
        if m == 0:
            return 0.0
        log_precisions.append(math.log(m / t))

    geo_mean = math.exp(sum(log_precisions) / max_n)
    bp = 1.0 if cand_len > ref_len else math.exp(1.0 - ref_len / max(cand_len, 1))
    return 100.0 * bp * geo_mean


def sentence_bleu(
    candidate: Sequence[int], reference: Sequence[int], max_n: int = 4, smooth: bool = True
) -> float:
    """Single-sentence BLEU."""
    return corpus_bleu([candidate], [reference], max_n=max_n, smooth=smooth)
