"""Time-to-accuracy bookkeeping (the Table 2/3 metrics).

The paper measures: best metric over training, a target metric (best across
methods minus 1.0 accuracy point / 0.4 BLEU), epochs-to-target, and
time-to-target = Σ per-epoch hardware times until the target epoch, where
epoch time comes from the analytic throughput model.
"""

from __future__ import annotations

import math


class MetricTracker:
    """Records (epoch, metric, epoch_time) triples for one training run."""

    def __init__(self, mode: str = "max"):
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.mode = mode
        self.epochs: list[int] = []
        self.values: list[float] = []
        self.epoch_times: list[float] = []

    def record(self, epoch: int, value: float, epoch_time: float = 1.0) -> None:
        if self.epochs and epoch <= self.epochs[-1]:
            raise ValueError("epochs must be recorded in increasing order")
        if epoch_time < 0:
            raise ValueError("epoch_time must be non-negative")
        self.epochs.append(int(epoch))
        self.values.append(float(value))
        self.epoch_times.append(float(epoch_time))

    def __len__(self) -> int:
        return len(self.epochs)

    def best(self) -> float:
        if not self.values:
            return math.nan
        return max(self.values) if self.mode == "max" else min(self.values)

    def _reaches(self, value: float, target: float) -> bool:
        return value >= target if self.mode == "max" else value <= target

    def epochs_to_target(self, target: float) -> float:
        """First recorded epoch count reaching the target (∞ if never).

        Returns epoch index + 1, i.e. "number of epochs run".
        """
        for epoch, value in zip(self.epochs, self.values):
            if self._reaches(value, target):
                return float(epoch + 1)
        return math.inf

    def time_to_target(self, target: float) -> float:
        """Cumulative hardware time up to and including the target epoch."""
        total = 0.0
        for value, t in zip(self.values, self.epoch_times):
            total += t
            if self._reaches(value, target):
                return total
        return math.inf

    def total_time(self) -> float:
        return float(sum(self.epoch_times))
