"""Evaluation metrics: top-1 accuracy, BLEU-4, and the time-to-accuracy
tracker the paper's Table 2/3 comparisons are built on."""

from repro.metrics.accuracy import top1_accuracy
from repro.metrics.bleu import corpus_bleu, sentence_bleu
from repro.metrics.tracker import MetricTracker

__all__ = ["top1_accuracy", "corpus_bleu", "sentence_bleu", "MetricTracker"]
