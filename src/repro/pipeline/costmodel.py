"""Analytic hardware cost models — Table 1, Appendix A.1/A.3 — plus the
per-unit cost estimates feeding the balanced partitioner
(:class:`repro.pipeline.partition.Partitioner`).

The paper estimates throughput analytically rather than on hardware ("The
execution throughput is estimated using the throughput model in Section 2",
§4.1); this module reproduces those estimates:

* normalized throughput (PipeDream/PipeMare 1.0; GPipe ``N/(N+P−1)``, and
  the finer Appendix A.3 latency model giving GPipe ≤ 0.3× under equal
  activation-memory/compute budgets);
* weight + optimizer memory, including PipeDream's ``W·P/N`` weight stash
  and T2's one-weight-copy velocity buffer (footnote 2: +33% SGD / +25%
  Adam);
* time-to-accuracy = epochs-to-target / throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.delays import Method

# Optimizer-state accounting of footnote 2: SGD keeps {master weight,
# gradient, momentum} = 3 weight copies; Adam keeps {master weight,
# gradient, first moment, second moment} = 4.
OPTIMIZER_WEIGHT_COPIES = {"sgd": 3.0, "adam": 4.0, "adamw": 4.0}


def tau_fwd(num_stages: int, stage_1indexed: int, num_microbatches: int) -> float:
    """Table 1 forward delay ``(2(P−i)+1)/N`` for 1-indexed stage i."""
    if not 1 <= stage_1indexed <= num_stages:
        raise ValueError(f"stage must be in [1, {num_stages}], got {stage_1indexed}")
    return (2.0 * (num_stages - stage_1indexed) + 1.0) / num_microbatches


def normalized_throughput(method: Method | str, num_stages: int, num_microbatches: int) -> float:
    """Table 1: 1.0 for the bubble-free methods; ``N/(N+P−1)`` for GPipe."""
    method = Method(method)
    if method in (Method.PIPEDREAM, Method.PIPEMARE):
        return 1.0
    n, p = num_microbatches, num_stages
    return n / (n + p - 1)


def gpipe_relative_throughput(alpha: float, recompute: bool = False) -> float:
    """Appendix A.3 latency model: throughput of GPipe relative to PipeMare
    when GPipe's microbatch is ``α×`` PipeMare's (same activation-memory and
    FLOP budgets, so ``N_GP = P/α``).

    Per-stage per-microbatch latencies (in PipeMare stage-slots):
    ``l_fwd = max(α/3, 1)``, ``l_bkwd = max(2α/3, 1)`` (with recompute:
    ``α/4`` and ``3α/4``).  A minibatch of ``P·M_PM`` samples costs
    ``(l_fwd+l_bkwd)(N_GP+P)`` versus PipeMare's ``P`` slots.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if recompute:
        l_fwd = max(alpha / 4.0, 1.0)
        l_bkwd = max(3.0 * alpha / 4.0, 1.0)
    else:
        l_fwd = max(alpha / 3.0, 1.0)
        l_bkwd = max(2.0 * alpha / 3.0, 1.0)
    latency_per_stageful = (l_fwd + l_bkwd) * (1.0 / alpha + 1.0)
    return 1.0 / latency_per_stageful


def optimal_gpipe_throughput(recompute: bool = False) -> tuple[float, float]:
    """Maximise :func:`gpipe_relative_throughput` over α.

    Returns ``(throughput, alpha_star)``; the paper derives 0.30 at
    ``α = √(3/2)`` without recompute and 0.29 with recompute.
    """
    alphas = np.geomspace(0.05, 20.0, 20001)
    vals = np.array([gpipe_relative_throughput(a, recompute) for a in alphas])
    k = int(np.argmax(vals))
    return float(vals[k]), float(alphas[k])


def method_throughput(
    method: Method | str,
    num_stages: int,
    num_microbatches: int,
    warmup_epochs: float = 0.0,
    total_epochs: float | None = None,
    gpipe_model: str = "appendix",
) -> float:
    """Throughput used for time-to-accuracy.

    ``gpipe_model="appendix"`` uses the 0.3× figure of Appendix A.3 (what
    Table 2 uses); ``"table1"`` uses ``N/(N+P−1)``.  PipeMare with T3 warmup
    is amortized over the run.
    """
    method = Method(method)
    if method is Method.GPIPE:
        if gpipe_model == "appendix":
            return optimal_gpipe_throughput()[0]
        if gpipe_model == "table1":
            return normalized_throughput(method, num_stages, num_microbatches)
        raise ValueError(f"unknown gpipe_model {gpipe_model!r}")
    base = 1.0
    if warmup_epochs > 0:
        if total_epochs is None or total_epochs <= 0:
            raise ValueError("warmup amortization needs total_epochs")
        sync = optimal_gpipe_throughput()[0]
        time = warmup_epochs / sync + (total_epochs - warmup_epochs) / base
        return total_epochs / time
    return base


def weight_memory(method: Method | str, weight_elements: int, num_stages: int, num_microbatches: int) -> float:
    """Table 1 weights memory: ``W`` for GPipe/PipeMare; ``W·P/N`` of stash
    on top of ``W`` for PipeDream (each stage keeps ``τ_fwd,i`` extra copies
    of its own slice; summed over stages this is ``W·P/N``)."""
    method = Method(method)
    w = float(weight_elements)
    if method is Method.PIPEDREAM:
        return w + w * num_stages / num_microbatches
    return w


def weight_optimizer_memory(
    method: Method | str,
    weight_elements: int,
    num_stages: int,
    num_microbatches: int,
    optimizer: str = "sgd",
    t2: bool = False,
) -> float:
    """Weight + optimizer memory in scalar elements (the Table 2 / Figure 2
    "Weight + Opt." axis)."""
    optimizer = optimizer.lower()
    if optimizer not in OPTIMIZER_WEIGHT_COPIES:
        raise ValueError(f"unknown optimizer {optimizer!r}")
    method = Method(method)
    w = float(weight_elements)
    total = OPTIMIZER_WEIGHT_COPIES[optimizer] * w
    if method is Method.PIPEDREAM:
        total += w * num_stages / num_microbatches  # weight stashing
    if t2 and method is Method.PIPEMARE:
        total += w  # the δ velocity buffer
    return total


def memory_multiplier(
    method: Method | str,
    num_stages: int,
    num_microbatches: int,
    optimizer: str = "sgd",
    t2: bool = False,
) -> float:
    """Memory relative to the synchronous GPipe baseline (Table 2 column)."""
    base = weight_optimizer_memory(Method.GPIPE, 1, num_stages, num_microbatches, optimizer)
    ours = weight_optimizer_memory(method, 1, num_stages, num_microbatches, optimizer, t2)
    return ours / base


def time_to_accuracy(epochs_to_target: float, throughput: float) -> float:
    """Estimated time units: epochs / throughput (∞ if target unreached)."""
    if epochs_to_target == float("inf") or np.isnan(epochs_to_target):
        return float("inf")
    if throughput <= 0:
        raise ValueError("throughput must be positive")
    return epochs_to_target / throughput


# -- per-unit partitioning costs ----------------------------------------------
#
# The balanced partitioner needs a relative cost per weight *unit* (module
# prefix — the paper's §4.1 partition atom).  Two estimators:
#
# * analytic — flops/bytes from parameter shapes and module types.  A dense
#   weight costs ~2 MACs per element per token; an embedding is a gather, so
#   its cost scales with the row width, never the vocabulary — which is
#   exactly why even-by-unit-count splitting (which would charge a 32k-vocab
#   table like 32k dense rows) mis-balances embedding-heavy models.
# * profiled — time each stage-graph element's forward on a sample batch and
#   spread the measured seconds over the element's units in proportion to
#   the analytic estimate.  This captures what shapes alone cannot (spatial
#   extents of convs, cache effects); it runs once on the driver, and only
#   the resulting PartitionPlan (plain indices) crosses process boundaries.

#: Cost of touching one parameter byte, in flop-equivalents — folds memory
#: traffic into the scalar the solver balances (weights are re-read every
#: microbatch on every backend).
BYTE_FLOP_EQUIV = 0.25

#: np.float64 parameter storage.
_PARAM_BYTES = 8


@dataclass(frozen=True)
class UnitCost:
    """Analytic cost estimate for one weight unit."""

    name: str
    elements: int
    flops: float
    bytes: float

    @property
    def cost(self) -> float:
        """The scalar the balanced-partition solver minimizes the max of."""
        return self.flops + BYTE_FLOP_EQUIV * self.bytes


def _named_modules(model, prefix: str = ""):
    yield prefix.rstrip("."), model
    for name, child in model._modules.items():
        yield from _named_modules(child, f"{prefix}{name}.")


def _unit_estimate(name: str, params, module) -> UnitCost:
    """Flops/bytes for one unit, from its owning module's type and shapes."""
    from repro.nn.embedding import Embedding

    elements = sum(p.size for p in params)
    if isinstance(module, Embedding):
        # Gather + scatter-add: work and traffic scale with the embedding
        # width (rows touched per token), not the table size.
        width = params[0].shape[-1]
        flops = 2.0 * width
        bytes_ = float(width * _PARAM_BYTES)
    else:
        # Matmul-like default (Linear, Conv, attention projections, norms):
        # ~2 MACs per weight element per token, weights fully re-read.
        flops = 2.0 * elements
        bytes_ = float(elements * _PARAM_BYTES)
    return UnitCost(name=name, elements=elements, flops=flops, bytes=bytes_)


def analytic_unit_costs(model) -> list["UnitCost"]:
    """Per-unit analytic costs, in the model's unit (registration) order."""
    from repro.pipeline.partition import _units_of

    module_of_prefix = {name: m for name, m in _named_modules(model)}
    out = []
    for prefix, named in _units_of(model):
        params = [p for _, p in named]
        module = module_of_prefix.get(prefix)
        out.append(_unit_estimate(prefix, params, module))
    return out


def profile_unit_costs(
    model,
    sample_inputs: tuple,
    granularity: str = "layer",
    repeats: int = 3,
) -> list[float]:
    """Micro-profile the model's stage-graph elements and return per-unit
    cost estimates (seconds, distributed over each element's units in
    proportion to their analytic cost).

    The pass runs on a **pickled throwaway copy** of the model in eval
    mode, so forward caches, RNG streams and running statistics of the live
    model are untouched.  Each element's forward is timed ``repeats`` times
    (min taken); backward is not timed — it tracks forward cost closely
    enough for balancing, and timing it would require driving the full loss
    machinery.
    """
    import pickle
    import time

    from repro.pipeline.partition import _units_of
    from repro.pipeline.stage_compute import flatten_graph

    if not isinstance(sample_inputs, (tuple, list)):
        sample_inputs = (sample_inputs,)
    copy = pickle.loads(pickle.dumps(model))
    copy.eval()
    graph = flatten_graph(copy, granularity=granularity)
    if graph.num_external != len(sample_inputs):
        raise ValueError(
            f"model consumes {graph.num_external} external inputs, got "
            f"{len(sample_inputs)} sample arrays"
        )

    units = _units_of(copy)
    unit_of_param = {}
    for uid, (_, named) in enumerate(units):
        for _, p in named:
            unit_of_param[id(p)] = uid
    analytic = [u.cost for u in analytic_unit_costs(copy)]

    costs = [0.0] * len(units)
    outputs: dict[str, object] = {}
    for node in graph.nodes:
        ins = [
            sample_inputs[int(i[4:])] if i.startswith("ext:") else outputs[i]
            for i in node.inputs
        ]
        x = None
        for e, element in enumerate(node.elements):
            args = tuple(ins) if e == 0 else (x,)
            best = float("inf")
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                x = element(*args)
                best = min(best, time.perf_counter() - t0)
            uids = sorted({
                unit_of_param[id(p)]
                for p in element.parameters()
                if id(p) in unit_of_param
            })
            if uids:
                weight_total = sum(analytic[u] for u in uids)
                for u in uids:
                    share = analytic[u] / weight_total if weight_total > 0 else 1.0 / len(uids)
                    costs[u] += best * share
        outputs[node.name] = x

    # A unit no element touched (cannot happen for a well-formed graph, but
    # keep the solver away from zero-cost degeneracies regardless).
    floor = max(costs) * 1e-6 if max(costs) > 0 else 1.0
    return [c if c > 0 else floor for c in costs]
