"""The per-minibatch step plan shared by both pipeline backends.

:class:`StepPlan` owns every decision the paper's semantics pin down for one
optimizer step — which weight version each stage reads at each forward /
backward / recompute slot, how microbatch gradients are weighted and
accumulated, and everything that happens at the optimizer-step boundary
(grad scaling, clipping, T1 rescheduling, the step itself, pushing the new
version, T2 velocity updates).

Both the sequential simulator (:class:`repro.pipeline.PipelineExecutor`) and
the concurrent runtime (:class:`repro.pipeline.AsyncPipelineRuntime`)
delegate to one ``StepPlan``, which is what makes their trajectories
bit-for-bit identical: the backends differ only in *when* (wall-clock) each
(stage, microbatch) work item runs, never in *what* it computes.

All weight lookups resolve against the :class:`WeightVersionStore` rather
than live ``Parameter.data`` so the answers are independent of which version
the parameters currently point at — a hard requirement once stages execute
concurrently on worker threads.

The version *arithmetic* (delay slot → store version → arrays) lives in the
:class:`WeightResolver` base so it can run away from the driver: process
workers build a :class:`WorkerPlanMirror` — the same resolver over a
:class:`~repro.pipeline.weight_store.SharedWeightMirror` instead of the
in-process store — from a small picklable :class:`ResolverSpec`, and resolve
the exact same slots the driver's :class:`StepPlan` would.  The resolver is
stage-indexed, not worker-indexed, so a worker may resolve *any* stage's
slots — which is how borrowed tied weights (a projection reading the
embedding stage's version) stay exact on whichever worker uses them.

:class:`PipelineBackend` is the shared surface of all backends.  Besides
plan delegation and the microbatch plumbing hooks it drives two module
protocols that keep weight-tied and stochastic models bit-for-bit equal
across backends: deferred tied gradients (``enable_deferred_grads`` /
``deferred_grads`` — buffers folded into ``Parameter.grad`` once per
minibatch, in a fixed order) and counter-based dropout slots
(``_set_dropout_slot`` — see :mod:`repro.nn.dropout`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.core import DiscrepancyCorrector, LRReschedule, PipeMareConfig, WarmupSchedule
from repro.nn.dropout import Dropout
from repro.nn.module import Parameter
from repro.optim import Optimizer, clip_grad_norm
from repro.optim.schedulers import LRSchedule
from repro.pipeline.delays import DelayProfile, Method, _ceil_div
from repro.pipeline.partition import Stage, check_replica_count
from repro.pipeline.recompute import recompute_delay_slots, segment_heads
from repro.pipeline.weight_store import SharedWeightMirror, WeightVersionStore


class WeightResolver:
    """Delay-slot → weight-array resolution, independent of where the
    version payloads live.

    Subclasses provide: ``profile`` (:class:`DelayProfile`), ``method``,
    ``store`` (anything with ``weights(stage, version)``,
    ``latest_version`` and ``wait_version`` — the in-process
    :class:`WeightVersionStore` or a worker's
    :class:`~repro.pipeline.weight_store.SharedWeightMirror`),
    ``corrector`` (``None`` or an object with ``correct(stage, weights)``
    and ``velocity[stage]``), ``recompute_segment`` / ``_recompute_lag`` /
    ``_segment_heads``, and the minibatch counter ``t``.

    Every lookup takes the minibatch index ``t`` explicitly so a resolver
    can serve a step the driver has not finalized yet: with the overlapped
    optimizer boundary, workers execute minibatch t+1 while the resolver's
    own ``t`` attribute (and the store's latest version) still describe
    minibatch t.
    """

    profile: DelayProfile
    method: Method
    corrector = None
    recompute_segment: int | None = None
    t: int = 0

    # -- step-level predicates -----------------------------------------------
    @property
    def num_stages(self) -> int:
        return self.profile.num_stages

    @property
    def num_microbatches(self) -> int:
        return self.profile.num_microbatches

    def recompute_active(self, sync: bool) -> bool:
        return self.recompute_segment is not None and not sync

    # -- weight-version resolution (store-based, execution-order free) -------
    def forward_weights(self, stage: int, t: int, j: int, sync: bool) -> list[np.ndarray]:
        """Arrays stage ``stage`` must read in the forward of microbatch j
        of minibatch t."""
        if sync:
            return self.store.weights(stage, t)
        return self.store.weights(stage, self.profile.fwd_version(stage, t, j))

    def backward_weights(self, stage: int, t: int, j: int, sync: bool) -> list[np.ndarray]:
        """Arrays read in the backward pass: the stashed forward version
        (PipeDream), the current version (GPipe, PipeMare), or the
        T2-corrected extrapolation ``w − Δτ·δ`` (PipeMare + T2).

        "Current" weights during minibatch t hold version t (version t+1 is
        only pushed at t's own boundary), so the version is addressed
        directly instead of through ``latest_version`` — with the
        overlapped boundary the store's latest may already be ahead of a
        step still draining.
        """
        if not sync and self.method is Method.PIPEDREAM:
            return self.store.weights(stage, self.profile.bkwd_version(stage, t, j))
        latest = self.store.weights(stage, t)
        if sync or self.corrector is None:
            return latest
        return self.corrector.correct(stage, latest)

    def _recompute_version(self, stage: int, t: int, j: int) -> int:
        """Weight version used to regenerate stage activations: the version
        resident ``lag`` slots before the backward slot; segment heads reuse
        the original forward version (their input was cached, not
        recomputed)."""
        if stage in self._segment_heads:
            return self.profile.fwd_version(stage, t, j)
        n = self.profile.num_microbatches
        slot = t * n + j - int(self._recompute_lag[stage])
        return max(0, _ceil_div(slot - n + 1, n))

    def recompute_weights(self, stage: int, t: int, j: int) -> list[np.ndarray]:
        """Arrays used to regenerate activations before backward (Appendix
        D's three-delay model), with the T2 extrapolation toward ``u_fwd``
        applied to non-head stages (App. D.1)."""
        weights = self.store.weights(stage, self._recompute_version(stage, t, j))
        if self.corrector is not None and stage not in self._segment_heads:
            n = self.profile.num_microbatches
            tau_r = self._recompute_lag[stage] / n
            dtau = max(self.profile.tau_fwd(stage) - tau_r, 0.0)
            weights = [
                w - dtau * v for w, v in zip(weights, self.corrector.velocity[stage])
            ]
        return weights

    # -- per-wave version gating ----------------------------------------------
    def required_version(self, op: str, stage: int, t: int, j: int, sync: bool) -> int:
        """Minimum published store version the (op, stage, microbatch) wave
        of minibatch t needs before it may execute — the gate the overlapped
        boundary is built on.

        * Synchronous steps read the current version (t) everywhere.
        * Backward waves require version t even when their weight read is
          older (PipeDream's stash): version t's publication marks the
          completion of boundary t−1 — gradient accumulators zeroed, T2
          velocities advanced — i.e. minibatch t's gradient epoch is open.
        * T2 recompute waves on non-head stages extrapolate with the
          boundary-(t−1) velocity, so they gate on version t as well even
          though the raw weight version they read is older.
        """
        if sync or op == "B":
            return t
        if op == "F":
            return self.profile.fwd_version(stage, t, j)
        # op == "R"
        if self.corrector is not None and stage not in self._segment_heads:
            return t
        return self._recompute_version(stage, t, j)

    def wave_gate_version(
        self, op: str, stages: list[int], t: int, j: int, sync: bool
    ) -> int:
        """Gate version for a worker wave touching ``stages`` (owned stages
        plus borrowed tied-weight stages): the max of each stage's
        requirement."""
        return max(self.required_version(op, s, t, j, sync) for s in stages)

    def wait_version(self, version: int, timeout: float) -> None:
        """Block until ``version`` is published (no-op when it already is);
        raises :class:`~repro.pipeline.transport.TransportTimeout` on
        expiry.  Both store kinds implement the wait."""
        self.store.wait_version(version, timeout)

    def wave_programs(
        self,
        programs: list[list[tuple[str, int]]],
        read_stages: list[list[int]],
        fwd_peers: list[list[int]],
        bwd_peers: list[list[int]],
        sync: bool,
        fuse: bool = True,
    ):
        """Compile per-worker wave schedules into fused command blocks (see
        :mod:`repro.pipeline.waveprogram`).  Defined on the resolver base so
        the driver's :class:`StepPlan` and a process/socket worker's
        :class:`WorkerPlanMirror` compile byte-identical programs from the
        same store-free version arithmetic."""
        from repro.pipeline.waveprogram import compile_wave_programs

        return compile_wave_programs(
            self, programs, read_stages, fwd_peers, bwd_peers, sync, fuse
        )

    def _init_recompute(self, recompute_segment: int | None) -> None:
        self.recompute_segment = recompute_segment
        if recompute_segment is not None:
            self._recompute_lag = recompute_delay_slots(self.num_stages, recompute_segment)
            self._segment_heads = set(segment_heads(self.num_stages, recompute_segment))
        else:
            self._recompute_lag = None
            self._segment_heads = set()


class StepPlan(WeightResolver):
    """Delay-slot resolution + optimizer-step boundary for one pipeline.

    Parameters mirror :class:`repro.pipeline.PipelineExecutor`; ``params``
    is the full flat parameter list (model order) used for gradient scaling
    and clipping.
    """

    def __init__(
        self,
        params: list[Parameter],
        optimizer: Optimizer,
        stages: list[Stage],
        num_microbatches: int,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        recompute_segment: int | None = None,
        partition_plan=None,
        inflight_depth: int = 1,
        num_replicas: int = 1,
    ):
        check_replica_count(num_replicas)
        self.params = params
        self.optimizer = optimizer
        self.stages = stages
        self.method = Method(method)
        # Hybrid data × pipeline parallelism: R pipeline replicas share this
        # one plan (one version clock, one optimizer, one weight store), and
        # the boundary averages their folded gradients — so the per-step
        # normalization below divides by n·R instead of n.  R=1 is the
        # single-pipeline plan, bit for bit.
        self.num_replicas = num_replicas
        # The PartitionPlan behind ``stages`` (None for ad-hoc partitions).
        # The delay profile below keys off the *stage* count it prescribes —
        # a sublayer-granular plan deepens the pipe, so T1/T2/T3 see the
        # correspondingly larger τ while worker counts remain a separate,
        # coalescible knob (see stage_compute.build_worker_graph).
        self.partition_plan = partition_plan
        self.profile = DelayProfile(len(stages), num_microbatches, self.method)
        if inflight_depth < 1:
            raise ValueError(f"inflight_depth must be >= 1, got {inflight_depth}")
        # Each extra in-flight step pushes the *newest* version one further
        # ahead of the oldest slot a draining step still resolves, so the
        # version window deepens accordingly.  Depth 1 reproduces the
        # original ``history_needed()`` window exactly.
        self.history = self.profile.history_needed() + (inflight_depth - 1)
        self.store = WeightVersionStore(stages, self.history)
        self.base_schedule = base_schedule
        self.grad_clip = grad_clip
        self.t = 0  # minibatch (optimizer-step) counter

        if len(optimizer.groups) != len(stages):
            raise ValueError(
                f"optimizer must have one group per stage "
                f"({len(optimizer.groups)} groups, {len(stages)} stages)"
            )

        cfg = pipemare if (pipemare is not None and self.method is Method.PIPEMARE) else None
        self.config = cfg
        tau_f = self.profile.tau_fwd_all()
        tau_b = self.profile.tau_bkwd_all()
        self.reschedule = (
            LRReschedule(tau_f, cfg.anneal_steps) if cfg and cfg.use_t1 else None
        )
        self.corrector = (
            DiscrepancyCorrector([s.params for s in stages], tau_f, tau_b, cfg.decay)
            if cfg and cfg.use_t2
            else None
        )
        self.warmup = WarmupSchedule(cfg.warmup_steps if cfg and cfg.use_t3 else 0)
        self._init_recompute(recompute_segment)

    def is_sync_step(self) -> bool:
        """True while T3's synchronous (GPipe-style) warmup window is active
        or the method itself is GPipe."""
        return self.is_sync_step_at(self.t)

    def is_sync_step_at(self, t: int) -> bool:
        """Sync predicate for an explicit minibatch index — needed when a
        step is issued while the previous boundary is still pending (the
        plan's own ``t`` then lags the step being admitted)."""
        if self.method is Method.GPIPE:
            return True
        return self.warmup.is_synchronous(t)

    def resolver_spec(self) -> "ResolverSpec":
        """The picklable recipe a process worker uses to rebuild this plan's
        version arithmetic against the shared-memory mirror."""
        return ResolverSpec(
            num_stages=self.num_stages,
            num_microbatches=self.num_microbatches,
            method=self.method.value,
            recompute_segment=self.recompute_segment,
            use_t2=self.corrector is not None,
            history=self.history,
        )

    # -- gradient weighting ---------------------------------------------------
    def grad_scale(self, microbatch_len: int, total: int) -> float:
        """Loss-gradient multiplier giving the exact minibatch mean even for
        ragged microbatches (combined with the final ``1/N`` in
        :meth:`finish_step`)."""
        return microbatch_len * self.profile.num_microbatches / total

    def set_num_replicas(self, m: int) -> None:
        """Renormalize the boundary for elastic replica degradation or
        rejoin: subsequent boundaries divide the folded gradient by
        ``n·m`` instead of ``n·R``.  Only legal between optimizer
        boundaries — the runtime calls this from its failure-recovery
        path (after every in-flight boundary has either run or been
        aborted) and from :meth:`~AsyncPipelineRuntime.rejoin_replica`
        (at a synced boundary), never mid-step."""
        if m < 1:
            raise ValueError(f"active replica count must be >= 1, got {m}")
        self.num_replicas = int(m)

    # -- optimizer-step boundary ----------------------------------------------
    def begin_step(self) -> None:
        self.optimizer.zero_grad()

    def finish_step(self, sync: bool) -> None:
        """Everything that happens once all N microbatch gradients are in:
        restore latest weights, normalize/clip grads, apply LR schedules
        (T1 only on async steps), step, push version t+1, update T2."""
        self.store.load_latest()

        n = self.profile.num_microbatches * self.num_replicas
        for p in self.params:
            p.grad *= 1.0 / n
        if self.grad_clip is not None:
            clip_grad_norm(self.params, self.grad_clip)

        if self.base_schedule is not None:
            self.optimizer.lr = self.base_schedule(self.t)
        if self.reschedule is not None and not sync:
            self.reschedule.apply(self.optimizer, self.t)
        else:
            for group in self.optimizer.groups:
                group.lr_scale = 1.0

        old_weights = [s.current() for s in self.stages] if self.corrector else None
        self.optimizer.step()
        self.store.push_current()
        if self.corrector is not None and old_weights is not None:
            self.corrector.update_all(old_weights)
        self.t += 1

    def finish_step_detached(self, sync: bool) -> None:
        """:meth:`finish_step` without ever touching live ``Parameter.data``
        — the overlapped-boundary variant.

        While this runs, worker threads of the *next* minibatch are already
        re-pointing the shared parameters at historical versions for their
        fill waves, so the boundary must read version t's weights straight
        from the store, compute the update into fresh arrays
        (:meth:`~repro.optim.Optimizer.step_detached`), and publish them —
        leaving the live parameter pointers to the workers.  Gradients are
        safe to consume: backward waves of the next step gate on version
        t+1, which this method publishes *last* (the release operation the
        gates observe).  Bit-for-bit identical to :meth:`finish_step`: same
        arrays in, same expressions, same optimizer state mutation — only
        where the result lands differs.
        """
        n = self.profile.num_microbatches * self.num_replicas
        for p in self.params:
            p.grad *= 1.0 / n
        if self.grad_clip is not None:
            clip_grad_norm(self.params, self.grad_clip)

        if self.base_schedule is not None:
            self.optimizer.lr = self.base_schedule(self.t)
        if self.reschedule is not None and not sync:
            self.reschedule.apply(self.optimizer, self.t)
        else:
            for group in self.optimizer.groups:
                group.lr_scale = 1.0

        v = self.store.latest_version
        old = [list(self.store.weights(s, v)) for s in range(self.num_stages)]
        new = self.optimizer.step_detached(old)
        if self.corrector is not None:
            self.corrector.update_all_arrays(old, new)
        # Open minibatch t+1's gradient epoch before the publish below
        # releases its gated backward waves.
        self.optimizer.zero_grad()
        self.store.push_arrays(new)
        self.t += 1

    def resolvable_versions(self) -> list[int]:
        """Store versions any wave of the *next* step can still resolve —
        what a republish (checkpoint restore) actually needs to push.  The
        oldest read of minibatch t is ``t − (history − 2)`` (the deepest
        forward/recompute delay slot), so the last resident version is dead
        weight on the wire; see :meth:`DelayProfile.history_needed`."""
        latest = self.store.latest_version
        oldest_needed = max(0, latest - (self.history - 2))
        return [v for v in self.store.resident_versions(0) if v >= oldest_needed]

    # -- accounting --------------------------------------------------------------
    def step_time(self) -> float:
        """Relative hardware time of the step about to run: 1.0 for the
        bubble-free methods, ``1/0.3`` for synchronous (GPipe-style) steps —
        the Appendix A.3 model used for time-to-accuracy."""
        return self.step_time_at(self.t)

    def step_time_at(self, t: int) -> float:
        """Like :meth:`step_time` for an explicit minibatch index (the next
        step to issue may be one ahead of ``self.t`` under the overlapped
        boundary)."""
        from repro.pipeline import costmodel

        if self.is_sync_step_at(t):
            return 1.0 / costmodel.optimal_gpipe_throughput()[0]
        return 1.0

    def extra_memory_elements(self) -> int:
        """Extra persistent memory beyond one weight copy (the simulator-
        resident T2 buffer; PipeDream's stash is accounted analytically)."""
        return self.corrector.memory_elements() if self.corrector else 0

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything mutable beyond the model itself: the minibatch
        counter, the per-stage weight-version window (delayed reads resume
        exactly), and the T2 velocity buffers.  The optimizer is checkpointed
        separately (:meth:`repro.optim.Optimizer.state_dict`)."""
        state = {"t": self.t, "store": self.store.state_dict()}
        if self.corrector is not None:
            state["corrector"] = self.corrector.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.  The plan must have been built
        with the same model partition and PipeMare configuration."""
        if ("corrector" in state) != (self.corrector is not None):
            raise ValueError(
                "checkpoint and executor disagree on T2 discrepancy "
                "correction (one has a corrector, the other does not)"
            )
        self.t = int(state["t"])
        self.store.load_state_dict(state["store"])
        if self.corrector is not None:
            self.corrector.load_state_dict(state["corrector"])


@dataclass
class PipelineReplica:
    """One extra pipeline replica: a pickle round-trip copy of the driver's
    ``(model, loss_fn)`` with stages rebuilt over the copy's parameters.

    The copy's *initial weights are irrelevant*: every pipeline wave loads
    the exact weight version the shared :class:`WeightVersionStore`
    prescribes before computing, so only the copy's gradient buffers (and
    its per-replica dropout streams / persistent state) carry information.
    """

    index: int
    model: object
    loss_fn: object
    stages: list[Stage]
    params: list[Parameter] = field(default_factory=list)
    counter_dropouts: list = field(default_factory=list)
    deferred_modules: list = field(default_factory=list)


def build_pipeline_replicas(model, loss_fn, stages: list[Stage], num_replicas: int) -> list[PipelineReplica]:
    """Replicas ``1 .. R-1`` for hybrid data × pipeline parallelism.

    Each replica is a pickle round-trip of ``(model, loss_fn)``; its stages
    are rebuilt positionally over the copy's flat parameter list (pickling
    preserves registration order, including tied-parameter dedup), so the
    copy partitions bit-identically to the driver.  Counter-based dropouts
    on the copy are re-keyed to the replica index, giving each replica an
    independent — but fully deterministic — mask stream.
    """
    primary = model.parameters()
    pos_of = {id(p): i for i, p in enumerate(primary)}
    replicas = []
    for r in range(1, num_replicas):
        copy_model, copy_loss = pickle.loads(pickle.dumps((model, loss_fn)))
        copy_params = copy_model.parameters()
        if len(copy_params) != len(primary):
            raise ValueError(
                f"replica copy has {len(copy_params)} parameters, "
                f"driver model has {len(primary)}"
            )
        copy_stages = [
            Stage(
                index=s.index,
                params=[copy_params[pos_of[id(p)]] for p in s.params],
                names=list(s.names),
            )
            for s in stages
        ]
        counter_dropouts = []
        deferred_modules = []
        for m in copy_model.modules():
            if hasattr(m, "deferred_grads"):
                deferred_modules.append(m)
            if isinstance(m, Dropout) and m.counter_based:
                m.replica = r
                counter_dropouts.append(m)
        for p in copy_params:
            p.zero_grad()
        replicas.append(
            PipelineReplica(
                index=r,
                model=copy_model,
                loss_fn=copy_loss,
                stages=copy_stages,
                params=copy_params,
                counter_dropouts=counter_dropouts,
                deferred_modules=deferred_modules,
            )
        )
    return replicas


class ReplicaPlan:
    """R pipeline replicas sharing one :class:`StepPlan` — hybrid data ×
    pipeline parallelism with one version clock.

    Replica 0 is the driver's live model; replicas ``1 .. R-1`` are
    :class:`PipelineReplica` copies.  All replicas read weight versions from
    the *same* store (so every replica sees the exact staleness the delay
    profile prescribes, and the gating arithmetic in
    :meth:`WeightResolver.required_version` is unchanged), and the optimizer
    steps once per minibatch on the average of all replica gradients.

    **Canonical fold order** (the bit-for-bit contract every backend obeys):
    replica 0's ``Parameter.grad`` accumulates its own microbatch gradients
    in microbatch order, then its deferred tied-gradient buffers; each copy
    replica accumulates the same way into its *own* gradient buffers; then
    :meth:`fold_replica_grads` adds the copies into replica 0 in ascending
    replica index.  Addition order is therefore a function of indices only —
    never of which replica finished first — so the fold is deterministic
    under any completion order.  The shared plan's boundary then divides by
    ``n·R`` (see :class:`StepPlan`), yielding the mean over all replicas'
    microbatch-mean gradients.
    """

    def __init__(self, plan: StepPlan, model, loss_fn):
        self.plan = plan
        self.num_replicas = plan.num_replicas
        self.replicas = build_pipeline_replicas(
            model, loss_fn, plan.stages, plan.num_replicas
        )

    def fold_replica_grads(self, active=None) -> None:
        """Fold every copy replica's accumulated gradients into the shared
        plan's parameters (replica 0), ascending replica index, and zero the
        copy buffers for the next step.  Callers fold each replica's
        deferred tied gradients into that replica's own buffers first.

        ``active`` (a set of replica indices, or None for all) restricts
        the fold to replicas that are still training — a degraded group
        must not fold a dropped replica's stale buffers (see
        :meth:`AsyncPipelineRuntime._maybe_degrade`).  Skipping indices
        preserves the canonical ascending order over the survivors, so a
        degraded fold is bit-identical to a from-scratch run at the
        reduced replica count with the same shard assignment."""
        for rep in self.replicas:
            if active is not None and rep.index not in active:
                continue
            for p0, pr in zip(self.plan.params, rep.params):
                p0.grad += pr.grad
                pr.grad[...] = 0.0


def split_views(arr, n: int) -> list:
    """Split ``arr`` into ``n`` view chunks along axis 0 with
    ``np.array_split`` semantics (first ``len(arr) % n`` chunks one
    longer).  ``np.array_split`` also returns views; this is just its
    division arithmetic inlined to plain basic slicing, shaving the
    wrapper overhead off the per-step hot path.  That every worker input
    is a window into the caller's minibatch — never a per-step copy — is
    pinned by the overlap suite's no-copy test."""
    size, extra = divmod(len(arr), n)
    out = []
    lo = 0
    for i in range(n):
        hi = lo + size + (1 if i < extra else 0)
        out.append(arr[lo:hi])
        lo = hi
    return out


@dataclass(frozen=True)
class ResolverSpec:
    """Everything a spawned worker needs to rebuild a :class:`StepPlan`'s
    version arithmetic — plain scalars only, so it pickles under any
    multiprocessing start method."""

    num_stages: int
    num_microbatches: int
    method: str
    recompute_segment: int | None
    use_t2: bool
    history: int


class _MirrorCorrector:
    """Worker-side stand-in for :class:`~repro.core.DiscrepancyCorrector`:
    the same ``w − Δτ·δ`` extrapolation, with the velocity EWMAs read from
    the shared mirror instead of process-local buffers.  Only the driver
    *updates* velocities (at the optimizer boundary); workers are pure
    readers."""

    class _Velocity:
        def __init__(self, mirror: SharedWeightMirror):
            self._mirror = mirror

        def __getitem__(self, stage: int) -> list[np.ndarray]:
            return self._mirror.velocity(stage)

    def __init__(self, mirror: SharedWeightMirror, dtau: np.ndarray):
        self.dtau = dtau
        self.velocity = self._Velocity(mirror)

    def correct(self, stage: int, weights: list[np.ndarray]) -> list[np.ndarray]:
        dtau = self.dtau[stage]
        if dtau <= 0:
            return list(weights)
        return [w - dtau * v for w, v in zip(weights, self.velocity[stage])]


class WorkerPlanMirror(WeightResolver):
    """The resolver a process worker executes against: identical arithmetic
    to the driver's :class:`StepPlan` (same base class), weights and T2
    velocities read from the :class:`SharedWeightMirror`.  ``t`` and the
    sync flag arrive with each step's command message."""

    def __init__(self, spec: ResolverSpec, mirror: SharedWeightMirror):
        self.method = Method(spec.method)
        self.profile = DelayProfile(spec.num_stages, spec.num_microbatches, self.method)
        self.store = mirror
        self.corrector = (
            _MirrorCorrector(
                mirror, self.profile.tau_fwd_all() - self.profile.tau_bkwd_all()
            )
            if spec.use_t2
            else None
        )
        self.t = 0
        self._init_recompute(spec.recompute_segment)


class PipelineBackend:
    """Shared surface of the two pipeline backends: plan delegation,
    microbatch plumbing hooks, accounting, and checkpointing.

    Subclasses (:class:`repro.pipeline.PipelineExecutor`,
    :class:`repro.pipeline.AsyncPipelineRuntime`) construct ``self.plan``
    and implement ``train_step``; multi-input models override the
    ``_split_minibatch`` / ``_forward`` / ``_num_samples`` hooks once and
    the override works against either backend."""

    def __init__(self, model, loss_fn, plan: StepPlan):
        self.model = model
        self.loss_fn = loss_fn
        self.plan = plan
        # Backend-driven module protocols, discovered once:
        # * deferred tied gradients (e.g. a tied output projection):
        #   *scoped* to each train step — enabled at step start, folded
        #   into Parameter.grad and disabled at the minibatch boundary, in
        #   the same order on every backend (bit-for-bit requirement).
        #   Outside a step the module behaves plainly, so gradcheck-style
        #   model.backward use keeps working on a backend-trained model;
        # * counter-based dropouts get their (step, microbatch) slot
        #   positioned before every microbatch forward.
        self._deferred_modules = []
        self._counter_dropouts = []
        for m in model.modules():
            if hasattr(m, "deferred_grads"):
                self._deferred_modules.append(m)
            if isinstance(m, Dropout) and m.counter_based:
                self._counter_dropouts.append(m)

    # -- stochastic-forward + tied-gradient hooks -----------------------------
    def _set_dropout_slot(self, j: int) -> None:
        """Position counter-mode dropout masks for microbatch ``j`` of the
        current optimizer step (see :mod:`repro.nn.dropout`)."""
        for m in self._counter_dropouts:
            m.set_slot(self.plan.t, j)

    def _begin_deferred_grads(self) -> None:
        """Enter deferred tied-gradient mode for this step, with clean
        buffers."""
        for m in self._deferred_modules:
            m.enable_deferred_grads()
            for _, buf in m.deferred_grads():
                buf.fill(0.0)

    def _fold_deferred_grads(self) -> None:
        """Fold deferred tied-gradient buffers into ``Parameter.grad`` once
        all microbatch gradients are in (before :meth:`StepPlan.finish_step`
        normalizes and clips), and leave deferred mode."""
        for m in self._deferred_modules:
            for p, buf in m.deferred_grads():
                p.grad += buf
            m.disable_deferred_grads()

    def _abort_deferred_grads(self) -> None:
        """Leave deferred mode without folding (the step died mid-way), so
        later plain ``model.backward`` use is not silently mis-routed."""
        for m in self._deferred_modules:
            m.disable_deferred_grads()

    # -- plan delegation ------------------------------------------------------
    @property
    def optimizer(self) -> Optimizer:
        return self.plan.optimizer

    @property
    def stages(self) -> list[Stage]:
        return self.plan.stages

    @property
    def method(self) -> Method:
        return self.plan.method

    @property
    def profile(self) -> DelayProfile:
        return self.plan.profile

    @property
    def store(self) -> WeightVersionStore:
        return self.plan.store

    @store.setter
    def store(self, value: WeightVersionStore) -> None:
        self.plan.store = value

    @property
    def config(self) -> PipeMareConfig | None:
        return self.plan.config

    @property
    def corrector(self):
        return self.plan.corrector

    @property
    def reschedule(self):
        return self.plan.reschedule

    @property
    def warmup(self) -> WarmupSchedule:
        return self.plan.warmup

    @property
    def base_schedule(self) -> LRSchedule | None:
        return self.plan.base_schedule

    @property
    def grad_clip(self) -> float | None:
        return self.plan.grad_clip

    @property
    def recompute_segment(self) -> int | None:
        return self.plan.recompute_segment

    @property
    def partition_plan(self):
        return self.plan.partition_plan

    @property
    def t(self) -> int:
        return self.plan.t

    @t.setter
    def t(self, value: int) -> None:
        self.plan.t = value

    # -- microbatch plumbing (overridable for multi-input models) -------------
    def _shard_minibatch(self, x, y, r: int) -> tuple[list, list]:
        """Split (x, y) into R per-replica shard *views* along axis 0 (no
        copies; :func:`split_views` semantics, so the assignment of samples
        to replicas is deterministic in the data order).  Each shard is then
        microbatched per replica via :meth:`_split_minibatch`."""
        return split_views(x, r), split_views(y, r)

    def _split_minibatch(self, x, y, n: int) -> tuple[list, list]:
        """Split (x, y) into N microbatch *views* along axis 0 (no
        copies; see :func:`split_views`)."""
        if len(x) < n:
            raise ValueError(f"minibatch of {len(x)} samples cannot form {n} microbatches")
        return split_views(x, n), split_views(y, n)

    def _forward(self, xj):
        return self._forward_model(self.model, xj)

    def _forward_model(self, model, xj):
        """Forward ``xj`` through an explicit model — the hook replica
        copies share with the live model, so a multi-input override (e.g.
        translation's tuple unpacking) applies to every replica."""
        return model(xj)

    def _num_samples(self, xj) -> int:
        return len(xj)

    # -- training ---------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        raise NotImplementedError

    # -- accounting --------------------------------------------------------------
    def step_time(self) -> float:
        return self.plan.step_time()

    def extra_memory_elements(self) -> int:
        return self.plan.extra_memory_elements()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        return self.plan.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.plan.load_state_dict(state)
