"""Delay profiles: which weight version each stage reads, per microbatch.

Table 1 gives the *average* delays in units of optimizer steps:

    =========== ======================= ==================
    method      τ_fwd,i                 τ_bkwd,i
    =========== ======================= ==================
    PipeDream   (2(P−i)+1)/N            (2(P−i)+1)/N
    GPipe       0                       0
    PipeMare    (2(P−i)+1)/N            0
    =========== ======================= ==================

The executor needs those *fractional* delays realised exactly at microbatch
granularity.  On a stage-local clock where the backward of microbatch j of
minibatch t lands at slot ``tN+j``, its forward happened ``2(P−i)+1`` slots
earlier and the stage's weights tick to version t′+1 after slot
``t′N+N−1``.  The integer version read at forward time is therefore

    ``v_fwd(i,t,j) = max(0, ceil((tN + j − 2(P−i) − N) / N))``

whose average lag over j is exactly ``τ_fwd,i`` (verified in tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Method(str, enum.Enum):
    """Pipeline-parallel training methods compared in the paper."""

    GPIPE = "gpipe"
    PIPEDREAM = "pipedream"
    PIPEMARE = "pipemare"


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


@dataclass(frozen=True)
class DelayProfile:
    """Delay arithmetic for ``num_stages`` stages and ``num_microbatches``
    microbatches per minibatch.

    Stages are 0-indexed here; the paper's 1-indexed stage i corresponds to
    ``stage = i − 1``.
    """

    num_stages: int
    num_microbatches: int
    method: Method = Method.PIPEMARE

    def __post_init__(self):
        if self.num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {self.num_stages}")
        if self.num_microbatches < 1:
            raise ValueError(
                f"num_microbatches must be >= 1, got {self.num_microbatches}"
            )

    # -- average (Table 1) delays, in optimizer steps -----------------------
    def slots_fwd(self, stage: int) -> int:
        """Microbatch slots between a weight's forward read and its update:
        ``2(P−i)+1`` with i = stage+1."""
        self._check_stage(stage)
        return 2 * (self.num_stages - (stage + 1)) + 1

    def tau_fwd(self, stage: int) -> float:
        if self.method is Method.GPIPE:
            return 0.0
        return self.slots_fwd(stage) / self.num_microbatches

    def tau_bkwd(self, stage: int) -> float:
        if self.method is Method.PIPEDREAM:
            return self.tau_fwd(stage)
        return 0.0

    def tau_fwd_all(self) -> np.ndarray:
        return np.array([self.tau_fwd(s) for s in range(self.num_stages)])

    def tau_bkwd_all(self) -> np.ndarray:
        return np.array([self.tau_bkwd(s) for s in range(self.num_stages)])

    def max_tau_fwd(self) -> float:
        return self.tau_fwd(0)

    def replica_extra_tau(self, num_replicas: int) -> float:
        """Extra average weight delay (in optimizer steps) added by hybrid
        data × pipeline parallelism with ``num_replicas`` pipelines folding
        at every minibatch boundary: **zero**, for any R.

        Every replica reads from the one shared version store, so each sees
        exactly the single-pipeline ``τ_fwd,i`` / ``τ_bkwd,i`` above, and
        the fold is synchronous at the boundary — the optimizer steps once
        on the mean of all R replica gradients, so no version is ever
        computed from a subset of the replicas.  This is the
        staleness-exact contrast with asynchronous data parallelism
        (Hogwild-style), where an update lands some κ > 0 steps after the
        weights it read and the effective τ grows with the replica count;
        here R changes the gradient's sample count, never its delay.
        """
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        return 0.0

    # -- exact per-microbatch version indices --------------------------------
    def fwd_version(self, stage: int, minibatch: int, microbatch: int) -> int:
        """Integer weight version stage ``stage`` reads in the forward pass
        of microbatch ``microbatch`` of minibatch ``minibatch``."""
        self._check_indices(stage, minibatch, microbatch)
        if self.method is Method.GPIPE:
            return minibatch
        n = self.num_microbatches
        s_fwd_slot = minibatch * n + microbatch - self.slots_fwd(stage)
        return max(0, _ceil_div(s_fwd_slot - n + 1, n))

    def bkwd_version(self, stage: int, minibatch: int, microbatch: int) -> int:
        """Integer weight version read in the backward pass."""
        self._check_indices(stage, minibatch, microbatch)
        if self.method is Method.PIPEDREAM:
            # weight stashing: backward reuses the exact forward version
            return self.fwd_version(stage, minibatch, microbatch)
        # GPipe (synchronous) and PipeMare (τ_bkwd = 0) both read the
        # current weights, which hold version ``minibatch``.
        return minibatch

    def history_needed(self) -> int:
        """Number of versions the weight store must retain: the oldest read
        is ``ceil((2P−1)/N)`` steps behind, plus the current version."""
        oldest_lag = _ceil_div(2 * self.num_stages - 1, self.num_microbatches)
        return oldest_lag + 2

    # -- validation ----------------------------------------------------------
    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range [0, {self.num_stages})")

    def _check_indices(self, stage: int, minibatch: int, microbatch: int) -> None:
        self._check_stage(stage)
        if minibatch < 0:
            raise ValueError(f"minibatch must be non-negative, got {minibatch}")
        if not 0 <= microbatch < self.num_microbatches:
            raise IndexError(
                f"microbatch {microbatch} out of range [0, {self.num_microbatches})"
            )
