"""Partition model weights into pipeline stages.

The paper's rule (§4.1): "we traverse model weights according to their
topological order in the computation graph, always treating the weight and
bias in the same layer as a single model weight ... we divide these model
weights evenly into P stages."

Our Module framework registers parameters in topological order, and a
layer's weight+bias share the module prefix of their parameter names, so a
*unit* is the group of parameters sharing a module prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module, Parameter


@dataclass
class Stage:
    """One pipeline stage: a contiguous group of parameters."""

    index: int
    params: list[Parameter]
    names: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(p.size for p in self.params)

    def snapshot(self) -> list[np.ndarray]:
        """Copies of the stage's current weights."""
        return [p.data.copy() for p in self.params]

    def load(self, weights: list[np.ndarray]) -> None:
        """Point the stage's parameters at ``weights`` (no copy — safe
        because optimizers rebind ``p.data`` instead of mutating it)."""
        for p, w in zip(self.params, weights):
            p.data = w

    def current(self) -> list[np.ndarray]:
        return [p.data for p in self.params]


def _units_of(model: Module) -> list[tuple[str, list[tuple[str, Parameter]]]]:
    """Group named parameters by module prefix (weight+bias stay together)."""
    units: list[tuple[str, list[tuple[str, Parameter]]]] = []
    by_prefix: dict[str, list[tuple[str, Parameter]]] = {}
    for name, p in model.named_parameters():
        prefix = name.rsplit(".", 1)[0] if "." in name else name
        if prefix not in by_prefix:
            by_prefix[prefix] = []
            units.append((prefix, by_prefix[prefix]))
        by_prefix[prefix].append((name, p))
    return units


def num_weight_units(model: Module) -> int:
    """Number of weight units — the maximum fine-grained stage count
    ("the largest number of stages with at least one model weight assigned
    to each pipeline stage", §4.1)."""
    return len(_units_of(model))


def partition_units(
    units: list[tuple[str, list[tuple[str, Parameter]]]], num_stages: int
) -> list[Stage]:
    """Split an ordered unit list into ``num_stages`` contiguous stages,
    as evenly as possible (numpy array_split semantics)."""
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if num_stages > len(units):
        raise ValueError(
            f"cannot make {num_stages} stages from {len(units)} weight units "
            "(each stage needs at least one unit)"
        )
    boundaries = np.array_split(np.arange(len(units)), num_stages)
    stages = []
    for idx, unit_ids in enumerate(boundaries):
        params: list[Parameter] = []
        names: list[str] = []
        for uid in unit_ids:
            for name, p in units[uid][1]:
                params.append(p)
                names.append(name)
        stages.append(Stage(index=idx, params=params, names=names))
    return stages


def partition_model(model: Module, num_stages: int | None = None) -> list[Stage]:
    """Partition ``model`` into stages.  ``num_stages=None`` uses the finest
    granularity (one unit per stage)."""
    units = _units_of(model)
    if num_stages is None:
        num_stages = len(units)
    return partition_units(units, num_stages)
