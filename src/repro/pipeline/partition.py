"""Partition model weights into pipeline stages.

The paper's rule (§4.1): "we traverse model weights according to their
topological order in the computation graph, always treating the weight and
bias in the same layer as a single model weight ... we divide these model
weights evenly into P stages."

Our Module framework registers parameters in topological order, and a
layer's weight+bias share the module prefix of their parameter names, so a
*unit* is the group of parameters sharing a module prefix.

Beyond the paper's even-by-unit-count rule this module hosts the
**Partitioner subsystem**: per-unit cost estimates (analytic flops/bytes
from :mod:`repro.pipeline.costmodel`, or a micro-profiling pass that times
each stage-graph element on a sample batch) feed a contiguous
balanced-partition solver, producing a picklable :class:`PartitionPlan`
consumed uniformly by chain and graph models — the driver and every process
worker rebuild bit-identical stage boundaries from the same plan.  Even
splitting stays the default (``mode="even"``), and the solver reproduces it
exactly whenever the costs are uniform, so existing trajectories are
untouched unless a caller opts into ``auto``/``profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module, Parameter

#: Slicing granularities understood by the stage-graph machinery
#: (:mod:`repro.pipeline.stage_compute`): ``layer`` keeps each primary block
#: (encoder/decoder layer, residual block) one chain element; ``sublayer``
#: splits attention / FFN / norm+residual sub-chains into separate elements,
#: so the finest partition yields strictly more workers than layers.
GRANULARITIES = ("layer", "sublayer")

#: Partition modes: ``even`` is the paper's even-by-unit-count rule;
#: ``auto`` balances the analytic per-unit cost estimates; ``profile``
#: balances micro-profiled element timings on a sample batch.
PARTITION_MODES = ("even", "auto", "profile")


@dataclass
class Stage:
    """One pipeline stage: a contiguous group of parameters."""

    index: int
    params: list[Parameter]
    names: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(p.size for p in self.params)

    def snapshot(self) -> list[np.ndarray]:
        """Copies of the stage's current weights."""
        return [p.data.copy() for p in self.params]

    def load(self, weights: list[np.ndarray]) -> None:
        """Point the stage's parameters at ``weights`` (no copy — safe
        because optimizers rebind ``p.data`` instead of mutating it)."""
        for p, w in zip(self.params, weights):
            p.data = w

    def current(self) -> list[np.ndarray]:
        return [p.data for p in self.params]


def _units_of(model: Module) -> list[tuple[str, list[tuple[str, Parameter]]]]:
    """Group named parameters by module prefix (weight+bias stay together)."""
    units: list[tuple[str, list[tuple[str, Parameter]]]] = []
    by_prefix: dict[str, list[tuple[str, Parameter]]] = {}
    for name, p in model.named_parameters():
        prefix = name.rsplit(".", 1)[0] if "." in name else name
        if prefix not in by_prefix:
            by_prefix[prefix] = []
            units.append((prefix, by_prefix[prefix]))
        by_prefix[prefix].append((name, p))
    return units


def num_weight_units(model: Module) -> int:
    """Number of weight units — the maximum fine-grained stage count
    ("the largest number of stages with at least one model weight assigned
    to each pipeline stage", §4.1)."""
    return len(_units_of(model))


def check_stage_count(
    num_stages: int,
    num_units: int,
    model_name: str = "model",
    granularity: str = "layer",
) -> None:
    """The single "too many stages for this model" validation path.

    Every partition entry point — chain models through
    :func:`partition_units`, graph models and the CLI through
    :class:`Partitioner` — funnels the request through here, so an
    over-fine stage count always fails with the same :class:`ValueError`
    naming the model, its finest granularity, and the requested count.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if num_stages > num_units:
        raise ValueError(
            f"cannot split {model_name} into {num_stages} pipeline stages: "
            f"its finest granularity is {num_units} weight units "
            f"(granularity={granularity!r}; each stage needs at least one "
            "unit)"
        )


def check_replica_count(
    num_replicas: int,
    model_name: str = "model",
    workers_per_replica: int | None = None,
    worker_budget: int | None = None,
) -> None:
    """The single "bad replica count" validation path for hybrid data ×
    pipeline parallelism.

    Every entry point that accepts a replica count — ``repro train
    --replicas``, the workload bundle builders, and the runtime/simulator
    constructors — funnels the request through here, so an invalid count
    always fails with the same :class:`ValueError` naming the model, the
    worker budget (when one applies), and the requested count.
    """
    if num_replicas < 1:
        raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
    if (
        workers_per_replica is not None
        and worker_budget is not None
        and num_replicas * workers_per_replica > worker_budget
    ):
        raise ValueError(
            f"cannot run {num_replicas} pipeline replicas of {model_name}: "
            f"each replica needs {workers_per_replica} workers and the "
            f"worker budget is {worker_budget} "
            f"({num_replicas} x {workers_per_replica} = "
            f"{num_replicas * workers_per_replica} > {worker_budget})"
        )


def even_bounds(num_units: int, num_stages: int) -> tuple[int, ...]:
    """Prefix boundaries of the even-by-count split — exactly
    ``np.array_split`` arithmetic (first ``num_units % num_stages`` stages
    one unit longer), which the paper's rule and every pre-plan trajectory
    in this repo rely on bit-for-bit."""
    size, extra = divmod(num_units, num_stages)
    bounds = [0]
    lo = 0
    for i in range(num_stages):
        lo += size + (1 if i < extra else 0)
        bounds.append(lo)
    return tuple(bounds)


def _stages_from_bounds(
    units: list[tuple[str, list[tuple[str, Parameter]]]],
    bounds: tuple[int, ...],
) -> list[Stage]:
    stages = []
    for idx in range(len(bounds) - 1):
        params: list[Parameter] = []
        names: list[str] = []
        for uid in range(bounds[idx], bounds[idx + 1]):
            for name, p in units[uid][1]:
                params.append(p)
                names.append(name)
        stages.append(Stage(index=idx, params=params, names=names))
    return stages


def partition_units(
    units: list[tuple[str, list[tuple[str, Parameter]]]],
    num_stages: int,
    model_name: str = "model",
) -> list[Stage]:
    """Split an ordered unit list into ``num_stages`` contiguous stages,
    as evenly as possible (numpy array_split semantics)."""
    check_stage_count(num_stages, len(units), model_name)
    return _stages_from_bounds(units, even_bounds(len(units), num_stages))


def partition_model(model: Module, num_stages: int | None = None) -> list[Stage]:
    """Partition ``model`` into stages.  ``num_stages=None`` uses the finest
    granularity (one unit per stage)."""
    units = _units_of(model)
    if num_stages is None:
        num_stages = len(units)
    return partition_units(units, num_stages, type(model).__name__)


# -- the balanced-partition solver ---------------------------------------------


def _blocks_of(costs: list[float], atoms: list[int] | None) -> list[tuple[int, int]]:
    """Group consecutive units sharing an atom id into indivisible blocks;
    ``atoms=None`` leaves every unit its own block."""
    if atoms is None:
        return [(i, i + 1) for i in range(len(costs))]
    if len(atoms) != len(costs):
        raise ValueError(f"{len(atoms)} atom ids for {len(costs)} units")
    blocks: list[tuple[int, int]] = []
    start = 0
    for i in range(1, len(atoms) + 1):
        if i == len(atoms) or atoms[i] != atoms[i - 1]:
            blocks.append((start, i))
            start = i
    return blocks


def _feasible(block_costs: list[float], num_stages: int, cap: float) -> bool:
    """Can the blocks be covered by ``num_stages`` contiguous groups, each
    of total cost ≤ cap?"""
    groups = 1
    acc = 0.0
    for c in block_costs:
        if c > cap:
            return False
        if acc + c > cap:
            groups += 1
            acc = c
            if groups > num_stages:
                return False
        else:
            acc += c
    return True


def balanced_bounds(
    costs: list[float],
    num_stages: int,
    atoms: list[int] | None = None,
) -> tuple[int, ...]:
    """Contiguous partition of ``costs`` into ``num_stages`` non-empty
    groups minimizing the maximum group cost.

    Exact: the optimal bottleneck equals some contiguous-range sum, so a
    binary search over the sorted range sums with a greedy feasibility
    check finds it (no float-tolerance games).  ``atoms`` groups adjacent
    units into indivisible blocks (tied/constrained modules) that are never
    split across stages.  Uniform costs reproduce :func:`even_bounds`
    exactly — the bit-for-bit fallback the differential suites pin.
    """
    u = len(costs)
    check_stage_count(num_stages, u)
    costs = [max(float(c), 0.0) for c in costs]
    blocks = _blocks_of(costs, atoms)
    if num_stages > len(blocks):
        raise ValueError(
            f"cannot make {num_stages} stages from {len(blocks)} indivisible "
            f"unit blocks ({u} units; atom constraints forbid splitting)"
        )
    lo, hi = min(costs), max(costs)
    if atoms is None and (hi - lo) <= 1e-12 * max(hi, 1.0):
        return even_bounds(u, num_stages)

    block_costs = [sum(costs[a:b]) for a, b in blocks]
    prefix = [0.0]
    for c in block_costs:
        prefix.append(prefix[-1] + c)
    sums = sorted({
        prefix[j] - prefix[i]
        for i in range(len(block_costs))
        for j in range(i + 1, len(block_costs) + 1)
    })
    lo_i, hi_i = 0, len(sums) - 1
    while lo_i < hi_i:
        mid = (lo_i + hi_i) // 2
        if _feasible(block_costs, num_stages, sums[mid]):
            hi_i = mid
        else:
            lo_i = mid + 1
    cap = sums[lo_i]

    # Greedy fill at the optimal cap, reserving one block per still-unopened
    # stage so every stage stays non-empty.  A forced cut (blocks left ==
    # stages left to open) puts every remaining block in its own stage, so
    # no stage ever exceeds the cap the feasibility search proved.
    bounds = [0]
    acc = 0.0
    stage = 0
    for k, (a, _b) in enumerate(blocks):
        blocks_left = len(blocks) - k
        stages_to_open = num_stages - 1 - stage
        if a > bounds[-1] and stages_to_open > 0 and (
            blocks_left == stages_to_open or acc + block_costs[k] > cap
        ):
            bounds.append(a)
            stage += 1
            acc = 0.0
        acc += block_costs[k]
    bounds.append(u)
    if len(bounds) != num_stages + 1:
        raise AssertionError(
            f"solver produced {len(bounds) - 1} stages for {num_stages}"
        )
    return tuple(bounds)


# -- the partition plan --------------------------------------------------------


@dataclass(frozen=True)
class PartitionPlan:
    """A picklable, model-independent record of one partition decision:
    which contiguous unit range forms each stage, under which granularity
    and cost mode.

    The plan is the single artifact both sides of the process backend agree
    on — the driver computes it once (cost estimation and the solver never
    run inside workers) and ships it in the
    :class:`~repro.pipeline.stage_compute.ModelSpec`; ``stages(model)``
    rebuilds bit-identical :class:`Stage` boundaries on any replica with
    the same parameter layout.
    """

    mode: str
    granularity: str
    unit_names: tuple[str, ...]
    bounds: tuple[int, ...]
    unit_costs: tuple[float, ...]
    max_workers: int | None = None

    def __post_init__(self):
        if self.mode not in PARTITION_MODES:
            raise ValueError(f"unknown partition mode {self.mode!r}")
        if self.granularity not in GRANULARITIES:
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if len(self.bounds) < 2 or self.bounds[0] != 0 or self.bounds[-1] != len(self.unit_names):
            raise ValueError(f"bounds {self.bounds} do not cover {len(self.unit_names)} units")
        if list(self.bounds) != sorted(self.bounds) or len(set(self.bounds)) != len(self.bounds):
            raise ValueError(f"bounds {self.bounds} are not strictly increasing")
        if len(self.unit_costs) != len(self.unit_names):
            raise ValueError("one cost per unit required")

    @property
    def num_stages(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_units(self) -> int:
        return len(self.unit_names)

    def stage_units(self, stage: int) -> tuple[str, ...]:
        return self.unit_names[self.bounds[stage]:self.bounds[stage + 1]]

    def stage_costs(self, unit_costs=None) -> list[float]:
        """Per-stage cost sums — over the plan's own recorded unit costs,
        or over ``unit_costs`` when given.  Passing external costs is how
        an *even* plan (which deliberately records uniform costs — its
        boundaries must stay bit-for-bit the paper's rule) is scored under
        analytic estimates for display and comparison."""
        costs = self.unit_costs if unit_costs is None else unit_costs
        if len(costs) != self.num_units:
            raise ValueError(f"{len(costs)} costs for {self.num_units} units")
        return [
            float(sum(costs[self.bounds[s]:self.bounds[s + 1]]))
            for s in range(self.num_stages)
        ]

    def imbalance(self, unit_costs=None) -> float:
        """Max/mean estimated stage cost — 1.0 is a perfectly balanced
        pipe; the slowest stage paces the whole pipeline at exactly this
        multiple of the average.  ``unit_costs`` as in
        :meth:`stage_costs`."""
        costs = self.stage_costs(unit_costs)
        mean = sum(costs) / len(costs)
        if mean <= 0:
            return 1.0
        return max(costs) / mean

    def stages(self, model: Module) -> list[Stage]:
        """Rebuild the stage list on ``model`` (driver or worker replica),
        validating that the model's unit layout matches the plan's."""
        units = _units_of(model)
        names = tuple(name for name, _ in units)
        if names != self.unit_names:
            raise ValueError(
                f"partition plan does not match {type(model).__name__}: plan "
                f"has {len(self.unit_names)} units, model has {len(names)} "
                "(unit names differ)"
            )
        return _stages_from_bounds(units, self.bounds)

    def describe(self) -> str:
        return (
            f"{self.mode}/{self.granularity}: {self.num_stages} stages over "
            f"{self.num_units} units, imbalance {self.imbalance():.2f}"
        )


@dataclass(frozen=True)
class Partitioner:
    """Cost estimation + balanced solving behind one front door.

    ``mode``:

    * ``even`` — the paper's even-by-unit-count rule (unchanged default);
    * ``auto`` — analytic flops/bytes estimates per unit
      (:func:`repro.pipeline.costmodel.analytic_unit_costs`) feed
      :func:`balanced_bounds`;
    * ``profile`` — a micro-profiling pass times every stage-graph element
      at ``granularity`` on ``sample_inputs``
      (:func:`repro.pipeline.costmodel.profile_unit_costs`) and those
      timings feed the solver.  Profiling runs once, on the driver; the
      resulting :class:`PartitionPlan` is what crosses process boundaries,
      so nondeterministic timers can never desynchronize replicas.
    """

    mode: str = "even"
    granularity: str = "layer"

    def __post_init__(self):
        if self.mode not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.mode!r} (expected one of "
                f"{PARTITION_MODES})"
            )
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {self.granularity!r} (expected one of "
                f"{GRANULARITIES})"
            )

    def plan(
        self,
        model: Module,
        num_stages: int | None = None,
        sample_inputs: tuple | None = None,
        atoms: list[int] | None = None,
        max_workers: int | None = None,
    ) -> PartitionPlan:
        from repro.pipeline import costmodel

        units = _units_of(model)
        names = tuple(name for name, _ in units)
        if num_stages is None:
            num_stages = len(units)
        check_stage_count(
            num_stages, len(units), type(model).__name__, self.granularity
        )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")

        if self.mode == "even":
            costs = [1.0] * len(units)
            bounds = even_bounds(len(units), num_stages)
        else:
            if self.mode == "profile":
                if sample_inputs is None:
                    raise ValueError(
                        "partition mode 'profile' needs sample_inputs (one "
                        "array per external model input) to time elements on"
                    )
                costs = costmodel.profile_unit_costs(
                    model, sample_inputs, granularity=self.granularity
                )
            else:
                costs = [u.cost for u in costmodel.analytic_unit_costs(model)]
            bounds = balanced_bounds(costs, num_stages, atoms)
        return PartitionPlan(
            mode=self.mode,
            granularity=self.granularity,
            unit_names=names,
            bounds=bounds,
            unit_costs=tuple(float(c) for c in costs),
            max_workers=max_workers,
        )
