"""The sequential pipeline-parallel training executor (the paper's simulator).

Semantics per minibatch t of N microbatches (§2.1):

1. For each microbatch j, every stage i's parameters are pointed at weight
   version ``v_fwd(i,t,j)`` before the forward pass, realising the Table 1
   forward delay exactly (see :mod:`repro.pipeline.delays`).
2. Before the backward pass, parameters are pointed at the method's
   backward weights: the stashed forward version (PipeDream), the current
   version (GPipe, PipeMare), or the T2-corrected extrapolation
   ``w − Δτ·δ`` (PipeMare + T2).
3. Microbatch gradients accumulate in ``Parameter.grad`` and the optimizer
   steps once per minibatch; the new weights become version t+1.

Because updates only land at minibatch boundaries, processing microbatches
sequentially (fwd_j then bkwd_j) is numerically identical to the interleaved
hardware schedule — all that matters is which version each phase reads,
which the delay profile pins down.  All of that version arithmetic lives in
the shared :class:`repro.pipeline.plan.StepPlan`;
:class:`repro.pipeline.runtime.AsyncPipelineRuntime` executes the *same*
plan concurrently and is differentially tested to match this simulator
bit for bit.

With ``recompute_segment`` set, a second forward pass regenerates
activations at the recompute-delayed weights before backward (Appendix D's
three-delay model); segment heads keep their originally cached inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core import PipeMareConfig
from repro.nn.dropout import Dropout
from repro.nn.module import Module
from repro.optim import Optimizer, ParamGroup
from repro.optim.schedulers import LRSchedule
from repro.pipeline.delays import Method
from repro.pipeline.partition import Stage
from repro.pipeline.plan import PipelineBackend, ReplicaPlan, StepPlan


def param_groups_from_stages(stages: list[Stage]) -> list[ParamGroup]:
    """One optimizer param group per stage, in stage order — the layout
    both T1 and the executor rely on."""
    return [ParamGroup(params=list(s.params), name=f"stage{s.index}") for s in stages]


class PipelineExecutor(PipelineBackend):
    """Drives pipeline-parallel training of a model, one microbatch at a
    time (the simulator backend; see
    :class:`repro.pipeline.AsyncPipelineRuntime` for the concurrent one).

    Parameters
    ----------
    model, loss_fn:
        The model and a loss module (``forward(pred, target) -> float``,
        ``backward() -> grad``).
    optimizer:
        Must have one param group per stage in stage order (use
        :func:`param_groups_from_stages`).
    stages:
        Output of :func:`repro.pipeline.partition_model`.
    num_microbatches:
        N; the minibatch passed to :meth:`train_step` is split along axis 0.
    method:
        ``gpipe`` / ``pipedream`` / ``pipemare``.
    pipemare:
        Technique configuration (ignored for the synchronous baselines).
    base_schedule:
        Base learning rate ``α_base,k`` per optimizer step; ``None`` keeps
        the optimizer's constructor lr.
    grad_clip:
        Optional global-norm clipping threshold.
    recompute_segment:
        Segment size S for PipeMare Recompute (``None`` disables).
    num_replicas:
        R pipeline replicas for hybrid data × pipeline parallelism.  Every
        replica reads the same delayed weight versions from the shared
        store (identical staleness), computes gradients over its own
        minibatch shard (``_shard_minibatch``) with its own dropout stream,
        and the gradients fold in canonical replica order before the one
        shared optimizer step (see :class:`repro.pipeline.plan.ReplicaPlan`).
        R=1 is the original single-pipeline simulator, bit for bit.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        stages: list[Stage],
        num_microbatches: int,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        recompute_segment: int | None = None,
        partition_plan=None,
        num_replicas: int = 1,
    ):
        super().__init__(
            model,
            loss_fn,
            StepPlan(
                params=model.parameters(),
                optimizer=optimizer,
                stages=stages,
                num_microbatches=num_microbatches,
                method=method,
                pipemare=pipemare,
                base_schedule=base_schedule,
                grad_clip=grad_clip,
                recompute_segment=recompute_segment,
                partition_plan=partition_plan,
                num_replicas=num_replicas,
            ),
        )
        if num_replicas > 1:
            # Replica copies are pickle round-trips; a stream-mode dropout's
            # generator would be duplicated with it, making two replicas
            # draw *identical* masks — silently wrong statistics.  Counter
            # mode keys masks on the replica index instead.
            for m in model.modules():
                if isinstance(m, Dropout) and m.p > 0.0 and not m.counter_based:
                    raise ValueError(
                        "stream-mode (generator) dropout cannot run with "
                        "num_replicas > 1; use counter-based dropout "
                        "(Dropout(p, seed=..., layer_id=...))"
                    )
        self.replica_plan = ReplicaPlan(self.plan, model, loss_fn)

    # -- weight loading -------------------------------------------------------
    def _load_all(self, weights_for_stage, stages: list[Stage] | None = None) -> None:
        for s, stage in enumerate(self.stages if stages is None else stages):
            stage.load(weights_for_stage(s))

    # -- training ---------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """Run one minibatch; returns the mean microbatch training loss
        (mean over all ``R × N`` microbatches when ``num_replicas > 1``)."""
        plan = self.plan
        n = plan.num_microbatches
        sync = plan.is_sync_step()
        if plan.num_replicas == 1:
            xs, ys = self._split_minibatch(x, y, n)
            total = sum(self._num_samples(xj) for xj in xs)

            plan.begin_step()
            self._begin_deferred_grads()
            losses = []
            t = plan.t
            try:
                for j in range(n):
                    self._set_dropout_slot(j)
                    self._load_all(lambda s: plan.forward_weights(s, t, j, sync))
                    out = self._forward(xs[j])
                    losses.append(self.loss_fn(out, ys[j]))
                    grad = self.loss_fn.backward() * plan.grad_scale(self._num_samples(xs[j]), total)
                    if plan.recompute_active(sync):
                        # Counter-based dropout makes this second forward exact:
                        # the (step, microbatch) slot is unchanged, so the
                        # regenerated activations use the same masks the first
                        # forward drew.
                        self._load_all(lambda s: plan.recompute_weights(s, t, j))
                        self._forward(xs[j])  # regenerate caches at recompute weights
                    self._load_all(lambda s: plan.backward_weights(s, t, j, sync))
                    self.model.backward(grad)
            except BaseException:
                self._abort_deferred_grads()
                raise
            self._fold_deferred_grads()
            plan.finish_step(sync)
            return float(np.mean(losses))
        return self._train_step_replicated(x, y, sync)

    def _train_step_replicated(self, x, y, sync: bool) -> float:
        """The R > 1 minibatch: replicas run sequentially (replica 0 on the
        live model, then each copy), each over its own shard with the same
        delay arithmetic — wall-clock order is irrelevant because every
        wave's weights come from the version store and gradients fold in
        replica-index order regardless of completion order."""
        plan = self.plan
        n = plan.num_microbatches
        shards_x, shards_y = self._shard_minibatch(x, y, plan.num_replicas)

        plan.begin_step()
        losses: list[float] = []
        t = plan.t
        for r in range(plan.num_replicas):
            rep = None if r == 0 else self.replica_plan.replicas[r - 1]
            model = self.model if rep is None else rep.model
            loss_fn = self.loss_fn if rep is None else rep.loss_fn
            stages = None if rep is None else rep.stages
            dropouts = self._counter_dropouts if rep is None else rep.counter_dropouts
            deferred = self._deferred_modules if rep is None else rep.deferred_modules
            xs, ys = self._split_minibatch(shards_x[r], shards_y[r], n)
            total = sum(self._num_samples(xj) for xj in xs)
            for m in deferred:
                m.enable_deferred_grads()
                for _, buf in m.deferred_grads():
                    buf.fill(0.0)
            try:
                for j in range(n):
                    for m in dropouts:
                        m.set_slot(t, j)
                    self._load_all(lambda s: plan.forward_weights(s, t, j, sync), stages)
                    out = self._forward_model(model, xs[j])
                    losses.append(loss_fn(out, ys[j]))
                    grad = loss_fn.backward() * plan.grad_scale(self._num_samples(xs[j]), total)
                    if plan.recompute_active(sync):
                        self._load_all(lambda s: plan.recompute_weights(s, t, j), stages)
                        self._forward_model(model, xs[j])
                    self._load_all(lambda s: plan.backward_weights(s, t, j, sync), stages)
                    model.backward(grad)
            except BaseException:
                for m in deferred:
                    m.disable_deferred_grads()
                raise
            for m in deferred:
                for p, buf in m.deferred_grads():
                    p.grad += buf
                m.disable_deferred_grads()
        self.replica_plan.fold_replica_grads()
        plan.finish_step(sync)
        return float(np.mean(losses))
