"""The pipeline-parallel training executor (the paper's simulator).

Semantics per minibatch t of N microbatches (§2.1):

1. For each microbatch j, every stage i's parameters are pointed at weight
   version ``v_fwd(i,t,j)`` before the forward pass, realising the Table 1
   forward delay exactly (see :mod:`repro.pipeline.delays`).
2. Before the backward pass, parameters are pointed at the method's
   backward weights: the stashed forward version (PipeDream), the current
   version (GPipe, PipeMare), or the T2-corrected extrapolation
   ``w − Δτ·δ`` (PipeMare + T2).
3. Microbatch gradients accumulate in ``Parameter.grad`` and the optimizer
   steps once per minibatch; the new weights become version t+1.

Because updates only land at minibatch boundaries, processing microbatches
sequentially (fwd_j then bkwd_j) is numerically identical to the interleaved
hardware schedule — all that matters is which version each phase reads,
which the delay profile pins down.

With ``recompute_segment`` set, a second forward pass regenerates
activations at the recompute-delayed weights before backward (Appendix D's
three-delay model); segment heads keep their originally cached inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core import DiscrepancyCorrector, LRReschedule, PipeMareConfig, WarmupSchedule
from repro.nn.module import Module
from repro.optim import Optimizer, ParamGroup, clip_grad_norm
from repro.optim.schedulers import LRSchedule
from repro.pipeline.delays import DelayProfile, Method, _ceil_div
from repro.pipeline.partition import Stage
from repro.pipeline.recompute import recompute_delay_slots, segment_heads
from repro.pipeline.weight_store import WeightVersionStore


def param_groups_from_stages(stages: list[Stage]) -> list[ParamGroup]:
    """One optimizer param group per stage, in stage order — the layout
    both T1 and the executor rely on."""
    return [ParamGroup(params=list(s.params), name=f"stage{s.index}") for s in stages]


class PipelineExecutor:
    """Drives pipeline-parallel training of a model.

    Parameters
    ----------
    model, loss_fn:
        The model and a loss module (``forward(pred, target) -> float``,
        ``backward() -> grad``).
    optimizer:
        Must have one param group per stage in stage order (use
        :func:`param_groups_from_stages`).
    stages:
        Output of :func:`repro.pipeline.partition_model`.
    num_microbatches:
        N; the minibatch passed to :meth:`train_step` is split along axis 0.
    method:
        ``gpipe`` / ``pipedream`` / ``pipemare``.
    pipemare:
        Technique configuration (ignored for the synchronous baselines).
    base_schedule:
        Base learning rate ``α_base,k`` per optimizer step; ``None`` keeps
        the optimizer's constructor lr.
    grad_clip:
        Optional global-norm clipping threshold.
    recompute_segment:
        Segment size S for PipeMare Recompute (``None`` disables).
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        stages: list[Stage],
        num_microbatches: int,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        recompute_segment: int | None = None,
    ):
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.stages = stages
        self.method = Method(method)
        self.profile = DelayProfile(len(stages), num_microbatches, self.method)
        self.store = WeightVersionStore(stages, self.profile.history_needed())
        self.base_schedule = base_schedule
        self.grad_clip = grad_clip
        self.t = 0  # minibatch (optimizer-step) counter

        if len(optimizer.groups) != len(stages):
            raise ValueError(
                f"optimizer must have one group per stage "
                f"({len(optimizer.groups)} groups, {len(stages)} stages)"
            )

        cfg = pipemare if (pipemare is not None and self.method is Method.PIPEMARE) else None
        self.config = cfg
        tau_f = self.profile.tau_fwd_all()
        tau_b = self.profile.tau_bkwd_all()
        self.reschedule = (
            LRReschedule(tau_f, cfg.anneal_steps) if cfg and cfg.use_t1 else None
        )
        self.corrector = (
            DiscrepancyCorrector([s.params for s in stages], tau_f, tau_b, cfg.decay)
            if cfg and cfg.use_t2
            else None
        )
        self.warmup = WarmupSchedule(cfg.warmup_steps if cfg and cfg.use_t3 else 0)

        self.recompute_segment = recompute_segment
        if recompute_segment is not None:
            self._recompute_lag = recompute_delay_slots(len(stages), recompute_segment)
            self._segment_heads = set(segment_heads(len(stages), recompute_segment))
        else:
            self._recompute_lag = None
            self._segment_heads = set()

    # -- delay bookkeeping ----------------------------------------------------
    def _is_sync_step(self) -> bool:
        """True while T3's synchronous (GPipe-style) warmup window is active
        or the method itself is GPipe."""
        if self.method is Method.GPIPE:
            return True
        return self.warmup.is_synchronous(self.t)

    def _recompute_version(self, stage: int, j: int) -> int:
        """Weight version used to regenerate stage activations: the version
        resident ``lag`` slots before the backward slot; segment heads reuse
        the original forward version (their input was cached, not
        recomputed)."""
        if stage in self._segment_heads:
            return self.profile.fwd_version(stage, self.t, j)
        n = self.profile.num_microbatches
        slot = self.t * n + j - int(self._recompute_lag[stage])
        return max(0, _ceil_div(slot - n + 1, n))

    def _load_forward_weights(self, j: int, sync: bool) -> None:
        if sync:
            self.store.load_latest()
            return
        for s in range(len(self.stages)):
            self.store.load(s, self.profile.fwd_version(s, self.t, j))

    def _load_backward_weights(self, j: int, sync: bool) -> None:
        if sync or self.method is Method.GPIPE:
            self.store.load_latest()
            return
        if self.method is Method.PIPEDREAM:
            for s in range(len(self.stages)):
                self.store.load(s, self.profile.bkwd_version(s, self.t, j))
            return
        # PipeMare: current weights, optionally T2-extrapolated toward u_fwd
        self.store.load_latest()
        if self.corrector is not None:
            for s, stage in enumerate(self.stages):
                stage.load(self.corrector.corrected_weights(s))

    def _load_recompute_weights(self, j: int) -> None:
        for s, stage in enumerate(self.stages):
            version = self._recompute_version(s, j)
            weights = self.store.weights(s, version)
            if self.corrector is not None and s not in self._segment_heads:
                # T2 for Recompute (App. D.1): extrapolate toward u_fwd
                n = self.profile.num_microbatches
                tau_r = self._recompute_lag[s] / n
                dtau = max(self.profile.tau_fwd(s) - tau_r, 0.0)
                weights = [
                    w - dtau * v for w, v in zip(weights, self.corrector.velocity[s])
                ]
            stage.load(weights)

    # -- training ---------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """Run one minibatch; returns the mean microbatch training loss."""
        n = self.profile.num_microbatches
        if len(x) < n:
            raise ValueError(f"minibatch of {len(x)} samples cannot form {n} microbatches")
        xs = np.array_split(x, n)
        ys = np.array_split(y, n)
        total = len(x)
        sync = self._is_sync_step()

        self.optimizer.zero_grad()
        losses = []
        for j in range(n):
            self._load_forward_weights(j, sync)
            out = self.model(xs[j])
            losses.append(self.loss_fn(out, ys[j]))
            grad = self.loss_fn.backward()
            # exact minibatch-mean weighting even for ragged microbatches
            grad = grad * (len(xs[j]) * n / total)
            if self.recompute_segment is not None and not sync:
                self._load_recompute_weights(j)
                self.model(xs[j])  # regenerate caches at recompute weights
            self._load_backward_weights(j, sync)
            self.model.backward(grad)
        self.store.load_latest()

        for p in self.model.parameters():
            p.grad *= 1.0 / n
        if self.grad_clip is not None:
            clip_grad_norm(self.model.parameters(), self.grad_clip)

        if self.base_schedule is not None:
            self.optimizer.lr = self.base_schedule(self.t)
        if self.reschedule is not None and not sync:
            self.reschedule.apply(self.optimizer, self.t)
        else:
            for group in self.optimizer.groups:
                group.lr_scale = 1.0

        old_weights = [s.current() for s in self.stages] if self.corrector else None
        self.optimizer.step()
        self.store.push_current()
        if self.corrector is not None and old_weights is not None:
            self.corrector.update_all(old_weights)
        self.t += 1
        return float(np.mean(losses))

    # -- accounting --------------------------------------------------------------
    def step_time(self) -> float:
        """Relative hardware time of the step just configured: 1.0 for the
        bubble-free methods, ``1/0.3`` for synchronous (GPipe-style) steps —
        the Appendix A.3 model used for time-to-accuracy."""
        from repro.pipeline import costmodel

        if self._is_sync_step():
            return 1.0 / costmodel.optimal_gpipe_throughput()[0]
        return 1.0

    def extra_memory_elements(self) -> int:
        """Extra persistent memory the method needs beyond one weight copy
        (PipeDream's stash is accounted analytically in the cost model; here
        we report the simulator-resident T2 buffer)."""
        return self.corrector.memory_elements() if self.corrector else 0

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything mutable beyond the model itself: the minibatch
        counter, the per-stage weight-version window (delayed reads resume
        exactly), and the T2 velocity buffers.  The optimizer is checkpointed
        separately (:meth:`repro.optim.Optimizer.state_dict`)."""
        state = {"t": self.t, "store": self.store.state_dict()}
        if self.corrector is not None:
            state["corrector"] = self.corrector.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.  The executor must have been
        built with the same model partition and PipeMare configuration."""
        if ("corrector" in state) != (self.corrector is not None):
            raise ValueError(
                "checkpoint and executor disagree on T2 discrepancy "
                "correction (one has a corrector, the other does not)"
            )
        self.t = int(state["t"])
        self.store.load_state_dict(state["store"])
        if self.corrector is not None:
            self.corrector.load_state_dict(state["corrector"])
