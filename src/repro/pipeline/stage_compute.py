"""Slice a model into per-worker computational pieces for the concurrent
runtime.

The partitioner (:mod:`repro.pipeline.partition`) splits *parameters* into
stages; to actually run stages concurrently we also need the *computation*
split into pieces a worker can own.  Since PR 3 the unit of slicing is a
**stage-program graph** (:class:`StageGraph`): a small DAG of chain
*nodes*, each node an ordered list of single-payload modules, with explicit
join points where a node consumes the outputs of several producers.  This
is the stage-graph view PipeDream and XPipe use to pipeline
encoder/decoder models — the two-stream Transformer slices as an encoder
chain and a decoder chain that merge at cross-attention
(:meth:`repro.models.Transformer.pipeline_graph`).

Models expose the graph via a ``pipeline_graph()`` method; purely linear
models keep exposing ``pipeline_chain()`` (``Sequential`` containers
flatten automatically; anything else is one atomic element) and are wrapped
as a single-node graph, so the chain case is just the degenerate graph and
both run through the same machinery.

Slicing rules
-------------

Each *element* (module in a node's chain) gets a **primary stage**: the
minimum stage of its own parameters; param-free glue takes the stage of the
preceding element in its node (or, at the head of a node, of the node's
first parametered element, so joins run where their first consumer's
weights live).  Consecutive same-primary elements of a node form a
:class:`Segment`; one :class:`WorkerCompute` per distinct primary stage
owns every segment with that primary, in graph order.  An element whose
parameters span a stage boundary is executed whole by the worker of its
first stage — each parameter still reads the weight version of *its own*
stage, so the delay semantics are untouched; only the available concurrency
shrinks.  In the degenerate case (un-sliceable model) a single worker runs
everything, still bit-for-bit correct, just not concurrent.

:class:`Edge` objects connect segments (and route the external inputs and
per-edge transport channels).  Dataflow stays deadlock-free under the
1F1B / fill-drain worker programs because every edge points from a lower
(worker, graph-position) to a higher one — validated at build time.

Weight-sharing across call sites is supported two ways:

* a **shared module** (tied encoder/decoder embedding) may appear in
  several elements; the first occurrence owns the parameters, later
  occurrences must land on the same worker (enforced), so the cache-stack
  LIFO discipline and gradient accumulation order match the monolithic
  forward exactly;
* a **borrowing module** (the tied output projection) declares
  ``pipeline_borrows() -> [Parameter, ...]`` and receives the correctly
  versioned arrays through ``load_borrowed(arrays)`` at every weight load,
  without rebinding the owner's ``Parameter`` (which another worker may
  have pointed at a different version).  Its gradient contribution goes to
  a module-local buffer declared via ``deferred_grads() -> [(param, buf)]``
  and is folded into ``param.grad`` by the driver at the minibatch
  boundary — see :class:`repro.models.transformer.TiedProjection`.

Workers interleave many in-flight microbatches on the same modules, so the
per-microbatch forward caches (the ``_``-prefixed attributes every layer
stashes for its backward, per the :mod:`repro.nn.module` contract) are
snapshotted after each forward and restored before the matching backward.
Persistent state (BatchNorm running stats, RNGs — no leading underscore) is
deliberately *not* snapshotted: it mutates in stage-local microbatch order,
exactly as in the sequential simulator.
"""

from __future__ import annotations

import importlib
import inspect
import pickle
from dataclasses import dataclass, field, replace

import numpy as np

from repro.nn.dropout import Dropout
from repro.nn.module import Module, Parameter, Sequential
from repro.pipeline.partition import GRANULARITIES, PartitionPlan, even_bounds


def _check_granularity(granularity: str) -> None:
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity {granularity!r} (expected one of "
            f"{GRANULARITIES})"
        )


def _takes_granularity(fn) -> bool:
    """Whether a model's ``pipeline_chain``/``pipeline_graph`` accepts the
    ``granularity`` keyword.  Models that never declared one slice the same
    at every granularity (their layer elements *are* their finest pieces),
    so ``sublayer`` degrades to ``layer`` instead of erroring."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    return "granularity" in sig.parameters


def flatten_chain(model: Module, granularity: str = "layer") -> list[Module]:
    """Flatten ``model`` into an ordered list of chain elements.

    Preference order: an explicit ``pipeline_chain()`` method, then
    ``Sequential`` flattening, then the module itself as one atomic element.
    ``granularity`` is forwarded to any ``pipeline_chain`` that accepts it
    (e.g. :class:`repro.models.resnet.BasicBlock` splits into its conv
    sub-chains at ``"sublayer"``).
    """
    _check_granularity(granularity)
    chain = getattr(model, "pipeline_chain", None)
    if callable(chain):
        elements = (
            chain(granularity=granularity) if _takes_granularity(chain) else chain()
        )
        out: list[Module] = []
        for element in elements:
            if element is model:
                # A module may answer "I stay atomic at this granularity"
                # by returning itself — do not recurse into it again.
                out.append(element)
            else:
                out.extend(flatten_chain(element, granularity))
        return out
    if isinstance(model, Sequential):
        out = []
        for layer in model.layers:
            out.extend(flatten_chain(layer, granularity))
        return out
    return [model]


# -- the stage-program graph ---------------------------------------------------


@dataclass(frozen=True)
class GraphNode:
    """One chain of the stage-program graph.

    ``elements`` run in order on a single payload; ``inputs`` name where the
    first element's inputs come from — ``"ext:<i>"`` for the i-th external
    model input, or the name of a producer node.  A node with several inputs
    starts with a join element whose ``forward(*payloads)`` combines them
    and whose ``backward`` returns one gradient per input, in ``inputs``
    order.
    """

    name: str
    elements: tuple[Module, ...]
    inputs: tuple[str, ...]

    def __post_init__(self):
        if not self.elements:
            raise ValueError(f"graph node {self.name!r} has no elements")
        if not self.inputs:
            raise ValueError(f"graph node {self.name!r} has no inputs")


class StageGraph:
    """A DAG of :class:`GraphNode` chains in topological order.

    Every node's output must be consumed by exactly one later node, except
    the last node (the *sink*), whose output is the model output the loss
    applies to.  External inputs ``ext:0 .. ext:k-1`` must all be consumed.
    """

    def __init__(self, nodes: list[GraphNode]):
        if not nodes:
            raise ValueError("StageGraph needs at least one node")
        self.nodes = list(nodes)
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        ext: set[int] = set()
        consumed: dict[str, int] = {name: 0 for name in names}
        seen: set[str] = set()
        for node in self.nodes:
            for inp in node.inputs:
                if inp.startswith("ext:"):
                    ext.add(int(inp[4:]))
                elif inp in seen:
                    consumed[inp] += 1
                else:
                    raise ValueError(
                        f"node {node.name!r} consumes {inp!r}, which is not an "
                        "earlier node (graph must be in topological order)"
                    )
            seen.add(node.name)
        for name, count in consumed.items():
            expected = 0 if name == names[-1] else 1
            if count != expected:
                raise ValueError(
                    f"node {name!r} is consumed {count} times (sink must be "
                    "consumed 0 times, every other node exactly once)"
                )
        if ext != set(range(len(ext))):
            raise ValueError(f"external inputs must be ext:0..ext:k-1, got {sorted(ext)}")
        self.num_external = max(len(ext), 1)


def flatten_graph(model: Module, granularity: str = "layer") -> StageGraph:
    """The model's stage-program graph: ``pipeline_graph()`` when the model
    defines one, else its linear chain wrapped as a single-node graph.
    ``granularity`` selects how fine the chain elements are sliced (see
    :data:`repro.pipeline.partition.GRANULARITIES`); models that do not
    declare sublayer slicing keep their layer elements."""
    _check_granularity(granularity)
    graph = getattr(model, "pipeline_graph", None)
    if callable(graph):
        if _takes_granularity(graph):
            return graph(granularity=granularity)
        return graph()
    return StageGraph(
        [GraphNode("chain", tuple(flatten_chain(model, granularity)), ("ext:0",))]
    )


# -- sliced execution structures ----------------------------------------------


@dataclass
class Segment:
    """A consecutive same-stage run of one node's elements — the unit of
    execution a worker interleaves microbatches over."""

    node: GraphNode
    elements: list[Module]
    topo: int = -1          # global graph position
    worker: int = -1        # assigned worker index
    is_sink: bool = False   # model output: the loss applies here
    in_edges: list["Edge"] = field(default_factory=list)
    out_edge: "Edge | None" = None

    def forward(self, ins: list, reserve=None):
        """Run the segment; when ``reserve`` is given (a ``(shape, dtype) ->
        buffer-or-None`` callable from the transport layer), the last element
        computes directly into the reserved transport slot when it supports
        ``forward_into``, eliminating the producer-side copy."""
        head = self.elements[0]
        if len(self.elements) == 1:
            return self._apply_last(head, ins, reserve)
        x = head(*ins) if len(ins) > 1 else head(ins[0])
        for element in self.elements[1:-1]:
            x = element(x)
        return self._apply_last(self.elements[-1], [x], reserve)

    @staticmethod
    def _apply_last(element: Module, ins: list, reserve):
        if reserve is not None and len(ins) == 1 and hasattr(element, "forward_into"):
            shape, dtype = element.pipeline_out_meta(ins[0])
            out = reserve(tuple(shape), dtype)
            if out is not None:
                element.forward_into(ins[0], out)
                return out
        return element(*ins) if len(ins) > 1 else element(ins[0])

    def backward(self, grad) -> list:
        """Returns one gradient payload per in-edge, in ``in_edges`` order."""
        for element in reversed(self.elements[1:]):
            grad = element.backward(grad)
        g = self.elements[0].backward(grad)
        if len(self.in_edges) > 1:
            g = list(g)
            if len(g) != len(self.in_edges):
                raise ValueError(
                    f"join element {type(self.elements[0]).__name__} returned "
                    f"{len(g)} gradients for {len(self.in_edges)} inputs"
                )
            return g
        return [g]


@dataclass
class Edge:
    """One dataflow arc of the sliced graph.  ``src is None`` marks an
    external model input (``ext_index``); otherwise activations flow
    ``src → dst`` forward and gradients ``dst → src`` backward.  Cross-worker
    edges each get their own transport channel; same-worker edges are local
    hand-offs inside one (op, microbatch) slot."""

    index: int
    src: Segment | None
    dst: Segment
    ext_index: int | None = None

    @property
    def local(self) -> bool:
        return self.src is not None and self.src.worker == self.dst.worker

    @property
    def src_worker(self) -> int:
        return -1 if self.src is None else self.src.worker


_CACHE_EXCLUDED = ("_parameters", "_modules")


def _is_cache_attr(name: str) -> bool:
    return name.startswith("_") and name not in _CACHE_EXCLUDED


@dataclass(frozen=True)
class ModelSpec:
    """A picklable recipe for rebuilding a model (and its stage partition)
    inside a spawned worker process.

    The process backend never ships live module objects to workers — a
    worker calls :meth:`build` to construct its own replica, then reads
    every weight it uses from the shared-memory mirror, so only the
    *shapes* (and any persistent non-parameter state, e.g. BatchNorm
    running statistics) of the replica matter.

    ``factory`` is either a picklable callable (a class or module-level
    function) or an import-path string ``"pkg.mod:attr"``; ``args`` /
    ``kwargs`` must pickle (NumPy ``Generator`` objects do, state and all,
    so seeded-rng constructor arguments reproduce the driver's build
    exactly).  The partition a worker rebuilds comes from ``plan`` (a
    :class:`~repro.pipeline.partition.PartitionPlan` — the cost model and
    solver never run inside workers, only the plan's plain unit boundaries
    do), falling back to the even split at ``num_stages``
    (``None`` = finest granularity, as in
    :func:`repro.pipeline.partition_model`).

    ``replica`` is the hybrid data × pipeline replica index this rebuild
    serves: :meth:`build` re-keys every counter-based dropout on the rebuilt
    model to it, so a process worker of replica r draws replica r's mask
    stream (see :mod:`repro.nn.dropout`).  Replica 0 — the default — is
    bit-identical to a spec without the field.
    """

    factory: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    num_stages: int | None = None
    plan: PartitionPlan | None = None
    replica: int = 0

    @classmethod
    def from_model(
        cls,
        model: Module,
        num_stages: int | None = None,
        plan: PartitionPlan | None = None,
        replica: int = 0,
    ) -> "ModelSpec":
        """Spec that rebuilds ``model`` from a pickled snapshot — the
        convenience path when no module-level factory exists.  The snapshot
        is taken now, so later driver-side mutation is not reflected."""
        return cls(
            factory=pickle.loads,
            args=(pickle.dumps(model),),
            num_stages=num_stages,
            plan=plan,
            replica=replica,
        )

    def for_replica(self, replica: int) -> "ModelSpec":
        """This spec re-targeted at another replica index."""
        return replace(self, replica=replica)

    def build_model(self) -> Module:
        factory = self.factory
        if isinstance(factory, str):
            mod_name, sep, attr = factory.partition(":")
            if not sep:
                raise ValueError(
                    f"string factory must look like 'pkg.mod:attr', got {factory!r}"
                )
            factory = getattr(importlib.import_module(mod_name), attr)
        return factory(*self.args, **dict(self.kwargs))

    def to_wire(self) -> bytes:
        """The spec as one opaque byte blob for the socket runtime's init
        frame.  Process workers get the live object through the fork/spawn
        pickle machinery; socket workers may sit across a real link, so the
        spec crosses as explicit bytes — same pickle payload, but the
        boundary (and its size) is visible and testable."""
        return pickle.dumps(self)

    @staticmethod
    def from_wire(blob: bytes) -> "ModelSpec":
        spec = pickle.loads(blob)
        if not isinstance(spec, ModelSpec):
            raise TypeError(
                f"model-spec wire blob decoded to {type(spec).__name__}, "
                f"not ModelSpec"
            )
        return spec

    def build(self):
        """Construct ``(model, stages)`` — the worker-side mirror of the
        driver's partition (plan-based when a :class:`PartitionPlan` is
        carried, else ``partition_model(model, num_stages)``)."""
        from repro.nn.dropout import Dropout
        from repro.pipeline.partition import partition_model

        model = self.build_model()
        if self.replica:
            for m in model.modules():
                if isinstance(m, Dropout) and m.counter_based:
                    m.replica = self.replica
        if self.plan is not None:
            return model, self.plan.stages(model)
        return model, partition_model(model, self.num_stages)


@dataclass
class _StageBinding:
    """Where one worker's parameters live in the weight store: for stage
    ``stage`` the worker owns the parameters at ``positions`` within the
    stage's parameter list."""

    stage: int
    positions: list[int]
    params: list[Parameter]


@dataclass
class _BorrowBinding:
    """A module that reads versioned weights it does not own: ``module``
    gets the arrays at ``coords`` (list of (stage, position)) through
    ``load_borrowed`` on every weight load, with no Parameter rebinding."""

    module: Module
    coords: list[tuple[int, int]]


class WorkerCompute:
    """One worker's slice of the model: its segments of the stage graph plus
    the store coordinates of every parameter the slice reads."""

    def __init__(
        self,
        index: int,
        segments: list[Segment],
        bindings: list[_StageBinding],
        borrows: list[_BorrowBinding] | None = None,
    ):
        self.index = index
        self.segments = segments
        self.elements = [el for seg in segments for el in seg.elements]
        self.bindings = bindings
        self.borrows = borrows or []
        # Every descendant module, for cache snapshot/restore.
        seen: set[int] = set()
        self.all_modules: list[Module] = []
        for element in self.elements:
            for m in element.modules():
                if id(m) not in seen:
                    seen.add(id(m))
                    self.all_modules.append(m)
        self._counter_dropouts = [
            m for m in self.all_modules if isinstance(m, Dropout) and m.counter_based
        ]
        self._deferred = [m for m in self.all_modules if hasattr(m, "deferred_grads")]
        # Every stage this slice *reads* weights from — owned bindings plus
        # borrowed tied-weight coordinates.  The per-wave version gate is
        # the max requirement over these stages.
        self.read_stages: list[int] = sorted(
            {b.stage for b in self.bindings}
            | {s for borrow in self.borrows for s, _ in borrow.coords}
        )

    @property
    def stages(self) -> list[int]:
        return [b.stage for b in self.bindings]

    def load_weights(self, weights_for_stage) -> None:
        """Point this worker's parameters at the arrays
        ``weights_for_stage(stage)`` prescribes (whole-stage list; the
        worker picks its positions — a stage may be shared with another
        worker, on disjoint parameter sets), and hand borrowing modules
        their read-only arrays."""
        for b in self.bindings:
            arrays = weights_for_stage(b.stage)
            for pos, p in zip(b.positions, b.params):
                p.data = arrays[pos]
        for borrow in self.borrows:
            borrow.module.load_borrowed(
                [weights_for_stage(s)[pos] for s, pos in borrow.coords]
            )

    def set_dropout_slot(self, step: int, microbatch: int) -> None:
        """Position every counter-mode dropout in the slice for the next
        (re)forward — the runtime-safe mask coordinates."""
        for m in self._counter_dropouts:
            m.set_slot(step, microbatch)

    def zero_deferred(self) -> None:
        """Clear module-local deferred gradient buffers (step start)."""
        for m in self._deferred:
            for _, buf in m.deferred_grads():
                buf.fill(0.0)

    def enable_deferred(self) -> None:
        """Put tied modules of this slice in deferred-gradient mode.
        Process workers flip this once for the replica's lifetime (the
        replica only ever runs sliced steps); on the driver the backend
        scopes the mode to each train step instead."""
        for m in self._deferred:
            m.enable_deferred_grads()

    def unload_borrowed(self) -> None:
        """Detach borrowing modules from their per-slot version arrays so
        later monolithic use (evaluation, a different backend) reads the
        live ``Parameter.data`` again."""
        for borrow in self.borrows:
            unload = getattr(borrow.module, "unload_borrowed", None)
            if unload is not None:
                unload()

    def cache_state(self) -> list[dict]:
        """Snapshot of every per-microbatch forward cache in the slice (the
        ``_``-prefixed module attributes).  Mutable containers are copied one
        level deep: caches like Embedding's index stack are mutated in place
        by backward, so a reference snapshot would alias across the many
        in-flight microbatches; the arrays inside are never mutated (the
        module contract), so one level suffices."""
        return [
            {
                k: (v.copy() if isinstance(v, (list, dict, set)) else v)
                for k, v in m.__dict__.items()
                if _is_cache_attr(k)
            }
            for m in self.all_modules
        ]

    def load_cache_state(self, state: list[dict]) -> None:
        for m, attrs in zip(self.all_modules, state):
            for k, v in attrs.items():
                object.__setattr__(m, k, v)

    # -- persistent (non-cache) module state -----------------------------------
    def has_persistent_state(self) -> bool:
        """Whether any module in the slice carries persistent array state
        (BatchNorm running statistics, deferred tied-gradient buffers) that
        mutates during training.  Thread workers share the driver's modules
        so nothing extra is needed; process workers mutate their local
        replica and ship this state back to the driver each step."""
        return any(s for s in self.persistent_state())

    def persistent_state(self) -> list[dict]:
        """Non-underscore ndarray attributes per module: state that persists
        across microbatches (running stats, deferred tied-grad buffers), as
        opposed to the ``_`` caches (per-microbatch) and Parameters
        (versioned through the store).  Modules may exempt never-written
        constant buffers (e.g. a positional-encoding table) by naming them
        in ``pipeline_constant_attrs`` — shipping those back to the driver
        every step would be pure serialization waste."""
        return [
            {
                k: v
                for k, v in m.__dict__.items()
                if not k.startswith("_")
                and isinstance(v, np.ndarray)
                and k not in getattr(m, "pipeline_constant_attrs", ())
            }
            for m in self.all_modules
        ]

    def load_persistent_state(self, state: list[dict]) -> None:
        self.load_cache_state(state)  # same per-module attr restore


@dataclass
class WorkerGraph:
    """The fully sliced model: workers, edges, and routing metadata shared
    by both concurrent backends (and rebuilt identically inside process
    workers from the same deterministic construction)."""

    workers: list[WorkerCompute]
    edges: list[Edge]
    num_external: int
    sink: Segment

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def cross_edges(self) -> list[Edge]:
        """Edges that need a transport channel (src and dst on different
        workers; external-input edges are delivered by the driver, not a
        channel)."""
        return [e for e in self.edges if e.src is not None and not e.local]

    def ext_needs(self, worker: int) -> list[int]:
        """External input indices worker ``worker`` consumes."""
        return sorted({
            e.ext_index
            for e in self.edges
            if e.src is None and e.dst.worker == worker
        })

    def edge_spec(self) -> list[tuple[int, int, int]]:
        """(index, src_worker, dst_worker) triples — the structural
        fingerprint process workers validate against the driver's."""
        return [(e.index, e.src_worker, e.dst.worker) for e in self.edges]


def build_worker_graph(
    model: Module,
    stages,
    granularity: str = "layer",
    max_workers: int | None = None,
) -> WorkerGraph:
    """Slice ``model`` along the stage partition into the worker graph.

    ``granularity`` selects how fine the model's chain elements slice
    (``"sublayer"`` splits attention / FFN / norm+residual sub-chains into
    separate elements, so the finest partition yields strictly more workers
    than layers).  ``max_workers`` coalesces the distinct primary stages
    onto at most that many workers (contiguous, in stage order) — the
    segment→worker assignment is a knob of its own rather than the fixed
    one-worker-per-primary-stage rule, so a deep partition (large τ) can
    still run on a core-bounded host.

    Raises ``ValueError`` if the graph does not cover the model's parameters
    exactly (a model whose forward falls outside its declared graph would
    otherwise train silently wrong), if a node's elements are not in stage
    order, or if an edge would flow backward through the worker order (which
    would deadlock the interleaved schedule).
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    graph = flatten_graph(model, granularity)

    locator: dict[int, tuple[int, int]] = {}
    for s, stage in enumerate(stages):
        for pos, p in enumerate(stage.params):
            locator[id(p)] = (s, pos)

    model_param_ids = {id(p) for p in model.parameters()}
    owner_of_param: dict[int, Module] = {}
    shared_uses: list[tuple[Module, Module]] = []  # (owner element, reusing element)

    # Pass 1: primaries per element, segments per node.
    all_segments: list[Segment] = []
    segments_of_node: dict[str, list[Segment]] = {}
    seg_of_element: dict[int, Segment] = {}
    for node in graph.nodes:
        primaries: list[int | None] = []
        current: int | None = None
        for element in node.elements:
            element_stages: list[int] = []
            for p in element.parameters():
                if id(p) not in locator:
                    raise ValueError(
                        f"element {type(element).__name__} in node {node.name!r} "
                        f"has parameter {p.name!r} outside the stage partition"
                    )
                owner = owner_of_param.get(id(p))
                if owner is None:
                    owner_of_param[id(p)] = element
                elif owner is not element:
                    # A tied module reused at a second call site: read-only
                    # reuse, constrained below to the owner's worker.
                    shared_uses.append((owner, element))
                element_stages.append(locator[id(p)][0])
            if element_stages:
                current = min(element_stages)
            primaries.append(current)
        # Param-free head elements run where the node's first parametered
        # element runs (joins execute at their first consumer's stage).
        first_real = next((p for p in primaries if p is not None), 0)
        for i, p in enumerate(primaries):
            if p is not None:
                break
            primaries[i] = first_real
        if any(b > a for a, b in zip(primaries[1:], primaries)):
            raise ValueError(
                f"elements of node {node.name!r} are not in stage order; the "
                "partition does not follow the model's topological parameter order"
            )

        segs: list[Segment] = []
        group: list[Module] = []
        group_primary: int | None = None
        for element, primary in zip(node.elements, primaries):
            if group_primary is not None and primary != group_primary:
                segs.append(Segment(node, group))
                group = []
            group_primary = primary
            group.append(element)
        segs.append(Segment(node, group))
        # Record each segment's primary stage (all its elements share it);
        # worker indices replace these in pass 2.
        idx = 0
        for seg in segs:
            seg.worker = primaries[idx]  # temporarily: primary stage
            idx += len(seg.elements)
        for seg in segs:
            seg.topo = len(all_segments)
            all_segments.append(seg)
            for element in seg.elements:
                seg_of_element[id(element)] = seg
        segments_of_node[node.name] = segs

    owned_ids = set(owner_of_param)
    if owned_ids != model_param_ids:
        missing = len(model_param_ids - owned_ids)
        raise ValueError(
            f"stage graph covers {len(owned_ids)} of the model's "
            f"{len(model_param_ids)} parameters ({missing} missing) — "
            "the model's pipeline_graph()/pipeline_chain() must span its "
            "whole forward"
        )

    # Pass 2: workers — by default one per distinct primary stage, in stage
    # order; with ``max_workers`` the distinct primaries coalesce
    # contiguously (array_split arithmetic) onto fewer workers.  The
    # mapping is monotone in stage order either way, which is what keeps
    # every edge flowing forward through the worker order below.
    distinct = sorted({s.worker for s in all_segments})
    if max_workers is not None and max_workers < len(distinct):
        group_bounds = even_bounds(len(distinct), max_workers)
        worker_of_primary = {}
        for g in range(max_workers):
            for i in range(group_bounds[g], group_bounds[g + 1]):
                worker_of_primary[distinct[i]] = g
    else:
        worker_of_primary = {p: w for w, p in enumerate(distinct)}
    for seg in all_segments:
        seg.worker = worker_of_primary[seg.worker]

    for owner, user in shared_uses:
        w_owner = seg_of_element[id(owner)].worker
        w_user = seg_of_element[id(user)].worker
        if w_owner != w_user:
            raise ValueError(
                f"tied module shared by {type(owner).__name__} and "
                f"{type(user).__name__} would be split across workers "
                f"{w_owner} and {w_user}; tied call sites must share a stage"
            )

    # Pass 3: edges.
    edges: list[Edge] = []
    for node in graph.nodes:
        segs = segments_of_node[node.name]
        head = segs[0]
        for inp in node.inputs:
            if inp.startswith("ext:"):
                e = Edge(len(edges), None, head, ext_index=int(inp[4:]))
            else:
                src = segments_of_node[inp][-1]
                e = Edge(len(edges), src, head)
                src.out_edge = e
            head.in_edges.append(e)
            edges.append(e)
        for a, b in zip(segs, segs[1:]):
            e = Edge(len(edges), a, b)
            a.out_edge = e
            b.in_edges.append(e)
            edges.append(e)

    for e in edges:
        if e.src is None:
            continue
        if (e.src.worker, e.src.topo) >= (e.dst.worker, e.dst.topo):
            raise ValueError(
                f"edge {e.src.node.name!r} → {e.dst.node.name!r} flows backward "
                f"through the worker order (worker {e.src.worker} → {e.dst.worker}); "
                "the interleaved schedule would deadlock"
            )

    sink = segments_of_node[graph.nodes[-1].name][-1]
    sink.is_sink = True
    num_workers = max(s.worker for s in all_segments) + 1
    if sink.worker != num_workers - 1:
        raise ValueError(
            f"the model output lands on worker {sink.worker} of {num_workers}; "
            "the loss must sit on the last worker"
        )

    # Pass 4: per-worker computes (owned bindings + borrows).
    workers: list[WorkerCompute] = []
    for w in range(num_workers):
        segs = [s for s in all_segments if s.worker == w]
        by_stage: dict[int, _StageBinding] = {}
        borrow_modules: dict[int, _BorrowBinding] = {}
        for seg in segs:
            for element in seg.elements:
                for p in element.parameters():
                    if owner_of_param[id(p)] is not element:
                        continue  # tied reuse: bound at its owning element
                    s, pos = locator[id(p)]
                    binding = by_stage.setdefault(s, _StageBinding(s, [], []))
                    binding.positions.append(pos)
                    binding.params.append(p)
                for m in element.modules():
                    fn = getattr(m, "pipeline_borrows", None)
                    if fn is None or id(m) in borrow_modules:
                        continue
                    coords = []
                    for p in fn():
                        if id(p) not in locator:
                            raise ValueError(
                                f"{type(m).__name__} borrows parameter "
                                f"{p.name!r} outside the stage partition"
                            )
                        coords.append(locator[id(p)])
                    borrow_modules[id(m)] = _BorrowBinding(m, coords)
        workers.append(
            WorkerCompute(
                w, segs, [by_stage[s] for s in sorted(by_stage)],
                list(borrow_modules.values()),
            )
        )
    return WorkerGraph(
        workers=workers, edges=edges, num_external=graph.num_external, sink=sink
    )

