"""Slice a model into per-worker computational chains for the concurrent
runtime.

The partitioner (:mod:`repro.pipeline.partition`) splits *parameters* into
stages; to actually run stages concurrently we also need the *computation*
split into pieces a worker thread can own.  A model is sliceable when its
forward is a chain of single-input single-output modules whose parameter
registration order matches the chain order (true for every topologically
ordered model in this library).  Models expose the chain via a
``pipeline_chain()`` method; ``Sequential`` containers flatten
automatically; anything else is treated as one atomic element.

Chain elements are grouped into workers along the stage boundaries.  An
element whose parameters span a stage boundary (e.g. a residual block split
mid-way by a fine partition) is executed whole by the worker of its first
stage — each of its parameters still reads the weight version of *its own*
stage, so the delay semantics are untouched; only the available concurrency
shrinks.  In the degenerate case (un-sliceable model) a single worker runs
everything, which is still bit-for-bit correct, just not concurrent.

Workers interleave many in-flight microbatches on the same modules, so the
per-microbatch forward caches (the ``_``-prefixed attributes every layer
stashes for its backward, per the :mod:`repro.nn.module` contract) are
snapshotted after each forward and restored before the matching backward.
Persistent state (BatchNorm running stats, RNGs — no leading underscore) is
deliberately *not* snapshotted: it mutates in stage-local microbatch order,
exactly as in the sequential simulator.
"""

from __future__ import annotations

import importlib
import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module, Parameter, Sequential


def flatten_chain(model: Module) -> list[Module]:
    """Flatten ``model`` into an ordered list of chain elements.

    Preference order: an explicit ``pipeline_chain()`` method, then
    ``Sequential`` flattening, then the module itself as one atomic element.
    """
    chain = getattr(model, "pipeline_chain", None)
    if callable(chain):
        out: list[Module] = []
        for element in chain():
            out.extend(flatten_chain(element))
        return out
    if isinstance(model, Sequential):
        out = []
        for layer in model.layers:
            out.extend(flatten_chain(layer))
        return out
    return [model]


_CACHE_EXCLUDED = ("_parameters", "_modules")


def _is_cache_attr(name: str) -> bool:
    return name.startswith("_") and name not in _CACHE_EXCLUDED


@dataclass(frozen=True)
class ModelSpec:
    """A picklable recipe for rebuilding a model (and its stage partition)
    inside a spawned worker process.

    The process backend never ships live module objects to workers — a
    worker calls :meth:`build` to construct its own replica, then reads
    every weight it uses from the shared-memory mirror, so only the
    *shapes* (and any persistent non-parameter state, e.g. BatchNorm
    running statistics) of the replica matter.

    ``factory`` is either a picklable callable (a class or module-level
    function) or an import-path string ``"pkg.mod:attr"``; ``args`` /
    ``kwargs`` must pickle (NumPy ``Generator`` objects do, state and all,
    so seeded-rng constructor arguments reproduce the driver's build
    exactly).  ``num_stages=None`` means the finest partition granularity,
    as in :func:`repro.pipeline.partition_model`.
    """

    factory: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    num_stages: int | None = None

    @classmethod
    def from_model(cls, model: Module, num_stages: int | None = None) -> "ModelSpec":
        """Spec that rebuilds ``model`` from a pickled snapshot — the
        convenience path when no module-level factory exists.  The snapshot
        is taken now, so later driver-side mutation is not reflected."""
        return cls(factory=pickle.loads, args=(pickle.dumps(model),), num_stages=num_stages)

    def build_model(self) -> Module:
        factory = self.factory
        if isinstance(factory, str):
            mod_name, sep, attr = factory.partition(":")
            if not sep:
                raise ValueError(
                    f"string factory must look like 'pkg.mod:attr', got {factory!r}"
                )
            factory = getattr(importlib.import_module(mod_name), attr)
        return factory(*self.args, **dict(self.kwargs))

    def build(self):
        """Construct ``(model, stages)`` — the worker-side mirror of the
        driver's ``partition_model(model, num_stages)``."""
        from repro.pipeline.partition import partition_model

        model = self.build_model()
        return model, partition_model(model, self.num_stages)


@dataclass
class _StageBinding:
    """Where one worker's parameters live in the weight store: for stage
    ``stage`` the worker owns the parameters at ``positions`` within the
    stage's parameter list."""

    stage: int
    positions: list[int]
    params: list[Parameter]


class WorkerCompute:
    """One worker's slice of the model: a chain of modules plus the store
    coordinates of every parameter the slice reads."""

    def __init__(self, index: int, elements: list[Module], bindings: list[_StageBinding]):
        self.index = index
        self.elements = elements
        self.bindings = bindings
        # Every descendant module, for cache snapshot/restore.
        seen: set[int] = set()
        self.all_modules: list[Module] = []
        for element in elements:
            for m in element.modules():
                if id(m) not in seen:
                    seen.add(id(m))
                    self.all_modules.append(m)

    @property
    def stages(self) -> list[int]:
        return [b.stage for b in self.bindings]

    def forward(self, x):
        for element in self.elements:
            x = element(x)
        return x

    def backward(self, grad):
        for element in reversed(self.elements):
            grad = element.backward(grad)
        return grad

    def load_weights(self, weights_for_stage) -> None:
        """Point this worker's parameters at the arrays
        ``weights_for_stage(stage)`` prescribes (whole-stage list; the
        worker picks its positions — a stage may be shared with an adjacent
        worker, on disjoint parameter sets)."""
        for b in self.bindings:
            arrays = weights_for_stage(b.stage)
            for pos, p in zip(b.positions, b.params):
                p.data = arrays[pos]

    def cache_state(self) -> list[dict]:
        """Snapshot of every per-microbatch forward cache in the slice (the
        ``_``-prefixed module attributes).  Mutable containers are copied one
        level deep: caches like Embedding's index stack are mutated in place
        by backward, so a reference snapshot would alias across the many
        in-flight microbatches; the arrays inside are never mutated (the
        module contract), so one level suffices."""
        return [
            {
                k: (v.copy() if isinstance(v, (list, dict, set)) else v)
                for k, v in m.__dict__.items()
                if _is_cache_attr(k)
            }
            for m in self.all_modules
        ]

    def load_cache_state(self, state: list[dict]) -> None:
        for m, attrs in zip(self.all_modules, state):
            for k, v in attrs.items():
                object.__setattr__(m, k, v)

    # -- persistent (non-cache) module state -----------------------------------
    def has_persistent_state(self) -> bool:
        """Whether any module in the slice carries persistent array state
        (BatchNorm running statistics and the like) that mutates during
        training.  Thread workers share the driver's modules so nothing
        extra is needed; process workers mutate their local replica and ship
        this state back to the driver each step."""
        return any(s for s in self.persistent_state())

    def persistent_state(self) -> list[dict]:
        """Non-underscore ndarray attributes per module: state that persists
        across microbatches (running stats), as opposed to the ``_`` caches
        (per-microbatch) and Parameters (versioned through the store)."""
        return [
            {
                k: v
                for k, v in m.__dict__.items()
                if not k.startswith("_") and isinstance(v, np.ndarray)
            }
            for m in self.all_modules
        ]

    def load_persistent_state(self, state: list[dict]) -> None:
        self.load_cache_state(state)  # same per-module attr restore


def build_worker_computes(model: Module, stages) -> list[WorkerCompute]:
    """Slice ``model`` along the stage partition into worker computes.

    Raises ``ValueError`` if the chain does not cover the model's parameters
    exactly (a model whose forward falls outside its declared chain would
    otherwise train silently wrong).
    """
    elements = flatten_chain(model)

    locator: dict[int, tuple[int, int]] = {}
    for s, stage in enumerate(stages):
        for pos, p in enumerate(stage.params):
            locator[id(p)] = (s, pos)

    model_param_ids = {id(p) for p in model.parameters()}
    chain_param_ids: set[int] = set()

    # Assign each element a primary stage: the first stage of its own
    # parameters, else (param-free glue like activations) the stage of the
    # preceding element — bitwise equivalent wherever it runs, since it
    # reads no weights.
    primaries: list[int] = []
    current = 0
    for element in elements:
        element_stages: list[int] = []
        for p in element.parameters():
            if id(p) not in locator:
                raise ValueError(
                    f"chain element {type(element).__name__} has parameter "
                    f"{p.name!r} outside the stage partition"
                )
            if id(p) in chain_param_ids:
                raise ValueError(
                    f"parameter {p.name!r} appears in more than one chain element"
                )
            chain_param_ids.add(id(p))
            element_stages.append(locator[id(p)][0])
        if element_stages:
            current = min(element_stages)
        primaries.append(current)

    if chain_param_ids != model_param_ids:
        missing = len(model_param_ids - chain_param_ids)
        raise ValueError(
            f"pipeline chain covers {len(chain_param_ids)} of the model's "
            f"{len(model_param_ids)} parameters ({missing} missing) — "
            "the model's pipeline_chain() must span its whole forward"
        )
    if any(b > a for a, b in zip(primaries[1:], primaries)):
        raise ValueError(
            "chain elements are not in stage order; the partition does not "
            "follow the model's topological parameter order"
        )

    workers: list[WorkerCompute] = []
    group: list[Module] = []
    group_primary: int | None = None

    def flush() -> None:
        if not group:
            return
        by_stage: dict[int, _StageBinding] = {}
        for element in group:
            for p in element.parameters():
                s, pos = locator[id(p)]
                binding = by_stage.setdefault(s, _StageBinding(s, [], []))
                binding.positions.append(pos)
                binding.params.append(p)
        workers.append(
            WorkerCompute(len(workers), list(group), [by_stage[s] for s in sorted(by_stage)])
        )
        group.clear()

    for element, primary in zip(elements, primaries):
        if group_primary is None or primary != group_primary:
            flush()
            group_primary = primary
        group.append(element)
    flush()
    return workers
