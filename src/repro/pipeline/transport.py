"""Shared-memory transport for the multi-process pipeline backend.

Process workers cannot share ``Parameter`` objects or Python queues the way
the thread backend does, so everything that crosses a process boundary per
microbatch goes through ``multiprocessing.shared_memory`` segments managed
here:

* :class:`ShmRing` — a single-producer single-consumer ring buffer carrying
  one pipeline dataflow edge's payloads (activations, recompute
  activations, or gradients) between two stage workers — for linear models
  that means adjacent workers; for stage-*graph* models (the two-stream
  Transformer) each edge of the worker graph, skip edges included, gets its
  own ring per payload kind.  Slots are handed off seqlock-style through
  per-slot publication (``pub``) and consumption (``ack``) counters living
  in a small control segment; payload bytes are copied straight between
  NumPy buffers, so after the capacity of a channel is negotiated (at the
  first send of a step, growing when shapes change) **no pickling happens
  on the microbatch path**.
* :class:`SharedGradMailbox` — one weight-shaped float64 block per stage
  parameter.  Each worker owns a disjoint set of (stage, position) slots and
  writes its accumulated minibatch gradients there once per step; the driver
  copies them into the live ``Parameter.grad`` buffers after all workers
  report done (the done message is the synchronisation point, so the mailbox
  itself needs no flags).  Lifecycle: the driver creates the segment, every
  worker attaches without adopting cleanup ownership (see
  :func:`attach_shm`), and only the driver unlinks — after the workers have
  exited — so a crashing worker can never reap a segment its peers still
  read.  Deferred tied-gradient buffers (weights read on a worker that does
  not own them) do *not* go through the mailbox; they ride the
  persistent-state payload of the done message instead.

Ring protocol (one writer, one reader, ``slots`` slots):

* message ``m`` uses slot ``i = m % slots``; the writer waits until
  ``ack[i] == pub[i]`` (slot free), writes the headers + payload, then
  publishes ``pub[i] = m + 1``; the reader waits for ``pub[i] == m + 1``,
  copies the payload out, then releases ``ack[i] = m + 1``.  This is the
  seqlock slot-handoff invariant: payload bytes are complete before ``pub``
  advances, and fully copied out before ``ack`` does, so neither side ever
  reads (or overwrites) a half-written slot.
* messages are **multi-part**: :meth:`ShmRing.send_msg` accepts a bare
  array or a tuple of arrays/None (a stage-graph edge payload, e.g. the
  Transformer decoder's ``(d, memory, tgt_keep, src_keep)``), packed into
  one slot with one part header per component — still one pub/ack hand-off
  per logical payload.
* every message is tagged with the driver's step sequence number.  After an
  aborted step (worker exception / deadlock) readers may find stale
  messages from the old step in their rings; :meth:`ShmRing.recv_msg`
  returns the tag so callers can discard them, which self-heals the channel
  without any cross-process flush coordination.
* when a payload outgrows the data segment the writer waits for all
  outstanding messages to be consumed, unlinks the old segment and creates
  generation ``g+1`` with a larger slot capacity; the reader re-attaches
  when it observes the generation counter change.  Data segment names are
  derived from the channel name and generation, so no names travel through
  the ring.

Counter updates are aligned 8-byte stores read/written through NumPy int64
views; the seqlock ordering (payload before ``pub``, copy before ``ack``)
relies on the total-store-order guarantee of x86/x86-64.  Pure Python has
no portable memory fence, so on weakly-ordered architectures (aarch64,
ppc64le) the ``pub`` store could in principle become visible before the
payload bytes; :class:`ShmRing` emits a one-time warning there rather than
failing silently — use the thread backend (or contribute a fenced
transport) on such hosts.
"""

from __future__ import annotations

import platform
import time
import warnings
from multiprocessing import shared_memory

import numpy as np

_TSO_MACHINES = {"x86_64", "amd64", "i386", "i686", "x86"}
_warned_weak_order = False


def _check_memory_order() -> None:
    global _warned_weak_order
    machine = platform.machine().lower()
    if machine in _TSO_MACHINES or _warned_weak_order:
        return
    _warned_weak_order = True
    warnings.warn(
        f"shared-memory ring transport assumes x86 total store order; on "
        f"{machine!r} the slot handoff is not guaranteed race-free — prefer "
        f"the thread backend on this host",
        RuntimeWarning,
        stacklevel=3,
    )


class TransportError(RuntimeError):
    """Base of the typed transport failures.  Every channel implementation
    behind the ring/socket seam raises subclasses of this, so error paths
    dispatch on type instead of grepping message strings."""


class TransportTimeout(TransportError):
    """A channel operation exceeded its deadline — the pipeline analogue of
    ``queue.Empty``: the schedule's dataflow stalled (peer crashed, wedged,
    or never produced the message)."""


class TransportClosed(TransportError):
    """The peer's end of a channel is gone — connection reset, EOF
    mid-frame, or an operation on an endpoint already shut down.  Unlike a
    :class:`TransportTimeout` (the peer may merely be slow), the channel
    can never deliver again."""


# Names this process created (and therefore legitimately tracks); attaching
# to one of our own segments must not unregister it from the tracker.
_created_here: set[str] = set()


def create_shm(name: str, size: int) -> shared_memory.SharedMemory:
    """Create a segment and remember local ownership for :func:`attach_shm`."""
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _created_here.add(shm._name)  # noqa: SLF001 — the tracker-registered name
    return shm


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup ownership.

    On CPython < 3.13 every ``SharedMemory`` handle registers with the
    process-local ``resource_tracker``, so an attaching worker's exit would
    spuriously unlink segments the driver still owns (and spam "leaked
    shared_memory" warnings).  Only the creating process should track a
    segment; attachers unregister immediately.
    """
    shm = shared_memory.SharedMemory(name=name)
    if shm._name in _created_here:  # noqa: SLF001
        return shm
    try:  # pragma: no cover - depends on interpreter version internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass
    return shm


def unlink_quietly(shm: shared_memory.SharedMemory | None) -> None:
    """close() + unlink() ignoring races with peers that already unlinked."""
    if shm is None:
        return
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass


# Payload dtypes a ring can carry; the code is the index.  float64 covers
# every activation/gradient in this library (nn.module.DTYPE); the integer
# types cover token/index inputs entering stage 0.
_RING_DTYPES: tuple[np.dtype, ...] = tuple(
    np.dtype(d)
    for d in (
        np.float64, np.float32, np.int64, np.int32, np.int16, np.int8,
        np.uint8, np.bool_,
    )
)
_DTYPE_CODE = {d: i for i, d in enumerate(_RING_DTYPES)}

_MAX_DIMS = 8
# Messages are *multi-part*: one payload per graph edge hand-off, holding a
# bare array or a tuple of arrays/None (the stage-graph payloads, e.g. the
# Transformer decoder's ``(d, memory, tgt_keep, src_keep)``).  Per-slot base
# header int64s: [step, kind (0 = bare array, 1 = tuple), nparts, reserved];
# the data region then carries one part header per component —
# [present, dtype_code, ndim, nbytes, shape*_MAX_DIMS, perm*_MAX_DIMS] —
# followed by the 8-aligned payload blocks.
#
# ``perm`` is the axis order that makes the payload C-contiguous: arrays
# cross the ring in their *own* memory layout, not normalised to C order.
# NumPy kernels downstream are bit-deterministic only for a fixed memory
# layout (BLAS picks different accumulation orders for transposed inputs),
# and the thread backend hands successors the original array object — so
# layout preservation is part of the bit-for-bit equivalence contract.
_BASE_INTS = 4
_BASE_BYTES = 8 * _BASE_INTS
_PART_INTS = 4 + 2 * _MAX_DIMS
_PART_BYTES = 8 * _PART_INTS


def _align8(n: int) -> int:
    return (int(n) + 7) // 8 * 8

# Control segment int64s before the pub/ack arrays: [generation, slot_bytes].
_CTL_GEN = 0
_CTL_SLOT_BYTES = 1
_CTL_FIXED = 2

_SPIN_ROUNDS = 200  # hot-spin iterations before backing off to sleeps
_POLL_SLEEP = 1e-4


def _round_slot_bytes(nbytes: int) -> int:
    """Slot capacities are multiples of 8 so float64 payload views stay
    aligned, with minimum room for a scalar."""
    return max(64, (int(nbytes) + 7) // 8 * 8)


def _layout_perm(array: np.ndarray) -> tuple[int, ...] | None:
    """Axis order under which ``array`` is C-contiguous, or ``None``.

    Covers every permuted-contiguous layout (C, Fortran, transposed NCHW
    intermediates, …): transposing by the returned permutation yields a
    C-contiguous view, so the payload can cross the ring without changing
    the element order in memory.  Genuinely strided views (slices with
    gaps, broadcasts) return ``None`` and fall back to a C-order copy.

    Axes of size <= 1 carry arbitrary strides (NumPy's relaxed stride
    checking ignores them), so they are pinned ahead of the load-bearing
    axes instead of being ranked by those meaningless strides — a stride
    tie or an oversized dummy stride must never scramble the order of the
    real dimensions.
    """
    if array.flags.c_contiguous:
        return tuple(range(array.ndim))
    perm = tuple(sorted(
        range(array.ndim),
        key=lambda i: (array.shape[i] > 1, -array.strides[i], i),
    ))
    if array.transpose(perm).flags.c_contiguous:
        return perm
    return None


class ShmRing:
    """One directional SPSC array channel (see module docstring).

    Exactly one side constructs with ``create=True`` (the driver, which
    preallocates the control segment and the generation-1 data segment) and
    each worker endpoint attaches by name with ``role`` "send" or "recv".
    """

    def __init__(
        self,
        name: str,
        *,
        slots: int,
        slot_bytes: int = 1 << 16,
        create: bool = False,
        role: str | None = None,
    ):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        _check_memory_order()
        self.name = name
        self.slots = slots
        self.role = role
        self._msg = 0  # next message number on this endpoint
        self._gen = 1
        self.xfer_seconds = 0.0  # cumulative time spent copying payloads
        # Writer: (slot, view) staked out by reserve(), published by
        # commit_if_reserved().  Reader: count of views handed out by
        # recv_msg_view() and not yet release()d, plus retired data
        # generations kept mapped while any such view could reference them.
        self._reserved: tuple[int, np.ndarray] | None = None
        self._open_pins = 0
        self._retired: list = []
        ctl_size = 8 * (_CTL_FIXED + 2 * slots)
        if create:
            self._ctl = create_shm(self._ctl_name(), ctl_size)
            self._ctl_ints = np.ndarray(
                (_CTL_FIXED + 2 * slots,), dtype=np.int64, buffer=self._ctl.buf
            )
            self._ctl_ints[:] = 0
            self._ctl_ints[_CTL_GEN] = 1
            self._ctl_ints[_CTL_SLOT_BYTES] = _round_slot_bytes(slot_bytes)
            self._slot_bytes = _round_slot_bytes(slot_bytes)
            self._data = create_shm(
                self._data_name(1), slots * (_BASE_BYTES + self._slot_bytes)
            )
        else:
            self._ctl = attach_shm(self._ctl_name())
            self._ctl_ints = np.ndarray(
                (_CTL_FIXED + 2 * slots,), dtype=np.int64, buffer=self._ctl.buf
            )
            self._gen = int(self._ctl_ints[_CTL_GEN])
            self._slot_bytes = int(self._ctl_ints[_CTL_SLOT_BYTES])
            self._data = attach_shm(self._data_name(self._gen))
        self._pub = self._ctl_ints[_CTL_FIXED:_CTL_FIXED + slots]
        self._ack = self._ctl_ints[_CTL_FIXED + slots:]

    # -- naming ----------------------------------------------------------------
    def _ctl_name(self) -> str:
        return f"{self.name}c"

    def _data_name(self, gen: int) -> str:
        return f"{self.name}d{gen}"

    @property
    def slot_bytes(self) -> int:
        """Capacity of the currently attached data generation.  Cached per
        attach: the live control value may already describe a newer
        generation this endpoint has not switched to yet."""
        return self._slot_bytes

    # -- waiting ---------------------------------------------------------------
    @staticmethod
    def _wait(predicate, deadline: float, what: str) -> None:
        spins = 0
        while not predicate():
            spins += 1
            if spins < _SPIN_ROUNDS:
                continue
            if time.perf_counter() > deadline:
                raise TransportTimeout(what)
            time.sleep(_POLL_SLEEP)

    # -- writer side ----------------------------------------------------------
    def send_msg(
        self, payload: "np.ndarray | tuple", step: int, timeout: float
    ) -> None:
        """Copy one message — a bare array, or a tuple of arrays/None (a
        stage-graph edge payload) — into the next free slot, tagged with
        ``step``.  The whole message occupies one slot, so the pub/ack
        hand-off stays one-per-payload however many components it has."""
        self._reserved = None  # a stale reservation is superseded by this send
        deadline = time.perf_counter() + timeout
        m = self._msg
        i = m % self.slots
        self._wait(
            lambda: self._ack[i] == self._pub[i], deadline,
            f"ring {self.name}: peer never freed slot {i} (message {m})",
        )
        kind = 1 if isinstance(payload, tuple) else 0
        parts = list(payload) if kind else [payload]
        prepared: list[tuple | None] = []  # (array, code, perm) per present part
        need = _PART_BYTES * len(parts)
        for part in parts:
            if part is None:
                prepared.append(None)
                continue
            array = np.asarray(part)
            if array.ndim > _MAX_DIMS:
                raise ValueError(f"array rank {array.ndim} exceeds {_MAX_DIMS}")
            code = _DTYPE_CODE.get(array.dtype)
            if code is None:
                raise TypeError(f"unsupported ring dtype {array.dtype}")
            perm = _layout_perm(array)
            if perm is None:  # strided view with gaps: C-copy is the best we can do
                perm = tuple(range(array.ndim))
            prepared.append((array, code, perm))
            need = _align8(need) + array.nbytes
        if need > self.slot_bytes:
            self._grow(need, deadline)
        base = i * (_BASE_BYTES + self.slot_bytes)
        hdr = np.ndarray((_BASE_INTS,), dtype=np.int64, buffer=self._data.buf, offset=base)
        hdr[0] = step
        hdr[1] = kind
        hdr[2] = len(parts)
        hdr[3] = 0
        off = _PART_BYTES * len(parts)
        for p, item in enumerate(prepared):
            phdr = np.ndarray(
                (_PART_INTS,), dtype=np.int64, buffer=self._data.buf,
                offset=base + _BASE_BYTES + p * _PART_BYTES,
            )
            if item is None:
                phdr[:] = 0
                continue
            array, code, perm = item
            view = array.transpose(perm)  # C-contiguous in memory order
            off = _align8(off)
            phdr[0] = 1
            phdr[1] = code
            phdr[2] = array.ndim
            phdr[3] = off
            phdr[4:4 + array.ndim] = view.shape
            phdr[4 + _MAX_DIMS:4 + _MAX_DIMS + array.ndim] = perm
            t0 = time.perf_counter()
            dst = np.ndarray(
                view.shape, dtype=array.dtype, buffer=self._data.buf,
                offset=base + _BASE_BYTES + off,
            )
            np.copyto(dst, view)
            self.xfer_seconds += time.perf_counter() - t0
            off += array.nbytes
        self._pub[i] = m + 1  # publish last: payload is complete
        self._msg = m + 1

    def send(self, array: np.ndarray, step: int, timeout: float) -> None:
        """Single-array convenience wrapper over :meth:`send_msg`."""
        self.send_msg(np.asarray(array), step, timeout)

    # -- in-ring compute (zero-copy send path) ---------------------------------
    def reserve(
        self, shape, dtype, step: int, timeout: float
    ) -> np.ndarray | None:
        """Stake out the next free slot and return a writable C-order view
        of it, so the producer can compute its payload straight into the
        ring; :meth:`commit_if_reserved` then publishes without any copy.
        Headers (step tag, shape, identity perm) are written here, before
        the payload — publication order is unchanged because ``pub`` only
        advances at commit time.  Returns ``None`` for payloads the
        zero-copy path cannot carry (unsupported dtype, rank > 8); the
        caller falls back to a plain :meth:`send_msg`."""
        self._reserved = None
        dtype = np.dtype(dtype)
        code = _DTYPE_CODE.get(dtype)
        ndim = len(shape)
        if code is None or ndim > _MAX_DIMS:
            return None
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        need = _align8(_PART_BYTES) + nbytes
        deadline = time.perf_counter() + timeout
        m = self._msg
        i = m % self.slots
        self._wait(
            lambda: self._ack[i] == self._pub[i], deadline,
            f"ring {self.name}: peer never freed slot {i} (message {m})",
        )
        if need > self.slot_bytes:
            self._grow(need, deadline)
        base = i * (_BASE_BYTES + self.slot_bytes)
        hdr = np.ndarray((_BASE_INTS,), dtype=np.int64, buffer=self._data.buf, offset=base)
        hdr[0] = step
        hdr[1] = 0  # bare array
        hdr[2] = 1
        hdr[3] = 0
        off = _align8(_PART_BYTES)
        phdr = np.ndarray(
            (_PART_INTS,), dtype=np.int64, buffer=self._data.buf,
            offset=base + _BASE_BYTES,
        )
        phdr[:] = 0
        phdr[0] = 1
        phdr[1] = code
        phdr[2] = ndim
        phdr[3] = off
        phdr[4:4 + ndim] = shape
        phdr[4 + _MAX_DIMS:4 + _MAX_DIMS + ndim] = range(ndim)
        view = np.ndarray(
            tuple(shape), dtype=dtype, buffer=self._data.buf,
            offset=base + _BASE_BYTES + off,
        )
        self._reserved = (i, view)
        return view

    def commit_if_reserved(self, payload) -> bool:
        """Publish the reserved slot if ``payload`` *is* its view (identity
        check — the producer computed in-ring); returns False otherwise so
        the caller can fall back to a copying send."""
        if self._reserved is None:
            return False
        i, view = self._reserved
        if payload is not view:
            return False
        self._reserved = None
        self._pub[i] = self._msg + 1  # publish last: payload is complete
        self._msg += 1
        return True

    def cancel_reserved(self) -> None:
        """Drop a pending reservation (nothing was published; the slot is
        simply reused by the next send or reserve)."""
        self._reserved = None

    def _grow(self, nbytes: int, deadline: float) -> None:
        """Replace the data segment with a roomier generation.  Waits for the
        reader to drain everything in flight first, so no message ever spans
        two generations."""
        self._wait(
            lambda: bool((self._ack[:] == self._pub[:]).all()), deadline,
            f"ring {self.name}: cannot grow while peer holds unread messages",
        )
        new_bytes = _round_slot_bytes(max(2 * nbytes, 2 * self.slot_bytes))
        unlink_quietly(self._data)
        gen = self._gen + 1
        self._data = create_shm(
            self._data_name(gen), self.slots * (_BASE_BYTES + new_bytes)
        )
        # slot_bytes must be visible no later than the generation bump.
        self._ctl_ints[_CTL_SLOT_BYTES] = new_bytes
        self._ctl_ints[_CTL_GEN] = gen
        self._gen = gen
        self._slot_bytes = new_bytes

    # -- reader side ----------------------------------------------------------
    def recv_msg(self, timeout: float) -> tuple[int, "np.ndarray | tuple"]:
        """Return ``(step_tag, payload)`` for the next message, copying every
        component out of shared memory.  Callers discard tags from aborted
        steps (see module docstring)."""
        deadline = time.perf_counter() + timeout
        m = self._msg
        i = m % self.slots
        self._wait(
            lambda: self._pub[i] == m + 1, deadline,
            f"ring {self.name}: message {m} never arrived",
        )
        if self._ctl_ints[_CTL_GEN] != self._gen:
            self._reattach()
        base = i * (_BASE_BYTES + self.slot_bytes)
        hdr = np.ndarray((_BASE_INTS,), dtype=np.int64, buffer=self._data.buf, offset=base)
        step = int(hdr[0])
        kind = int(hdr[1])
        nparts = int(hdr[2])
        parts: list[np.ndarray | None] = []
        for p in range(nparts):
            phdr = np.ndarray(
                (_PART_INTS,), dtype=np.int64, buffer=self._data.buf,
                offset=base + _BASE_BYTES + p * _PART_BYTES,
            )
            if int(phdr[0]) == 0:
                parts.append(None)
                continue
            dtype = _RING_DTYPES[int(phdr[1])]
            ndim = int(phdr[2])
            off = int(phdr[3])
            shape = tuple(int(d) for d in phdr[4:4 + ndim])
            perm = tuple(int(d) for d in phdr[4 + _MAX_DIMS:4 + _MAX_DIMS + ndim])
            t0 = time.perf_counter()
            src = np.ndarray(
                shape, dtype=dtype, buffer=self._data.buf, offset=base + _BASE_BYTES + off
            )
            out = src.copy()
            self.xfer_seconds += time.perf_counter() - t0
            # Undo the send-side transpose: the result has the sender's
            # exact shape *and* memory layout (see _layout_perm).
            inv = np.argsort(perm) if ndim else ()
            parts.append(out.transpose(inv))
        self._ack[i] = m + 1  # release after the copies are complete
        self._msg = m + 1
        return step, (tuple(parts) if kind else parts[0])

    def recv(self, timeout: float) -> tuple[int, np.ndarray]:
        """Single-array convenience wrapper over :meth:`recv_msg`."""
        return self.recv_msg(timeout)  # type: ignore[return-value]

    def recv_msg_view(
        self, timeout: float
    ) -> tuple[int, "np.ndarray | tuple", object]:
        """Like :meth:`recv_msg` but zero-copy where possible: a bare
        single-array message is returned as a **read-only view into the
        ring slot** plus a pin token; the slot stays unacked (the writer
        cannot reuse it) until :meth:`release` is called with the token.
        Multi-part / tuple payloads take the copying path and are acked
        immediately (token ``None``).  Pin discipline is the caller's: the
        pipeline releases a microbatch's pins when its backward wave ends,
        and at most N messages per ring are pinned per step against 2N
        slots, so the writer's slot wait can only ever be on a message the
        reader already finished with."""
        deadline = time.perf_counter() + timeout
        m = self._msg
        i = m % self.slots
        self._wait(
            lambda: self._pub[i] == m + 1, deadline,
            f"ring {self.name}: message {m} never arrived",
        )
        if self._ctl_ints[_CTL_GEN] != self._gen:
            self._reattach()
        base = i * (_BASE_BYTES + self.slot_bytes)
        hdr = np.ndarray((_BASE_INTS,), dtype=np.int64, buffer=self._data.buf, offset=base)
        step = int(hdr[0])
        kind = int(hdr[1])
        nparts = int(hdr[2])
        if kind == 0 and nparts == 1:
            phdr = np.ndarray(
                (_PART_INTS,), dtype=np.int64, buffer=self._data.buf,
                offset=base + _BASE_BYTES,
            )
            if int(phdr[0]) == 1:
                dtype = _RING_DTYPES[int(phdr[1])]
                ndim = int(phdr[2])
                off = int(phdr[3])
                shape = tuple(int(d) for d in phdr[4:4 + ndim])
                perm = tuple(int(d) for d in phdr[4 + _MAX_DIMS:4 + _MAX_DIMS + ndim])
                view = np.ndarray(
                    shape, dtype=dtype, buffer=self._data.buf,
                    offset=base + _BASE_BYTES + off,
                )
                view.setflags(write=False)
                inv = np.argsort(perm) if ndim else ()
                self._msg = m + 1
                self._open_pins += 1
                return step, view.transpose(inv), (i, m)
        # Copying path (tuple payloads, absent parts): the message counter
        # has not advanced, so recv_msg re-reads this same slot, copies it
        # out and acks it.
        step, payload = self.recv_msg(timeout)
        return step, payload, None

    def release(self, token) -> None:
        """Ack a slot pinned by :meth:`recv_msg_view` — the writer may now
        reuse it.  Out-of-order release across slots is fine (ack counters
        are per-slot)."""
        i, m = token
        self._ack[i] = m + 1
        self._open_pins -= 1
        if self._open_pins == 0 and self._retired:
            for shm in self._retired:
                try:
                    shm.close()
                except Exception:
                    pass
            self._retired.clear()

    def _reattach(self) -> None:
        # Seqlock read of (gen, slot_bytes): retry if the writer swapped
        # generations between the two loads.
        while True:
            gen = int(self._ctl_ints[_CTL_GEN])
            if gen == self._gen:
                return
            try:
                data = attach_shm(self._data_name(gen))
            except FileNotFoundError:
                continue  # writer is mid-swap; its next store publishes gen
            slot_bytes = int(self._ctl_ints[_CTL_SLOT_BYTES])
            if int(self._ctl_ints[_CTL_GEN]) != gen:
                data.close()
                continue
            if self._open_pins > 0:
                # Defensive: a pinned view still references the old
                # generation's mapping; keep it mapped until the pins
                # drain.  (Unreachable in the pipeline protocol — the
                # writer only grows when everything is acked, and pins
                # block acks — but closing a mapped view would turn a
                # protocol bug into a segfault.)
                self._retired.append(self._data)
            else:
                self._data.close()
            self._data = data
            self._gen = gen
            self._slot_bytes = slot_bytes
            return

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Detach this endpoint (does not unlink)."""
        self._reserved = None
        for shm in (*self._retired, self._data, self._ctl):
            try:
                shm.close()
            except Exception:
                pass
        self._retired.clear()

    def unlink(self) -> None:
        """Remove the segments (driver-side, after workers exited).  The
        current data generation is read from the control header so segments
        grown by a worker are reclaimed too.  The grown segment is attached
        with a *plain* ``SharedMemory`` (not :func:`attach_shm`): attach
        registers it with the resource tracker and ``unlink`` unregisters
        it, which balances; routing through ``attach_shm`` would unregister
        twice and spray KeyError tracebacks at interpreter exit."""
        try:
            gen = int(self._ctl_ints[_CTL_GEN])
        except Exception:
            gen = self._gen
        if gen != self._gen:
            try:
                self._data.close()
                self._data = shared_memory.SharedMemory(name=self._data_name(gen))
            except Exception:
                pass
        unlink_quietly(self._data)
        unlink_quietly(self._ctl)


# -- coarsened done-report lanes ----------------------------------------------
#
# With fused wave programs a worker sends ONE done report per command block
# instead of one per wave; the per-wave cost detail rides along as "lanes":
# one (num_waves, busy_seconds, stall_seconds, xfer_seconds) record per
# executed block.  The per-worker busy/stall scalars the stats consume are
# defined as the lane sums, so coarsening can never double-count a block's
# stall across its member waves (the RuntimeStats fraction invariant).


def pack_lanes(lanes) -> tuple:
    """Normalise a worker's per-block lane list for the done mailbox: a
    tuple of ``(num_waves, busy, stall, xfer)`` tuples — plain ints/floats,
    safe to pickle across the process and socket transports."""
    return tuple(
        (int(n), float(busy), float(stall), float(xfer))
        for n, busy, stall, xfer in lanes
    )


def unpack_lanes(obj) -> list[tuple[int, float, float, float]]:
    """Validate and rebuild a packed lane tuple from a done report.  A
    malformed payload raises :class:`TransportError` (the done path's
    typed-failure convention) instead of corrupting the stats."""
    try:
        lanes = [
            (int(n), float(busy), float(stall), float(xfer))
            for n, busy, stall, xfer in obj
        ]
    except (TypeError, ValueError) as exc:
        raise TransportError(f"malformed done-report lanes: {obj!r}") from exc
    if any(n < 0 or busy < 0 or stall < 0 or xfer < 0 for n, busy, stall, xfer in lanes):
        raise TransportError(f"negative field in done-report lanes: {lanes!r}")
    return lanes


# -- per-stage parameter-shaped blocks ----------------------------------------


def stage_block_layout(
    stage_shapes: list[list[tuple[int, ...]]],
) -> tuple[list[list[int]], int]:
    """Byte offsets of one float64 array per (stage, param), 8-aligned, plus
    the total block size.  The same layout function is used by the gradient
    mailbox and the shared weight mirror so driver and workers always agree.
    """
    offsets: list[list[int]] = []
    cursor = 0
    for shapes in stage_shapes:
        row = []
        for shape in shapes:
            row.append(cursor)
            cursor += int(np.prod(shape, dtype=np.int64)) * 8
        offsets.append(row)
    return offsets, cursor


def block_views(
    buf, stage_shapes: list[list[tuple[int, ...]]], base: int,
    offsets: list[list[int]],
) -> list[list[np.ndarray]]:
    """float64 views over one stage-block at byte ``base`` of ``buf``."""
    views: list[list[np.ndarray]] = []
    for shapes, offs in zip(stage_shapes, offsets):
        views.append([
            np.ndarray(shape, dtype=np.float64, buffer=buf, offset=base + off)
            for shape, off in zip(shapes, offs)
        ])
    return views


class SharedGradMailbox:
    """Per-parameter gradient hand-off from process workers to the driver.

    Workers write their accumulated gradients for the (stage, position)
    slots they own; the driver copies every slot into ``Parameter.grad``
    once all workers reported done.  Ownership is disjoint by construction
    (each parameter belongs to exactly one worker compute), so no locking
    is needed — but with the overlapped optimizer boundary the done queue
    is no longer a per-minibatch barrier, so every stage block carries a
    **step stamp**: the worker stamps its stages with the step sequence
    after the gradient writes, and the driver verifies all stamps match
    the step it is collecting.

    The mailbox is **double-buffered by step parity** (step ``seq`` uses
    block ``seq % 2``): with two steps in flight a worker may legitimately
    finish step t+1 — and write its gradients — before the driver has
    folded step t's, so consecutive steps must not share a block.  Three
    steps can never be outstanding (the driver collects t before issuing
    t+2), so two blocks suffice, and a stamp mismatch still means lost
    gradients and fails loudly instead of folding a stale or torn block.

    With hybrid data × pipeline parallelism the mailbox grows a **replica
    axis**: one independent double-buffered lane per pipeline replica
    (layout ``[replica][parity][stage]``, stamps ``(R, 2, S)``), all in one
    shared-memory block so a single mailbox name serves the whole replica
    group.  Every accessor takes ``replica`` (default 0), and
    ``num_replicas=1`` is the original single-lane mailbox bit for bit.
    """

    def __init__(
        self,
        name: str,
        stage_shapes: list[list[tuple[int, ...]]],
        create: bool = False,
        num_replicas: int = 1,
    ):
        self.name = name
        self.stage_shapes = stage_shapes
        self.num_replicas = num_replicas
        offsets, total = stage_block_layout(stage_shapes)
        stamp_bytes = 8 * 2 * len(stage_shapes) * num_replicas
        if create:
            self._shm = create_shm(
                name, max(stamp_bytes + 2 * total * num_replicas, 8)
            )
        else:
            self._shm = attach_shm(name)
        self._stamps = np.ndarray(
            (num_replicas, 2, len(stage_shapes)), dtype=np.int64,
            buffer=self._shm.buf,
        )
        if create:
            self._stamps[:] = 0
        self._views = [
            [
                block_views(
                    self._shm.buf, stage_shapes,
                    stamp_bytes + (r * 2 + p) * total, offsets,
                )
                for p in range(2)
            ]
            for r in range(num_replicas)
        ]

    def write(
        self, stage: int, pos: int, grad: np.ndarray, seq: int, replica: int = 0
    ) -> None:
        np.copyto(self._views[replica][seq % 2][stage][pos], grad)

    def read(self, stage: int, pos: int, seq: int, replica: int = 0) -> np.ndarray:
        return self._views[replica][seq % 2][stage][pos]

    def stamp(self, stage: int, step: int, replica: int = 0) -> None:
        """Mark ``stage``'s parity block in ``replica``'s lane as holding
        ``step``'s gradients (worker side, after all of its writes for the
        step)."""
        self._stamps[replica][step % 2][stage] = step

    def check_stamps(self, step: int, replica: int = 0) -> None:
        """Driver side: every stage block of ``step``'s parity in
        ``replica``'s lane must carry ``step``'s stamp."""
        stamps = [int(s) for s in self._stamps[replica][step % 2]]
        if any(s != step for s in stamps):
            raise RuntimeError(
                f"gradient mailbox stamps {stamps} (replica {replica}) do "
                f"not all match step {step}; a worker's gradients were lost "
                "or overwritten"
            )

    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        unlink_quietly(self._shm)
