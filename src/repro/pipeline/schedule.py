"""Pipeline occupancy schedules — the Figure 1 cartoon, made executable.

Builds a (stage × time-slot) grid of what each stage is doing (forward F,
backward B, bubble '.') for each method, from which bubble fractions are
measured and checked against the closed forms (GPipe ``(P−1)/(N+P−1)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.delays import Method

FORWARD = 1
BACKWARD = 2
IDLE = 0
_GLYPH = {IDLE: ".", FORWARD: "F", BACKWARD: "B"}


@dataclass
class ScheduleGrid:
    """Occupancy grid: ``grid[stage, slot]`` ∈ {IDLE, FORWARD, BACKWARD}."""

    grid: np.ndarray
    method: Method
    num_microbatches: int

    @property
    def num_stages(self) -> int:
        return self.grid.shape[0]

    @property
    def num_slots(self) -> int:
        return self.grid.shape[1]

    def render(self, max_slots: int | None = None) -> str:
        """ASCII rendering, one row per stage."""
        cols = self.num_slots if max_slots is None else min(max_slots, self.num_slots)
        lines = []
        for s in range(self.num_stages):
            row = "".join(_GLYPH[int(v)] for v in self.grid[s, :cols])
            lines.append(f"stage {s:>2} |{row}|")
        return "\n".join(lines)


def bubble_fraction(schedule: ScheduleGrid, steady_state_only: bool = False) -> float:
    """Fraction of (stage, slot) cells that are idle.

    ``steady_state_only`` drops the fill region (first 2P slots) *and* the
    drain region (last 2P slots) so bubble-free methods measure exactly 0
    in steady state.  A grid too small to have a steady-state region at all
    (N + P small: the pipe never leaves fill/drain) reports 0.0 rather than
    measuring a lone fill or drain slot as a spurious bubble.
    """
    grid = schedule.grid
    if steady_state_only:
        edge = 2 * schedule.num_stages
        if grid.shape[1] <= 2 * edge:
            return 0.0  # no steady-state region exists
        grid = grid[:, edge:-edge]
    if grid.size == 0:
        return 0.0
    return float((grid == IDLE).mean())


def build_schedule(
    method: Method | str,
    num_stages: int,
    num_microbatches: int,
    num_minibatches: int = 2,
) -> ScheduleGrid:
    """Construct the occupancy grid for ``num_minibatches`` minibatches.

    * GPipe: all N forwards flow through, then all N backwards; the pipe
      drains completely at every minibatch boundary (synchronous update).
    * PipeDream / PipeMare: steady-state 1F1B with no drain — each stage
      alternates forward and backward work with no idle slots once filled
      (backward is modelled as one slot, like forward, as in Figure 1).
    """
    method = Method(method)
    p, n = num_stages, num_microbatches
    if p < 1 or n < 1 or num_minibatches < 1:
        raise ValueError("num_stages, num_microbatches, num_minibatches must be >= 1")

    if method is Method.GPIPE:
        span = 2 * (n + p - 1)  # fill+drain per minibatch
        grid = np.zeros((p, span * num_minibatches), dtype=np.int8)
        for mb in range(num_minibatches):
            base = mb * span
            for j in range(n):
                for s in range(p):
                    grid[s, base + j + s] = FORWARD
            for j in range(n):
                for s in range(p):
                    # backward flows last stage -> first
                    grid[s, base + (n + p - 1) + j + (p - 1 - s)] = BACKWARD
        return ScheduleGrid(grid=grid, method=method, num_microbatches=n)

    # Bubble-free 1F1B: each stage s handles fwd of microbatch m at slot
    # 2m + s and bkwd of microbatch m at slot 2m + (2P - 1 - s); in steady
    # state each stage does one F and one B per 2 slots with no idle.
    total_micro = n * num_minibatches
    span = 2 * total_micro + 2 * p
    grid = np.zeros((p, span), dtype=np.int8)
    for m in range(total_micro):
        for s in range(p):
            grid[s, 2 * m + s] = FORWARD
            grid[s, 2 * m + (2 * p - 1 - s)] = BACKWARD
    return ScheduleGrid(grid=grid, method=method, num_microbatches=n)


def stage_programs(
    method: Method | str,
    num_stages: int,
    num_microbatches: int,
    recompute: bool = False,
) -> list[list[tuple[str, int]]]:
    """Per-stage ordered work lists for one minibatch, read off the grid.

    Returns ``programs[stage] = [(op, microbatch), ...]`` with op ∈
    {"F", "B"} (plus "R" when ``recompute``), in the slot order the
    occupancy grid prescribes.  This is the program each worker of the
    concurrent runtime executes verbatim: occurrences of F (resp. B) in a
    row are microbatches 0..N−1 in order, so the grid *is* the schedule.

    The same programs drive stage-*graph* workers (multi-node models like
    the two-stream Transformer): a worker's "F"/"R" runs all its graph
    segments in topological order and its "B" runs them in reverse, and
    because every graph edge flows forward through the worker order
    (enforced by :func:`repro.pipeline.stage_compute.build_worker_graph`),
    each dependency points from an earlier grid slot to a later one — the
    dataflow stays deadlock-free with skip edges, exactly as for chains.

    With ``recompute``, a recompute pass "R" for microbatch j is inserted
    directly after its forward — the recompute wave chases the forward wave
    down the pipe (stage s's R_j input is stage s−1's R_j output), which
    keeps the dataflow deadlock-free while matching the simulator's
    fwd_j → recompute_j → bkwd_j ordering per stage.
    """
    schedule = build_schedule(method, num_stages, num_microbatches, num_minibatches=1)
    programs: list[list[tuple[str, int]]] = []
    for s in range(num_stages):
        ops: list[tuple[str, int]] = []
        next_f = next_b = 0
        for cell in schedule.grid[s]:
            if cell == FORWARD:
                ops.append(("F", next_f))
                if recompute:
                    ops.append(("R", next_f))
                next_f += 1
            elif cell == BACKWARD:
                ops.append(("B", next_b))
                next_b += 1
        programs.append(ops)
    return programs
