"""Concurrent asynchronous pipeline runtime.

Where :class:`repro.pipeline.PipelineExecutor` *simulates* pipeline delay by
processing microbatches one at a time, this runtime actually runs the
pipeline: every stage slice executes on its own worker, following the
interleaved occupancy schedule from :mod:`repro.pipeline.schedule` for real
— 1F1B for the asynchronous methods, fill/drain for GPipe and T3 warmup
steps.  Weight versions are read at the exact ``v_fwd`` / ``v_bkwd`` /
recompute slots the delay profile prescribes, so the per-step losses and
final weights are **bit-for-bit identical** to the sequential simulator
(enforced by ``tests/test_runtime_equivalence.py``,
``tests/test_runtime_process.py`` and ``tests/test_runtime_translation.py``).

The model is sliced along the stage partition into a **worker graph**
(:func:`repro.pipeline.stage_compute.build_worker_graph`): each worker owns
one or more segments of the model's stage-program graph, and every dataflow
edge between workers gets its own activation / recompute / gradient
channel.  Purely linear models degenerate to the familiar chain (worker w
talks only to w±1); two-stream models like the Transformer add skip edges —
the target-embedding output jumps from the embedding worker straight to the
cross-attention join, and the encoder output follows — with the same
worker programs, because every edge flows forward through the worker order
(validated at build time), which keeps 1F1B and fill/drain deadlock-free.

Two worker backends share one scheduler loop (:meth:`train_step`):

* :class:`ThreadWorkerPool` (``backend="thread"``, the ``async`` runtime) —
  per-stage worker threads with one in-process queue per graph edge.
  NumPy kernels release the GIL, which is where the wall-clock overlap
  comes from; Python-level glue still serialises on it.
* :class:`ProcessWorkerPool` (``backend="process"``) — per-stage worker
  *processes*, sidestepping the GIL entirely.  Each worker rebuilds its
  slice of the worker graph from a picklable
  :class:`~repro.pipeline.stage_compute.ModelSpec` (nothing live is
  shipped), reads weight versions from a
  :class:`~repro.pipeline.weight_store.SharedWeightMirror` the driver
  republishes after every optimizer step, and exchanges edge payloads with
  its peers over the pickle-free shared-memory ring buffers of
  :mod:`repro.pipeline.transport` (one ring per graph edge per direction;
  multi-part messages carry tuple payloads such as the decoder's
  ``(d, memory, masks…)``).  Accumulated gradients return through a
  :class:`~repro.pipeline.transport.SharedGradMailbox` and the optimizer
  still steps once per minibatch on the driver.

Why equivalence holds despite concurrency:

* every weight version a minibatch reads already exists at the minibatch
  boundary (the newest version any slot resolves to is the current one), so
  no read races an optimizer step;
* each parameter belongs to exactly one worker, which processes backwards
  in microbatch order — gradient accumulation order per parameter matches
  the simulator exactly.  Weight-tied modules either share the owner's
  worker (tied embeddings) or accumulate into a module-local deferred
  buffer folded at the minibatch boundary (tied output projections), in
  the same order on every backend;
* stochastic forwards use counter-based dropout
  (:mod:`repro.nn.dropout`): masks are pure functions of
  (seed, layer, step, microbatch), so draw order cannot depend on worker
  scheduling.  Stream-mode training dropout is rejected at construction;
* per-microbatch forward caches are snapshotted/restored around the many
  in-flight microbatches a worker interleaves;
* NumPy kernels are deterministic, and shared-memory copies are bit-exact,
  so where a value is computed (thread, process) never changes what is
  computed.

The optimizer steps once per minibatch on the driver (the paper's
semantics — updates land at minibatch boundaries), but with the
**overlapped optimizer boundary** (``overlap_boundary=True``, the default)
the boundary no longer drains the pipe: minibatch t+1 is issued to the
workers *first*, and the driver folds gradients, steps the optimizer and
publishes version t+1 while t+1's fill waves are already running.
Bit-for-bit equivalence is preserved by **version-gated weight reads**
(:meth:`~repro.pipeline.plan.WeightResolver.required_version`): every
wave waits until the newest weight version it resolves is published —
early forward waves read old versions and start immediately; backward
waves (and T2 recompute waves) gate on version t+1, whose publication is
the boundary's release operation (after gradients are re-zeroed and T2
velocities advanced).  The boundary itself runs *detached* from the live
parameters (:meth:`~repro.pipeline.plan.StepPlan.finish_step_detached`):
it reads version t from the store, writes version t+1 into fresh arrays,
and never touches ``Parameter.data`` — which thread workers of the next
step are concurrently re-pointing.  Between ``train_step`` calls the live
model consequently lags one optimizer step; :meth:`AsyncPipelineRuntime.sync`
(called automatically by ``state_dict`` / ``load_state_dict`` / ``close``
and by the trainer before evaluation) completes the pending boundary and
restores the latest weights.  With ``overlap_boundary=False`` every step
barriers at the boundary exactly as before.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core import PipeMareConfig
from repro.nn import arena as nn_arena
from repro.nn.dropout import Dropout
from repro.nn.module import Module
from repro.optim import Optimizer
from repro.optim.schedulers import LRSchedule
from repro.pipeline.delays import Method
from repro.pipeline.partition import Stage, check_replica_count
from repro.pipeline.plan import (
    PipelineBackend,
    ReplicaPlan,
    ResolverSpec,
    StepPlan,
    WorkerPlanMirror,
)
from repro.pipeline.schedule import stage_programs
from repro.pipeline.stage_compute import (
    ModelSpec,
    WorkerCompute,
    WorkerGraph,
    build_worker_graph,
)
from repro.pipeline.transport import (
    SharedGradMailbox,
    ShmRing,
    TransportClosed,
    TransportTimeout,
    pack_lanes,
    unpack_lanes,
)
from repro.pipeline.waveprogram import WaveProgram
from repro.pipeline.weight_store import SharedWeightMirror


class PipelineDeadlockError(RuntimeError):
    """A worker waited longer than ``deadlock_timeout`` for an activation or
    gradient that never arrived — the schedule's dataflow stalled."""


class RuntimeWedgedError(RuntimeError):
    """The runtime is wedged: a previous step left a worker that will never
    report back (deadlock, silent death, or an unrecoverable worker loss),
    so no further steps can run — build a fresh runtime.  Raised by
    :meth:`AsyncPipelineRuntime.train_step` on entry, distinct from the
    error that wedged the pool in the first place."""


# Test seam: when set, every worker-side channel object is passed through
# this hook before use, letting the fault-injection harness wrap transports
# with drop/delay/duplicate/disconnect behaviour.  With the default fork
# start method, child processes inherit a monkeypatched value.
_channel_hook = None


def _wrap_channels(chans, w: int):
    if _channel_hook is None:
        return chans
    return _channel_hook(chans, w)


@dataclass
class _StepContext:
    """Everything one train step shares between the driver and thread
    workers.  ``seq`` is the pool's step sequence (tags done reports),
    ``t`` the plan's minibatch index for this step — passed explicitly
    because with the overlapped boundary the plan's own counter still
    describes the *previous* step while this one runs.  ``ext[i][j]`` is
    external model input i for microbatch j; the per-kind queue dicts are
    keyed by cross-worker edge index."""

    seq: int
    t: int
    sync: bool
    ext: list
    ys: list
    scales: list[float]
    programs: list[WaveProgram]
    losses: list[float]
    act_q: dict[int, queue.SimpleQueue]
    rec_q: dict[int, queue.SimpleQueue]
    grad_q: dict[int, queue.SimpleQueue]
    # Early-loss signalling for the two-in-flight driver: ``outcome`` fires
    # as soon as the sink worker finished every forward (``losses_done``) or
    # any worker failed (``failed``) — whichever comes first.  The driver's
    # await_losses() can then return this step's losses while its backward
    # half is still draining.
    losses_done: bool = False
    failed: bool = False
    outcome: threading.Event = field(default_factory=threading.Event)


@dataclass
class RuntimeStats:
    """Wall-clock accounting for the last :meth:`train_step` (and running
    totals) — the raw material for measured bubble fractions.

    Stats are committed **atomically and only for completed steps**: an
    aborted step (worker exception, deadlock) contributes nothing, so busy
    time from a partial step can never be mixed with wall time that
    excludes it.

    ``busy`` is compute time (channel waits and payload copies excluded);
    ``transport`` is the time the process backend spent copying payloads
    through shared memory (zero for threads).  The two are disjoint, so a
    worker's *active* time is their sum — that is the quantity
    :meth:`bubble_fraction` treats as non-idle and
    :meth:`transport_fraction` takes its share of.

    Two boundary-stall measurements were added with the overlapped
    optimizer boundary:

    * ``stall`` — per-worker seconds spent blocked on a version gate
      (waiting for the driver to publish a weight version the wave
      resolves).  Zero in barrier mode, where every version a step reads
      exists before the step is issued.
    * ``boundary`` — driver seconds spent at the optimizer boundary while
      *no* worker compute was in flight (every worker idles for its
      duration).  The barrier-mode cost the overlap erases; an overlapped
      boundary runs inside the next step's wall window and contributes 0
      here.

    ``degradations`` records elastic replica-group events — one dict per
    drop (``kind="degrade"``) or rejoin (``kind="rejoin"``) with the
    minibatch index, the replica involved, and the active count after the
    event — so a run's loss curve can be aligned with the moments its
    effective data parallelism changed.

    With fused wave programs the scheduler hand-off is counted too:
    ``commands``/``reports`` tally the per-step command blocks issued and
    done reports collected (equal in steady state — one report per block),
    and ``last_lanes[w]`` keeps worker ``w``'s per-block
    ``(num_waves, busy, stall, xfer)`` breakdown from the last step.  The
    per-worker busy/stall scalars are the lane *sums*, so coarsened reports
    feed the three fraction methods without double-counting a block's stall
    across its member waves.  :meth:`commands_per_step` is the observable
    the fusion optimisation moves: one command per wave unfused, one per
    fused block otherwise.
    """

    steps: int = 0
    last_wall: float = 0.0
    total_wall: float = 0.0
    last_busy: list[float] = field(default_factory=list)
    total_busy: list[float] = field(default_factory=list)
    last_transport: list[float] = field(default_factory=list)
    total_transport: list[float] = field(default_factory=list)
    last_stall: list[float] = field(default_factory=list)
    total_stall: list[float] = field(default_factory=list)
    last_boundary: float = 0.0
    total_boundary: float = 0.0
    last_commands: int = 0
    total_commands: int = 0
    last_reports: int = 0
    total_reports: int = 0
    last_lanes: list = field(default_factory=list)
    degradations: list = field(default_factory=list)

    def commit(
        self,
        wall: float,
        busy: list[float],
        transport: list[float],
        stall: list[float] | None = None,
        boundary: float = 0.0,
        commands: int = 0,
        reports: int = 0,
        lanes: list | None = None,
    ) -> None:
        """Fold one *completed* step into the running totals."""
        self.steps += 1
        self.last_wall = wall
        self.total_wall += wall
        self.last_busy = list(busy)
        self.last_transport = list(transport)
        stall = [0.0] * len(busy) if stall is None else list(stall)
        self.last_stall = stall
        if not self.total_stall:
            self.total_stall = [0.0] * len(busy)
        self.last_boundary = boundary
        self.total_boundary += boundary
        self.last_commands = commands
        self.total_commands += commands
        self.last_reports = reports
        self.total_reports += reports
        self.last_lanes = list(lanes) if lanes is not None else []
        for w, b in enumerate(busy):
            self.total_busy[w] += b
        for w, x in enumerate(transport):
            self.total_transport[w] += x
        for w, s in enumerate(stall):
            self.total_stall[w] += s

    def commands_per_step(self) -> float:
        """Scheduler→worker command blocks issued per completed step,
        summed over workers (and active replicas).  Unfused this equals the
        wave count of the step schedule; fusion collapses it to the number
        of fused blocks."""
        return self.total_commands / self.steps if self.steps else 0.0

    def reports_per_step(self) -> float:
        """Worker→driver done reports collected per completed step — one
        per command block, so it mirrors :meth:`commands_per_step`."""
        return self.total_reports / self.steps if self.steps else 0.0

    def bubble_fraction(self) -> float:
        """Share of worker-time spent idle for *scheduling* reasons (queue
        waits + fill/drain) over all steps so far.  Active time includes
        transport copies — moving an activation is work, not bubble — and
        the boundary-attributed losses (driver barrier time + version-gate
        stalls) are carved out into :meth:`boundary_stall_fraction`.  All
        three fractions share the steady-state denominator
        ``wall × workers``, so they are disjoint slices of the same pie:
        ``bubble + transport + boundary_stall <= 1`` always (pinned in
        ``tests/test_runtime_errors.py``), with the remainder being the
        workers' compute share."""
        if not self.total_busy or self.total_wall <= 0:
            return 0.0
        k = len(self.total_busy)
        denom = self.total_wall * k
        active = sum(self.total_busy) + sum(self.total_transport)
        lost = self.total_boundary * k + sum(self.total_stall)
        return max(0.0, 1.0 - (active + lost) / denom)

    def transport_fraction(self) -> float:
        """Share of total worker-time (``wall × workers``) spent copying
        payloads through the shared-memory transport.  Historically this
        divided by worker *active* time instead, a different (smaller)
        denominator than the other two fractions used — the shares were
        not comparable and their sum could exceed 1."""
        if not self.total_busy or self.total_wall <= 0:
            return 0.0
        denom = self.total_wall * len(self.total_busy)
        return min(1.0, sum(self.total_transport) / denom)

    def boundary_stall_fraction(self) -> float:
        """Share of total worker-time lost to the minibatch boundary: the
        driver's non-overlapped boundary work (every worker idles for its
        full duration) plus the workers' measured version-gate stalls.
        This is the specific slice of :meth:`bubble_fraction` the
        overlapped boundary attacks — near zero in steady state with
        overlap on."""
        if not self.total_busy or self.total_wall <= 0:
            return 0.0
        k = len(self.total_busy)
        lost = self.total_boundary * k + sum(self.total_stall)
        return max(0.0, min(1.0, lost / (self.total_wall * k)))


@dataclass
class _StepResult:
    losses: list[float]
    busy: list[float]
    transport: list[float]
    stall: list[float]
    commands: int = 0
    reports: int = 0
    lanes: list = field(default_factory=list)


# -- the shared per-worker program interpreter --------------------------------


def _execute_program(
    compute: WorkerCompute,
    program: "WaveProgram",
    resolver,
    t: int,
    sync: bool,
    chans,
    loss_fn,
    ext,
    ys,
    scales,
    losses,
    gate_timeout: float,
    on_losses=None,
) -> tuple[float, float, list[tuple[int, float, float, float]]]:
    """Run one worker's compiled :class:`~repro.pipeline.waveprogram.WaveProgram`
    for minibatch ``t``, one fused block at a time.

    Identical for all backends: only ``chans`` (queue-, ring- or
    socket-backed) and ``resolver`` (driver :class:`StepPlan` or a worker's
    :class:`WorkerPlanMirror`) differ.  Each op walks the worker's segments
    in graph order (forward) or reverse (backward); same-worker edges hand
    payloads off through a local dict, cross-worker edges through the
    channel of that edge.

    Every **block** is version-gated at entry: the compiler guarantees no
    wave inside the block requires a version newer than the entry gate
    (``max(0, t - gate_delay)``), so one wait admits the whole block — the
    admission rule that lets a step run while the previous step's optimizer
    boundary is still in flight.  Unfused programs have one wave per block,
    reproducing the historical per-wave gate exactly.  Weight re-pointing
    is skipped where the compiler proved the previous wave in the block
    loaded the same versions (``WaveBlock.loads``); dropout slots, cache
    snapshots and arena pinning (``begin_wave``/``release_wave``) remain
    per-wave, so trajectories are bit-for-bit unchanged.

    ``on_losses`` (sink worker only) fires once the last forward wave wrote
    its loss — the signal that lets the driver return step t's training
    loss while t's backward half (and the next step) are still draining.

    Returns ``(busy, stall, lanes)``: total compute seconds (channel waits
    and payload copies excluded), total version-gate wait seconds, and one
    ``(num_waves, busy, stall, xfer)`` lane per executed block — the
    coarsened done-report detail.  ``busy``/``stall`` equal the lane sums
    by construction.
    """
    snapshots: dict[int, list[dict]] = {}
    grads: dict[int, np.ndarray] = {}
    recompute = resolver.recompute_active(sync)
    busy = 0.0
    stall = 0.0
    lanes: list[tuple[int, float, float, float]] = []
    f_total = program.num_forwards
    f_done = 0
    xfer_fn = getattr(chans, "xfer_seconds", None)

    def run_wave(kind: str, j: int, load: bool) -> None:
        """One forward-style pass (op F on "act", op R on "rec")."""
        nonlocal busy, f_done
        chans.begin_wave(j)
        local: dict[int, object] = {}
        prepared = False
        for seg in compute.segments:
            ins = []
            for e in seg.in_edges:
                if e.src is None:
                    ins.append(ext[e.ext_index][j])
                elif e.local:
                    ins.append(local.pop(e.index))
                else:
                    ins.append(chans.recv(kind, e.index))
            t0 = time.perf_counter()
            if not prepared:
                if load:
                    if kind == "act":
                        compute.load_weights(
                            lambda s: resolver.forward_weights(s, t, j, sync)
                        )
                    else:
                        compute.load_weights(
                            lambda s: resolver.recompute_weights(s, t, j)
                        )
                compute.set_dropout_slot(t, j)
                prepared = True
            out_edge = seg.out_edge
            if out_edge is not None and not out_edge.local and chans.can_reserve:
                # In-ring compute: let the segment's last module write its
                # output directly into a reserved transport slot; send()
                # recognises the reserved view and publishes without a copy.
                reserve = (
                    lambda shape, dtype, _k=kind, _e=out_edge.index:
                    chans.reserve(_k, _e, shape, dtype)
                )
                out = seg.forward(ins, reserve)
            else:
                out = seg.forward(ins)
            if seg.is_sink and kind == "act":
                losses[j] = loss_fn(out, ys[j])
                g = loss_fn.backward()
                sg = nn_arena.empty(g.shape, np.result_type(g, scales[j]))
                np.multiply(g, scales[j], out=sg)
                grads[j] = sg
            busy += time.perf_counter() - t0
            if out_edge is not None:
                if out_edge.local:
                    local[out_edge.index] = out
                else:
                    chans.send(kind, out_edge.index, out)
        if kind == "rec" or not recompute:
            t0 = time.perf_counter()
            snapshots[j] = compute.cache_state()
            busy += time.perf_counter() - t0
        if kind == "act":
            f_done += 1
            if on_losses is not None and f_done == f_total:
                on_losses()

    def run_backward(j: int, load: bool) -> None:
        nonlocal busy
        chans.begin_wave(j)
        local: dict[int, object] = {}
        restored = False
        for seg in reversed(compute.segments):
            if seg.is_sink:
                g = grads.pop(j)
            elif seg.out_edge.local:
                g = local.pop(seg.out_edge.index)
            else:
                g = chans.recv("grad", seg.out_edge.index)
            t0 = time.perf_counter()
            if not restored:
                compute.load_cache_state(snapshots.pop(j))
                if load:
                    compute.load_weights(
                        lambda s: resolver.backward_weights(s, t, j, sync)
                    )
                restored = True
            gins = seg.backward(g)
            busy += time.perf_counter() - t0
            for e, gi in zip(seg.in_edges, gins):
                if e.src is None:
                    continue
                if e.local:
                    local[e.index] = gi
                else:
                    chans.send("grad", e.index, gi)
        # Microbatch j is finished on this worker: pinned transport views
        # (its activations, recompute inputs and gradients) can be acked.
        chans.release_wave(j)

    for block in program.blocks:
        busy0, stall0 = busy, stall
        xfer0 = xfer_fn() if xfer_fn is not None else 0.0
        if block.gate_delay is not None:
            v = max(0, t - block.gate_delay)
            if v > resolver.store.latest_version:
                t0 = time.perf_counter()
                resolver.wait_version(v, gate_timeout)
                stall += time.perf_counter() - t0
        for (op, j), load in zip(block.ops, block.loads):
            if op == "F":
                run_wave("act", j, load)
            elif op == "R":
                run_wave("rec", j, load)
            else:  # "B"
                run_backward(j, load)
        xfer1 = xfer_fn() if xfer_fn is not None else 0.0
        lanes.append((len(block.ops), busy - busy0, stall - stall0, xfer1 - xfer0))
    return busy, stall, lanes


class _QueueChannels:
    """Thread-backend channel set: one per-step in-process SimpleQueue per
    cross-worker edge and payload kind.  Payloads are handed off by
    reference, so the pin/reserve hooks of the ring transport are no-ops
    here (arena generation lifetime already covers cross-thread hand-offs)."""

    can_reserve = False

    def __init__(self, ctx: _StepContext, w: int, timeout: float):
        self._by_kind = {"act": ctx.act_q, "rec": ctx.rec_q, "grad": ctx.grad_q}
        self._w = w
        self._timeout = timeout

    def recv(self, kind: str, edge: int):
        try:
            return self._by_kind[kind][edge].get(timeout=self._timeout)
        except queue.Empty:
            raise TransportTimeout(
                f"worker {self._w} waited >{self._timeout}s for a {kind} "
                f"payload on edge {edge} that never arrived"
            ) from None

    def send(self, kind: str, edge: int, payload) -> None:
        self._by_kind[kind][edge].put(payload)

    def reserve(self, kind: str, edge: int, shape, dtype):
        return None

    def begin_wave(self, j: int) -> None:
        pass

    def release_wave(self, j: int) -> None:
        pass

    def release_all(self) -> None:
        pass


class _RingChannels:
    """Process-backend channel set: one shared-memory ring per cross-worker
    edge and payload kind.

    Messages are tagged with the driver's step sequence; a tag older than
    the current step is residue from an aborted step and is discarded, so
    the channels self-heal after an error without any flush handshake.

    Received single-array payloads are **zero-copy views** into the ring,
    pinned (ack deferred) until the consuming microbatch's backward wave
    finishes: :meth:`recv` files each pin under the wave
    :meth:`begin_wave` opened, :meth:`release_wave` acks a finished
    microbatch's pins, and :meth:`release_all` (worker per-step cleanup)
    drops everything an aborted step left pinned so producers can never
    starve on unacked slots.  :meth:`reserve` is the send-side twin: a
    writable view of the next ring slot that lets the producing segment
    compute straight into the transport (send() publishes it without a
    copy).  Pin budget: a step pins at most N messages per ring while the
    rings hold 2N slots, so a producer's slot-free wait can only be on a
    message the consumer has already released.
    """

    can_reserve = True

    def __init__(self, rings: dict[tuple[str, int], ShmRing], timeout: float):
        self._rings = rings
        self._timeout = timeout
        self.step = 0
        self._wave = 0
        self._pins: dict[int, list[tuple[ShmRing, object]]] = {}

    def xfer_seconds(self) -> float:
        return sum(r.xfer_seconds for r in self._rings.values())

    def recv(self, kind: str, edge: int):
        ring = self._rings[(kind, edge)]
        while True:
            tag, payload, token = ring.recv_msg_view(self._timeout)
            if tag != self.step:
                # stale message from an aborted step — drop and keep looking
                if token is not None:
                    ring.release(token)
                continue
            if token is not None:
                self._pins.setdefault(self._wave, []).append((ring, token))
            return payload

    def send(self, kind: str, edge: int, payload) -> None:
        ring = self._rings[(kind, edge)]
        if ring.commit_if_reserved(payload):
            return
        ring.cancel_reserved()
        ring.send_msg(payload, self.step, self._timeout)

    def reserve(self, kind: str, edge: int, shape, dtype):
        return self._rings[(kind, edge)].reserve(shape, dtype, self.step, self._timeout)

    def begin_wave(self, j: int) -> None:
        self._wave = j

    def release_wave(self, j: int) -> None:
        for ring, token in self._pins.pop(j, []):
            ring.release(token)

    def release_all(self) -> None:
        for pins in self._pins.values():
            for ring, token in pins:
                ring.release(token)
        self._pins.clear()
        for ring in self._rings.values():
            ring.cancel_reserved()

    def close(self) -> None:
        self.release_all()
        for r in self._rings.values():
            r.close()


# -- worker pools --------------------------------------------------------------


def _build_programs(
    method: Method, num_workers: int, num_microbatches: int, recompute: bool
) -> dict[bool, list[list[tuple[str, int]]]]:
    """Worker programs, straight off the occupancy grids: the schedule
    module's Figure 1 cartoons, executed for real.  Keyed by the step's
    sync flag — GPipe-style fill/drain for synchronous steps (T3 warmup;
    for the GPipe method ``is_sync_step()`` is always True), the method's
    own interleaved schedule otherwise.  Thread pools build this on the
    driver; process workers rebuild the identical dict from the resolver
    spec inside their own interpreter."""
    return {
        True: stage_programs(Method.GPIPE, num_workers, num_microbatches, recompute=False),
        False: stage_programs(method, num_workers, num_microbatches, recompute=recompute),
    }


def _graph_recv_peers(graph: WorkerGraph) -> tuple[list[list[int]], list[list[int]]]:
    """Per-worker producer sets for the fusion compiler's cross-worker
    boundary rule: ``fwd_peers[w]`` are the workers whose forward/recompute
    waves feed ``w`` activations, ``bwd_peers[w]`` those whose backward
    waves feed it gradients (gradients flow dst → src along each edge)."""
    fwd: list[set[int]] = [set() for _ in range(graph.num_workers)]
    bwd: list[set[int]] = [set() for _ in range(graph.num_workers)]
    for e in graph.cross_edges():
        fwd[e.dst.worker].add(e.src.worker)
        bwd[e.src.worker].add(e.dst.worker)
    return [sorted(s) for s in fwd], [sorted(s) for s in bwd]


def _build_wave_programs(
    method: Method,
    resolver,
    graph: WorkerGraph,
    num_microbatches: int,
    recompute: bool,
    fuse: bool,
) -> dict[bool, list[WaveProgram]]:
    """Compile :func:`_build_programs`'s wave schedules into per-worker
    :class:`~repro.pipeline.waveprogram.WaveProgram` command blocks, keyed
    by the step's sync flag.  Thread pools build this once on the driver;
    process and socket workers rebuild the identical dict from their
    resolver mirror (same arithmetic, same deterministic graph), so no
    compiled program ever crosses a process boundary."""
    programs = _build_programs(method, graph.num_workers, num_microbatches, recompute)
    read_stages = [w.read_stages for w in graph.workers]
    fwd_peers, bwd_peers = _graph_recv_peers(graph)
    return {
        sync: resolver.wave_programs(
            programs[sync], read_stages, fwd_peers, bwd_peers, sync, fuse
        )
        for sync in (True, False)
    }


class _WorkerPoolBase:
    """Shared driver-side issue/collect machinery of the two pools.

    A step is **issued** (commands broadcast; workers may begin as soon as
    their version gates allow) and later **collected** (all done reports
    gathered) as two separate driver actions, so the scheduler can slide
    the previous step's optimizer boundary between them — that gap is the
    whole overlapped-boundary mechanism.  At most one step is issued and
    uncollected at a time; what overlaps it is the *driver's* boundary
    work for the step before.

    Done messages are ``(worker, step_seq, kind, busy, transport, stall,
    payload)`` with kind in {"ok", "error", "deadlock"} (plus
    "ready"/"init_error" during process startup).  The step-sequence tag
    guards the queue against residue from aborted steps: stale tags are
    discarded, a tag from the future is a protocol bug and fails loudly.
    ``_collect`` gathers all workers' reports into locals and raises on
    failure **without mutating any runtime state**, which is what lets
    :meth:`AsyncPipelineRuntime.train_step` commit stats atomically for
    completed steps only.
    """

    kind: str = ""

    def __init__(self, num_workers: int, deadlock_timeout: float, done_grace: float):
        self.num_workers = num_workers
        self.deadlock_timeout = deadlock_timeout
        self.done_grace = done_grace
        self.wedged = False
        self._seq = 0  # step sequence; tags commands, done reports, mailbox
        # Issued-but-uncollected step sequences, oldest first.  With two
        # steps in flight, done reports for step t+1 can land while the
        # driver is still collecting step t; they are parked here instead
        # of being treated as protocol violations.
        self._issued: deque[int] = deque()
        self._buffered: list = []
        self._early_losses: dict[int, list] = {}

    def _get_done(self, timeout: float):
        raise NotImplementedError

    def _peer_failure(self) -> str | None:
        """Process pools report a worker that died without a message (killed,
        segfaulted); threads cannot die silently."""
        return None

    def _peer_error(self, dead: str) -> BaseException:
        """The typed error a dead peer surfaces as: the shared-memory pools
        report a deadlock, the socket pool overrides this with
        :class:`~repro.pipeline.registry.WorkerLostError`."""
        return PipelineDeadlockError(dead)

    def _next_done(self, deadline: float):
        """One done message, failing fast on dead peers.  A worker that will
        never report wedges the pool: don't reuse it, but close() can still
        deliver shutdown sentinels / terminate stragglers."""
        while True:
            try:
                return self._get_done(min(0.2, self.deadlock_timeout + self.done_grace))
            except queue.Empty:
                dead = self._peer_failure()
                if dead is not None:
                    self.wedged = True
                    raise self._peer_error(dead) from None
                if time.perf_counter() > deadline:
                    self.wedged = True
                    raise PipelineDeadlockError(
                        f"pipeline stalled: a worker did not finish within "
                        f"{self.deadlock_timeout + self.done_grace:.0f}s"
                    ) from None

    def _take_done(self, seq: int, deadline: float):
        """Next done message relevant to step ``seq``: a parked one if
        available, otherwise fresh off the queue."""
        for i, msg in enumerate(self._buffered):
            if msg[1] <= seq:
                return self._buffered.pop(i)
        return self._next_done(deadline)

    def _collect(
        self, seq: int
    ) -> tuple[list[float], list[float], list[float], dict[int, object]]:
        k = self.num_workers
        busys = [0.0] * k
        xfers = [0.0] * k
        stalls = [0.0] * k
        extras: dict[int, object] = {}
        errors: list[tuple[int, BaseException]] = []
        deadlocks: list[tuple[int, str]] = []
        got = 0
        while got < k:
            # Each report gets its own full timeout window: a worker whose
            # final (secondary) channel wait starts late in the step must
            # still get to report its TransportTimeout, otherwise the real
            # worker exception already collected would be masked by a
            # spurious wedge.
            deadline = time.perf_counter() + self.deadlock_timeout + self.done_grace
            msg = self._take_done(seq, deadline)
            w, msg_seq, kind, busy, xfer, stall, payload = msg
            if kind == "losses":
                # Early-loss report from a sink worker; never a done count.
                if msg_seq >= seq:
                    self._early_losses[msg_seq] = payload
                continue
            if msg_seq < seq:
                continue  # residue from an aborted step — discard
            if msg_seq > seq:
                # A later in-flight step finished a worker before this one
                # drained; park the report for that step's collect.
                self._buffered.append(msg)
                continue
            got += 1
            busys[w] = busy
            xfers[w] = xfer
            stalls[w] = stall
            if kind == "error":
                errors.append((w, payload))
            elif kind == "deadlock":
                deadlocks.append((w, payload))
            else:
                extras[w] = payload
        for s in [s for s in self._early_losses if s <= seq]:
            del self._early_losses[s]
        if errors:
            # Real exceptions outrank the secondary starvation timeouts they
            # cause in neighbouring workers.
            raise errors[0][1]
        if deadlocks:
            raise PipelineDeadlockError(
                f"worker {deadlocks[0][0]} reported: {deadlocks[0][1]}"
            )
        return busys, xfers, stalls, extras

    def issue(self, t, sync, ext, ys, scales, num_microbatches) -> int:
        """Broadcast one step's commands; workers start as their version
        gates allow.  Returns the step's sequence tag; must eventually be
        balanced by exactly one :meth:`collect` (steps collect in issue
        order)."""
        raise NotImplementedError

    def collect(self) -> _StepResult:
        """Gather the oldest issued step's done reports (and, for
        processes, its mailbox gradients)."""
        raise NotImplementedError

    def await_losses(self, seq: int) -> list | None:
        """Block until the sink worker of issued step ``seq`` has finished
        every forward wave, and return that step's microbatch losses — the
        early-return signal that lets the driver hand the caller step t's
        loss while t's backward half (and a second in-flight step) are
        still draining.  Returns ``None`` if the step failed or stalled
        instead; the caller then collects normally to surface the error.

        This base implementation drains the done queue for the sink's
        early-loss report (process and socket pools); the thread pool
        overrides it with an event wait on the shared step context."""
        if seq in self._early_losses:
            return self._early_losses.pop(seq)
        deadline = time.perf_counter() + self.deadlock_timeout + self.done_grace
        while True:
            # A parked failure report for this step means no losses are
            # coming; let collect() surface the real error.
            for msg in self._buffered:
                if msg[1] == seq and msg[2] in ("error", "deadlock"):
                    return None
            try:
                msg = self._get_done(0.2)
            except queue.Empty:
                if self._peer_failure() is not None:
                    return None
                if time.perf_counter() > deadline:
                    return None
                continue
            if msg[2] == "losses":
                if msg[1] == seq:
                    return msg[6]
                if msg[1] > seq:
                    self._early_losses[msg[1]] = msg[6]
                continue
            self._buffered.append(msg)

    def run_step(self, t, sync, ext, ys, scales, num_microbatches) -> _StepResult:
        """Barrier-mode convenience: issue then immediately collect."""
        self.issue(t, sync, ext, ys, scales, num_microbatches)
        return self.collect()

    def publish_plan_state(self) -> None:
        """Called after the optimizer boundary; process pools push the new
        weight version (and T2 velocities) into the shared mirror."""

    def full_resync(self) -> None:
        """Called after a checkpoint restore rewrote the version window."""

    def stop_workers(self) -> None:
        """Stop this pool's workers but leave any shared segments other
        pools still use alive — what :meth:`ReplicaGroup.drop_replica`
        calls on a degraded replica.  Pools without shared segments just
        close."""
        self.close()

    def close(self) -> None:
        raise NotImplementedError


class ThreadWorkerPool(_WorkerPoolBase):
    """Per-stage worker threads with in-process per-edge queues."""

    kind = "thread"

    def __init__(
        self,
        graph: WorkerGraph,
        plan: StepPlan,
        loss_fn,
        deadlock_timeout: float,
        done_grace: float,
        fuse_waves: bool = True,
    ):
        super().__init__(graph.num_workers, deadlock_timeout, done_grace)
        self.graph = graph
        self.workers = graph.workers
        self.plan = plan
        self.fuse_waves = fuse_waves
        self._programs = _build_wave_programs(
            plan.method, plan, graph, plan.num_microbatches,
            plan.recompute_segment is not None, fuse_waves,
        )
        self._cross = [e.index for e in graph.cross_edges()]
        self.loss_fn = loss_fn
        self._ctxs: dict[int, _StepContext] = {}
        self._cmd: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(self.num_workers)
        ]
        self._done: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(w,), name=f"pipe-worker-{w}", daemon=True
            )
            for w in range(self.num_workers)
        ]
        for th in self._threads:
            th.start()

    def _get_done(self, timeout: float):
        return self._done.get(timeout=timeout)

    def issue(self, t, sync, ext, ys, scales, num_microbatches) -> int:
        self._seq += 1
        ctx = _StepContext(
            seq=self._seq,
            t=t,
            sync=sync,
            ext=ext,
            ys=ys,
            scales=scales,
            programs=self._programs[bool(sync)],
            losses=[0.0] * num_microbatches,
            act_q={e: queue.SimpleQueue() for e in self._cross},
            rec_q={e: queue.SimpleQueue() for e in self._cross},
            grad_q={e: queue.SimpleQueue() for e in self._cross},
        )
        self._ctxs[self._seq] = ctx
        self._issued.append(self._seq)
        for cq in self._cmd:
            cq.put(ctx)
        return self._seq

    def collect(self) -> _StepResult:
        seq = self._issued.popleft()
        ctx = self._ctxs.pop(seq)
        busys, xfers, stalls, extras = self._collect(seq)
        lanes = [
            unpack_lanes(extras.get(w) or ()) for w in range(self.num_workers)
        ]
        blocks = sum(len(l) for l in lanes)
        return _StepResult(
            losses=list(ctx.losses), busy=busys, transport=xfers, stall=stalls,
            commands=blocks, reports=blocks, lanes=lanes,
        )

    def await_losses(self, seq: int) -> list | None:
        ctx = self._ctxs[seq]
        if not ctx.outcome.wait(self.deadlock_timeout + self.done_grace):
            return None
        return list(ctx.losses) if ctx.losses_done else None

    def _worker_loop(self, w: int) -> None:
        # Each worker thread owns an arena; generation g (step seq) slabs
        # are recycled when step seq+2 begins — by then both in-flight
        # steps that could reference them have fully drained.
        arena_obj = nn_arena.Arena()
        nn_arena.set_current(arena_obj)
        sink = w == self.num_workers - 1
        while True:
            ctx = self._cmd[w].get()
            if ctx is None:
                return
            busy = stall = 0.0
            kind, payload = "ok", None
            chans = _wrap_channels(_QueueChannels(ctx, w, self.deadlock_timeout), w)
            arena_obj.begin_program(ctx.seq)
            if sink:
                def on_losses(_ctx=ctx):
                    _ctx.losses_done = True
                    _ctx.outcome.set()
            else:
                on_losses = None
            try:
                busy, stall, lanes = _execute_program(
                    self.workers[w], ctx.programs[w], self.plan, ctx.t, ctx.sync,
                    chans, self.loss_fn, ctx.ext, ctx.ys, ctx.scales, ctx.losses,
                    self.deadlock_timeout, on_losses,
                )
                payload = pack_lanes(lanes)
            except TransportTimeout as exc:
                kind, payload = "deadlock", str(exc)
            except BaseException as exc:  # noqa: BLE001 — relayed to driver
                kind, payload = "error", exc
            if kind != "ok":
                ctx.failed = True
                ctx.outcome.set()
            self._done.put((w, ctx.seq, kind, busy, 0.0, stall, payload))

    def close(self) -> None:
        for cq in self._cmd:
            cq.put(None)
        for th in self._threads:
            th.join(timeout=1.0)


def _picklable_exc(exc: BaseException) -> BaseException:
    """Exceptions cross the done queue by pickle; anything that cannot make
    the trip is flattened to a RuntimeError carrying the formatted
    traceback."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )


def _default_start_method() -> str:
    """fork where the platform offers it (cheap, inherits the loaded NumPy),
    else spawn.  Workers rebuild their state from picklable specs either
    way, so the start method is a pure performance knob."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _worker_rings(
    graph: WorkerGraph, w: int, base: str, slots: int
) -> dict[tuple[str, int], ShmRing]:
    """Attach worker ``w``'s endpoints: for each cross-worker edge it sits
    on, activations/recomputes flow src→dst and gradients dst→src."""
    rings: dict[tuple[str, int], ShmRing] = {}
    for e in graph.cross_edges():
        if e.dst.worker == w:
            rings[("act", e.index)] = ShmRing(f"{base}a{e.index}", slots=slots, role="recv")
            rings[("rec", e.index)] = ShmRing(f"{base}r{e.index}", slots=slots, role="recv")
            rings[("grad", e.index)] = ShmRing(f"{base}g{e.index}", slots=slots, role="send")
        elif e.src_worker == w:
            rings[("act", e.index)] = ShmRing(f"{base}a{e.index}", slots=slots, role="send")
            rings[("rec", e.index)] = ShmRing(f"{base}r{e.index}", slots=slots, role="send")
            rings[("grad", e.index)] = ShmRing(f"{base}g{e.index}", slots=slots, role="recv")
    return rings


def _process_worker_main(w: int, conn, done, init: dict) -> None:
    """Entry point of one spawned stage worker.

    Constructs everything locally from the picklable ``init`` payload —
    model replica via :class:`ModelSpec`, partition, worker graph, resolver
    over the attached weight mirror, ring endpoints — then serves step
    commands until the ``None`` sentinel (or a closed pipe) arrives.
    """
    k = init["k"]
    n = init["num_microbatches"]
    base = init["base"]
    spec: ResolverSpec = init["resolver_spec"]
    timeout = init["deadlock_timeout"]
    chans = None
    mirror = mailbox = None
    try:
        model, stages = init["model_spec"].build()
        names = [list(s.names) for s in stages]
        if names != init["stage_names"]:
            raise ValueError(
                f"worker {w}: model spec rebuilt a different partition than "
                f"the driver's (stage parameter names differ)"
            )
        graph = build_worker_graph(
            model, stages,
            granularity=init["granularity"], max_workers=init["max_workers"],
        )
        if graph.num_workers != k or graph.edge_spec() != init["edges"]:
            raise ValueError(
                f"worker {w}: model spec rebuilt a different worker graph "
                f"than the driver's ({graph.num_workers} workers, edges "
                f"{graph.edge_spec()!r} vs {init['edges']!r})"
            )
        compute = graph.workers[w]
        # The replica only ever runs sliced steps, so tied modules stay in
        # deferred-gradient mode for its whole lifetime (the driver's own
        # modules are scoped per step by PipelineBackend instead).
        compute.enable_deferred()
        stage_shapes = init["stage_shapes"]
        # Mirror and mailbox are named separately from the ring base: in a
        # ReplicaGroup every replica pool has its own rings but all share
        # replica 0's mirror (one published version window) and mailbox
        # (one segment, one lane per replica).
        mirror = SharedWeightMirror(
            init["wname"], stage_shapes, spec.history, spec.use_t2, readonly=True
        )
        resolver = WorkerPlanMirror(spec, mirror)
        mailbox = SharedGradMailbox(
            init["mbname"], stage_shapes, num_replicas=init["num_replicas"]
        )
        replica = init["replica"]
        is_sink_worker = w == k - 1
        loss_fn = pickle.loads(init["loss_pickle"]) if is_sink_worker else None
        chans = _wrap_channels(
            _RingChannels(_worker_rings(graph, w, base, init["slots"]), timeout), w
        )
        # Compiled locally from the resolver mirror — identical arithmetic
        # and deterministic graph ⇒ identical fused blocks to the driver's.
        programs = _build_wave_programs(
            Method(spec.method), resolver, graph, n,
            spec.recompute_segment is not None, init["fuse_waves"],
        )
        has_pstate = compute.has_persistent_state()
        if init["pstate"][w] is not None:
            compute.load_persistent_state(init["pstate"][w])
        # Per-worker activation/gradient arena: step seq's slabs are
        # recycled when step seq+2 begins, matching the two-in-flight
        # driver window.
        arena_obj = nn_arena.Arena()
        nn_arena.set_current(arena_obj)
    except BaseException as exc:  # noqa: BLE001 — reported to driver
        done.put((w, 0, "init_error", 0.0, 0.0, 0.0, _picklable_exc(exc)))
        return
    done.put((w, 0, "ready", 0.0, 0.0, 0.0, None))

    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            if msg[0] == "__pstate__":
                # Driver pushed fresh persistent state (checkpoint restore).
                compute.load_persistent_state(msg[1])
                continue
            step_seq, t, sync, scales, ext, ys = msg
            resolver.t = t
            chans.step = step_seq
            losses = [0.0] * n
            busy = stall = 0.0
            kind, payload = "ok", None
            xfer0 = chans.xfer_seconds()
            arena_obj.begin_program(step_seq)
            if is_sink_worker:
                def on_losses(_seq=step_seq, _losses=losses):
                    # Early-loss report: the driver can return this step's
                    # training loss before the backward half drains.
                    done.put((w, _seq, "losses", 0.0, 0.0, 0.0, list(_losses)))
            else:
                on_losses = None
            try:
                for b in compute.bindings:
                    for p in b.params:
                        p.grad.fill(0.0)
                compute.zero_deferred()
                busy, stall, lanes = _execute_program(
                    compute, programs[bool(sync)][w], resolver, t, sync, chans,
                    loss_fn, ext, ys, scales, losses, timeout, on_losses,
                )
                for b in compute.bindings:
                    for pos, p in zip(b.positions, b.params):
                        mailbox.write(b.stage, pos, p.grad, step_seq, replica)
                for s in {b.stage for b in compute.bindings}:
                    # Stamp after the writes: the driver folds this stage
                    # block only when the stamp matches the step it
                    # collects.
                    mailbox.stamp(s, step_seq, replica)
                payload = (
                    losses if is_sink_worker else None,
                    compute.persistent_state() if has_pstate else None,
                    pack_lanes(lanes),
                )
            except TransportTimeout as exc:
                kind, payload = "deadlock", str(exc)
            except BaseException as exc:  # noqa: BLE001 — relayed to driver
                kind, payload = "error", _picklable_exc(exc)
            finally:
                # Whatever happened, nothing from this step may stay pinned
                # in the rings: an aborted step must not starve producers.
                chans.release_all()
            done.put((w, step_seq, kind, busy, chans.xfer_seconds() - xfer0, stall, payload))
    finally:
        if chans is not None:
            chans.close()
        if mirror is not None:
            mirror.close()
        if mailbox is not None:
            mailbox.close()


class ProcessWorkerPool(_WorkerPoolBase):
    """Per-stage worker processes over the shared-memory transport."""

    kind = "process"

    def __init__(
        self,
        *,
        graph: WorkerGraph,
        plan: StepPlan,
        stages: list[Stage],
        loss_fn,
        model_spec: ModelSpec,
        num_microbatches: int,
        deadlock_timeout: float,
        done_grace: float,
        start_method: str | None = None,
        transport_slot_bytes: int = 1 << 16,
        granularity: str = "layer",
        max_workers: int | None = None,
        replica: int = 0,
        num_replicas: int = 1,
        shared: tuple | None = None,
        fuse_waves: bool = True,
    ):
        k = graph.num_workers
        super().__init__(k, deadlock_timeout, done_grace)
        self.graph = graph
        self.driver_workers = graph.workers
        self.plan = plan
        self.stages = stages
        self.fuse_waves = fuse_waves
        # Replica pools of a ReplicaGroup share replica 0's weight mirror
        # and grad mailbox (``shared`` = that pool's ``shared_handles``);
        # each still owns its own rings.  ``replica`` selects this pool's
        # mailbox lane.  Defaults are the standalone single-pipeline pool.
        self.replica = replica
        self._owns_shared = shared is None
        # Cleanup state first: close() must be safe however far construction
        # got, so a failure mid-way (e.g. /dev/shm full after the mirror was
        # created) cannot leak segments for the driver's lifetime.
        self.mirror: SharedWeightMirror | None = None
        self.mailbox: SharedGradMailbox | None = None
        self._rings: list[ShmRing] = []
        self._conns = []
        self._procs = []
        base = f"pm{os.getpid():x}{os.urandom(3).hex()}"
        self._base = base
        try:
            stage_shapes = [[tuple(p.shape) for p in s.params] for s in stages]
            history = plan.history
            if shared is None:
                self.mirror = SharedWeightMirror(
                    f"{base}w", stage_shapes, history, plan.corrector is not None,
                    create=True,
                )
                self.mirror.sync_from_store(
                    plan.store, plan.corrector, versions=plan.resolvable_versions()
                )
                self.mailbox = SharedGradMailbox(
                    f"{base}mb", stage_shapes, create=True, num_replicas=num_replicas
                )
                self._wname, self._mbname = f"{base}w", f"{base}mb"
            else:
                self.mirror, self.mailbox, self._wname, self._mbname = shared
            # One aborted step can leave up to N unconsumed messages in a
            # ring; 2N slots let the next step proceed while recv discards
            # the residue.
            slots = max(2 * num_microbatches, 2)
            for e in graph.cross_edges():
                for tag in ("a", "r", "g"):
                    self._rings.append(
                        ShmRing(
                            f"{base}{tag}{e.index}", slots=slots,
                            slot_bytes=transport_slot_bytes, create=True,
                        )
                    )
            ctx = multiprocessing.get_context(start_method or _default_start_method())
            self._done = ctx.Queue()
            init = {
                "base": base,
                "wname": self._wname,
                "mbname": self._mbname,
                "replica": replica,
                "num_replicas": num_replicas,
                "k": k,
                "slots": slots,
                "num_microbatches": num_microbatches,
                "stage_shapes": stage_shapes,
                "stage_names": [list(s.names) for s in stages],
                "edges": graph.edge_spec(),
                "resolver_spec": plan.resolver_spec(),
                "model_spec": model_spec,
                "granularity": granularity,
                "max_workers": max_workers,
                "loss_pickle": pickle.dumps(loss_fn),
                "deadlock_timeout": deadlock_timeout,
                "fuse_waves": fuse_waves,
                # Seed each replica with the driver's *current* persistent
                # state (BatchNorm running stats): a factory spec rebuilds a
                # fresh model, whose pristine stats must not clobber stats
                # that already evolved driver-side.
                "pstate": [
                    w.persistent_state() if w.has_persistent_state() else None
                    for w in graph.workers
                ],
            }
            # External model inputs are routed per step to exactly the
            # workers whose graph segments consume them.
            self._ext_needs = [graph.ext_needs(w) for w in range(k)]
            for w in range(k):
                recv_end, send_end = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_process_worker_main,
                    args=(w, recv_end, self._done, init),
                    name=f"pipe-proc-{w}",
                    daemon=True,
                )
                proc.start()
                recv_end.close()  # worker's end; driver keeps the sender
                self._conns.append(send_end)
                self._procs.append(proc)
            self._await_ready(k)
        except BaseException:
            self.close()
            raise

    def _await_ready(self, k: int) -> None:
        """Block until every worker rebuilt its slice and attached the
        transport, so spec/partition mismatches fail at construction."""
        ready = 0
        deadline = time.perf_counter() + max(120.0, self.done_grace)
        while ready < k:
            try:
                w, _, kind, _, _, _, payload = self._done.get(timeout=0.2)
            except queue.Empty:
                dead = self._peer_failure()
                if dead is not None:
                    raise PipelineDeadlockError(
                        f"process worker failed to start: {dead}"
                    ) from None
                if time.perf_counter() > deadline:
                    raise PipelineDeadlockError(
                        "process workers did not come up in time"
                    ) from None
                continue
            if kind == "init_error":
                raise payload
            if kind == "ready":
                ready += 1

    def _peer_failure(self) -> str | None:
        for proc in self._procs:
            if not proc.is_alive() and proc.exitcode != 0:
                return (
                    f"pipeline worker {proc.name} died with exit code "
                    f"{proc.exitcode} before reporting back"
                )
        return None

    def _get_done(self, timeout: float):
        return self._done.get(timeout=timeout)

    @property
    def shared_handles(self) -> tuple:
        """What a replica pool attaches instead of creating its own:
        ``(mirror, mailbox, mirror_name, mailbox_name)`` — pass as the
        ``shared`` constructor argument (see :class:`ReplicaGroup`)."""
        return (self.mirror, self.mailbox, self._wname, self._mbname)

    def issue(self, t, sync, ext, ys, scales, num_microbatches) -> int:
        k = self.num_workers
        self._seq += 1
        self._issued.append(self._seq)
        for w, conn in enumerate(self._conns):
            try:
                conn.send((
                    self._seq,
                    t,
                    sync,
                    scales,
                    {i: ext[i] for i in self._ext_needs[w]},
                    ys if w == k - 1 else None,
                ))
            except OSError as exc:
                # The worker's end of the pipe is gone — it died between
                # steps.  Same contract as a mid-step death: wedge the pool.
                self.wedged = True
                raise PipelineDeadlockError(
                    f"pipeline worker {w} is gone ({exc}); build a fresh runtime"
                ) from None
        return self._seq

    def collect(self) -> _StepResult:
        k = self.num_workers
        seq = self._issued.popleft()
        busys, xfers, stalls, extras = self._collect(seq)
        losses, _, _ = extras[k - 1]
        for w, (_, pstate, _) in extras.items():
            if pstate is not None:
                self.driver_workers[w].load_persistent_state(pstate)
        lanes = [unpack_lanes(extras[w][2]) for w in range(k)]
        blocks = sum(len(l) for l in lanes)
        # Workers stamped their stage blocks after writing; a mismatch
        # would mean a block was overwritten before this fold read it.
        self.mailbox.check_stamps(seq, self.replica)
        for s, stage in enumerate(self.stages):
            for pos, p in enumerate(stage.params):
                p.grad[...] = self.mailbox.read(s, pos, seq, self.replica)
        return _StepResult(
            losses=list(losses), busy=busys, transport=xfers, stall=stalls,
            commands=blocks, reports=blocks, lanes=lanes,
        )

    def publish_plan_state(self) -> None:
        # Velocity first: the version-header bump below is the release the
        # workers' version gates observe, and a wave admitted for version v
        # must see the velocities of v's boundary.
        if self.plan.corrector is not None:
            self.mirror.publish_velocity(self.plan.corrector.velocity)
        store = self.plan.store
        v = store.latest_version
        self.mirror.publish_version(
            v, [store.weights(s, v) for s in range(store.num_stages)]
        )

    def full_resync(self) -> None:
        if self._owns_shared:
            # Replica pools share this mirror; its owner resyncs it once.
            self.mirror.sync_from_store(
                self.plan.store,
                self.plan.corrector,
                versions=self.plan.resolvable_versions(),
            )
        # Push driver-side persistent state (e.g. restored BatchNorm running
        # stats) down to the worker replicas; the pipe is FIFO, so workers
        # apply it before any subsequent step command.
        for w, (conn, compute) in enumerate(zip(self._conns, self.driver_workers)):
            if compute.has_persistent_state():
                try:
                    conn.send(("__pstate__", compute.persistent_state()))
                except OSError as exc:
                    self.wedged = True
                    raise PipelineDeadlockError(
                        f"pipeline worker {w} is gone ({exc}); build a fresh runtime"
                    ) from None

    def stop_workers(self) -> None:
        """Stop the worker processes and close their command pipes,
        leaving every shared-memory segment (rings, mirror, mailbox)
        alive.  This is the degraded-replica teardown: a dropped replica's
        mirror may be the one its surviving siblings still map (replica 0
        owns the group's shared mirror and mailbox), so segment release
        must wait for :meth:`close`.  Idempotent."""
        for conn in self._conns:
            try:
                conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._conns = []
        self._procs = []

    def close(self) -> None:
        self.stop_workers()
        for ring in self._rings:
            ring.unlink()
        self._rings = []
        if self._owns_shared:
            if self.mirror is not None:
                self.mirror.unlink()
                self.mirror = None
            if self.mailbox is not None:
                self.mailbox.unlink()
                self.mailbox = None


class ReplicaGroup:
    """R worker pools — one per pipeline replica — behind the single-pool
    issue/collect surface the scheduler loop drives.

    Hybrid data × pipeline parallelism: every replica is a complete
    pipeline (its own worker pool over its own copy of the model), all
    reading weight versions from the *one* shared version clock, so each
    replica sees exactly the staleness the delay profile prescribes.  The
    scheduler never learns R — it issues one *group step* (a list of R
    per-replica ``(ext, ys, scales)`` minibatch shards), collects one
    merged result (losses and per-worker stats concatenated in replica
    order), and runs one optimizer boundary on the folded gradients.

    Pools are issued and collected in lockstep, so their step-sequence
    counters stay equal — the process backend's shared grad mailbox (one
    lane per replica, owned by replica 0's pool) relies on this for its
    per-lane double-buffer parity, and :meth:`issue` fails loudly if the
    invariant ever breaks.  R = 1 wraps the single pool with a thin
    dispatch and no behavioural change.

    **Elastic degradation**: ``active`` is the sorted list of replica
    indices still training.  :meth:`drop_replica` stops a wedged
    replica's workers (keeping shared segments alive — replica 0 owns
    the group's mirror and mailbox) and removes it from ``active``;
    issue/collect then run over the survivors only, whose sequence
    counters remain in lockstep because every past step was issued to
    all of them together.  :meth:`readmit` puts a freshly built pool
    back in at an optimizer boundary (see
    :meth:`AsyncPipelineRuntime.rejoin_replica`).
    """

    def __init__(
        self,
        pools: list[_WorkerPoolBase],
        graphs: list[WorkerGraph],
        replica_plan,
    ):
        self.pools = pools
        self.graphs = graphs
        self.replica_plan = replica_plan
        self.num_replicas = len(pools)
        self.active: list[int] = list(range(len(pools)))
        # Stopped pools replaced by readmit(); they may still own shared
        # segments, so they are released at close() and not before.
        self._retired: list[_WorkerPoolBase] = []

    @property
    def kind(self) -> str:
        return self.pools[0].kind

    @property
    def wedged(self) -> bool:
        return any(self.pools[r].wedged for r in self.active)

    @wedged.setter
    def wedged(self, value: bool) -> None:
        for p in self.pools:
            p.wedged = value

    def issue(self, t, sync, steps, num_microbatches) -> int:
        """Broadcast one group step: ``steps[i]`` is the ``(ext, ys,
        scales)`` shard of the i-th *active* replica (ascending replica
        index).  Returns the common sequence tag.

        The broadcast completes for every pool even when one raises (a
        dead process worker surfaces here as a broken command pipe): a
        pool's sequence counter advances whether or not its send
        succeeded, so stopping mid-broadcast would leave the later pools
        one step behind the earlier ones — and the group permanently out
        of lockstep even after the failed replica is dropped."""
        seqs = []
        first_exc: BaseException | None = None
        for r, (ext, ys, scales) in zip(self.active, steps):
            try:
                seqs.append(
                    self.pools[r].issue(t, sync, ext, ys, scales, num_microbatches)
                )
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        if any(s != seqs[0] for s in seqs):
            self.wedged = True
            raise RuntimeError(
                f"replica pools fell out of lockstep (step sequences {seqs}); "
                f"the shared-mailbox parity contract is broken"
            )
        return seqs[0]

    def collect(self) -> _StepResult:
        results: list[_StepResult] = []
        first_exc: BaseException | None = None
        for r in self.active:
            try:
                results.append(self.pools[r].collect())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                # Keep collecting: every pool's issued-step bookkeeping must
                # advance together even when one replica's step failed.
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return _StepResult(
            losses=[l for res in results for l in res.losses],
            busy=[b for res in results for b in res.busy],
            transport=[x for res in results for x in res.transport],
            stall=[s for res in results for s in res.stall],
            commands=sum(res.commands for res in results),
            reports=sum(res.reports for res in results),
            lanes=[lane for res in results for lane in res.lanes],
        )

    def await_losses(self, seq: int) -> list | None:
        out: list = []
        for r in self.active:
            losses = self.pools[r].await_losses(seq)
            if losses is None:
                return None
            out.extend(losses)
        return out

    def publish_plan_state(self) -> None:
        # One shared mirror: replica 0's pool owns it and publishes for the
        # whole group (thread pools are a no-op either way).  The publish
        # is a driver-side write into the shared segment, so it keeps
        # working even when replica 0 itself has been dropped — its
        # segments outlive its workers (see drop_replica).
        self.pools[0].publish_plan_state()

    def full_resync(self) -> None:
        primary = self.graphs[0].workers
        for r in self.active:
            if r:
                # A checkpoint restore rewrote the live model; re-seed each
                # copy's persistent state (e.g. BatchNorm running stats)
                # from it before the pool pushes state to its workers.
                for cw, dw in zip(self.graphs[r].workers, primary):
                    if dw.has_persistent_state():
                        cw.load_persistent_state(dw.persistent_state())
            self.pools[r].full_resync()
        if 0 not in self.active:
            # Replica 0 owns the shared mirror; with its workers stopped,
            # its full_resync degenerates to exactly the mirror rewrite
            # the surviving replicas need (there are no pipes to push
            # persistent state down).
            self.pools[0].full_resync()

    def drop_replica(self, r: int) -> None:
        """Degrade the group: stop replica ``r``'s workers and remove it
        from the active set.  Shared segments stay alive (replica 0's
        pool owns the mirror and mailbox every process replica maps), so
        survivors keep reading weight versions and writing their own
        mailbox lanes.  The caller renormalizes the fold (``StepPlan.
        set_num_replicas``) and zeroes the dropped copy's buffers."""
        if r not in self.active:
            raise ValueError(f"replica {r} is not active")
        if len(self.active) == 1:
            raise ValueError("cannot drop the last active replica")
        self.pools[r].stop_workers()
        self.active.remove(r)

    def readmit(self, r: int, pool: _WorkerPoolBase) -> None:
        """Put a freshly built pool back into slot ``r`` (previously
        dropped).  The caller has already aligned the pool's step
        sequence with the survivors' lockstep value."""
        if r in self.active:
            raise ValueError(f"replica {r} is already active")
        old = self.pools[r]
        if old is not pool:
            self._retired.append(old)
        self.pools[r] = pool
        self.active.append(r)
        self.active.sort()

    def close(self) -> None:
        # Non-owner pools release nothing shared; the retired owners (if
        # any) and replica 0's pool unlink the segments last.
        for pool in self.pools:
            pool.close()
        for pool in self._retired:
            pool.close()
        self._retired = []


class AsyncPipelineRuntime(PipelineBackend):
    """Event-driven multi-worker pipeline backend.

    Accepts the same arguments as :class:`~repro.pipeline.PipelineExecutor`
    plus:

    backend:
        ``"thread"`` (default; the CLI's ``async`` runtime),
        ``"process"`` (the CLI's ``process`` runtime — stage workers in
        separate processes over shared-memory transport), or ``"socket"``
        (stage workers over framed TCP/UDS sockets with a worker registry
        and typed failure handling; see :mod:`repro.pipeline.net`).
    net_options:
        Socket-backend tuning forwarded to
        :class:`~repro.pipeline.net.SocketWorkerPool`: ``family``
        ("uds"/"tcp"), ``heartbeat_interval``, ``heartbeat_timeout``,
        ``connect_timeout``, ``handshake_timeout``,
        ``max_worker_restarts`` (per-worker replacement budget: a LOST
        worker is replaced inside the current generation, survivors keep
        their connections), and ``max_restarts`` (whole-generation
        respawn budget, the fallback once per-worker replacement is
        exhausted or fails; both default 0 = wedge with
        :class:`~repro.pipeline.registry.WorkerLostError`).  Timeouts are
        validated at construction; ``heartbeat_timeout`` must exceed
        ``heartbeat_interval``.
    overlap_boundary:
        ``True`` (default): the optimizer boundary of step t is deferred
        and executed while step t+1's fill is already running, with every
        worker wave version-gated for bit-for-bit equivalence (see the
        module docstring).  Between steps the live model then lags one
        optimizer update until :meth:`sync` runs (automatic on
        ``state_dict`` / ``load_state_dict`` / ``close``, and the trainer
        syncs before evaluating).  ``False``: barrier at every minibatch
        boundary (the pre-overlap behaviour; live weights are current
        after every ``train_step``).
    deadlock_timeout:
        Seconds a worker may wait on a channel (or a version gate) before
        the step is aborted with :class:`PipelineDeadlockError` — a wedged
        pipe fails fast instead of hanging.
    model_spec:
        Process backend only: picklable
        :class:`~repro.pipeline.stage_compute.ModelSpec` each worker
        rebuilds its slice from.  Defaults to a pickled snapshot of
        ``model`` (``ModelSpec.from_model``) partitioned into
        ``len(stages)`` stages.
    start_method, transport_slot_bytes, done_grace:
        Process-backend tuning: multiprocessing start method (default fork
        where available), initial ring-slot capacity (rings grow on
        demand), and the extra driver-side wait beyond ``deadlock_timeout``
        before a silent worker wedges the runtime.
    num_replicas:
        R pipeline replicas for hybrid data × pipeline parallelism — a
        :class:`ReplicaGroup` of R worker pools behind the one scheduler
        loop.  Every replica reads the same delayed weight versions from
        the shared version clock (identical staleness), trains on its own
        contiguous shard of each minibatch with its own counter-based
        dropout stream, and the gradients fold in canonical replica order
        before the single (still overlapped) optimizer boundary.  R = 1 is
        the original single-pipeline runtime, bit for bit.

        Hybrid groups degrade elastically: a failure that wedges some but
        not all replicas drops the wedged ones (recorded in
        ``stats.degradations``), renormalizes the fold to the surviving
        count, and the next ``train_step`` — the caller retries the
        aborted minibatch — runs at R−1.  :meth:`rejoin_replica` readmits
        a dropped replica at a synced optimizer boundary.

    The model must be sliceable into a stage-program graph (see
    :mod:`repro.pipeline.stage_compute`); training-mode Dropout must be
    counter-based (:mod:`repro.nn.dropout`) — stream-mode dropout is
    rejected because its draw order would depend on wall-clock scheduling.

    Use as a context manager, or call :meth:`close`, to shut the workers
    down promptly; thread workers are daemons and process workers are
    daemonic child processes, so leaking one cannot hang interpreter exit.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        stages: list[Stage],
        num_microbatches: int,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        recompute_segment: int | None = None,
        deadlock_timeout: float = 30.0,
        backend: str = "thread",
        overlap_boundary: bool | None = None,
        fuse_waves: bool | None = None,
        model_spec: ModelSpec | None = None,
        start_method: str | None = None,
        transport_slot_bytes: int = 1 << 16,
        done_grace: float = 10.0,
        granularity: str = "layer",
        max_workers: int | None = None,
        partition_plan=None,
        inflight_steps: int | None = None,
        num_replicas: int = 1,
        net_options: dict | None = None,
    ):
        check_replica_count(num_replicas, model_name=type(model).__name__)
        overlap = True if overlap_boundary is None else bool(overlap_boundary)
        # Two steps in flight is the default with the overlapped boundary:
        # step t+2's fill is admitted before step t+1 is collected, so the
        # pipe never fully drains between minibatches.  The weight-version
        # window is deepened by (depth - 1) so the oldest version an
        # admitted step can resolve still exists.
        depth = (2 if inflight_steps is None else int(inflight_steps)) if overlap else 1
        if depth not in (1, 2):
            raise ValueError(f"inflight_steps must be 1 or 2, got {inflight_steps!r}")
        super().__init__(
            model,
            loss_fn,
            StepPlan(
                params=model.parameters(),
                optimizer=optimizer,
                stages=stages,
                num_microbatches=num_microbatches,
                method=method,
                pipemare=pipemare,
                base_schedule=base_schedule,
                grad_clip=grad_clip,
                recompute_segment=recompute_segment,
                partition_plan=partition_plan,
                inflight_depth=depth,
                num_replicas=num_replicas,
            ),
        )
        if backend not in ("thread", "process", "socket"):
            raise ValueError(f"unknown worker backend {backend!r}")
        if backend != "socket" and net_options:
            raise ValueError("net_options only applies to the socket backend")
        self.backend = backend
        self.granularity = granularity
        if max_workers is None and partition_plan is not None:
            # The plan can prescribe the worker cap; an explicit kwarg wins.
            max_workers = partition_plan.max_workers
        self.max_workers = max_workers
        self.overlap = overlap
        self.inflight_steps = depth
        # Fused wave programs are the default on every concurrent backend;
        # ``fuse_waves=False`` keeps the one-command-per-wave path alive as
        # the differential reference (trajectories are bit-identical either
        # way — fusion only batches the scheduler hand-off).
        self.fuse_waves = True if fuse_waves is None else bool(fuse_waves)
        # Boundary-overlap bookkeeping (set before pool construction so a
        # failed constructor can still run close()/__del__ safely).
        self._pending_sync: bool | None = None
        self._deferred_on = False
        self._inflight: deque[tuple[int, int, bool]] = deque()
        self._step_mark: float | None = None
        self.deadlock_timeout = deadlock_timeout
        # Kept for elastic rejoin: a dropped replica's pool is rebuilt with
        # the same tuning the original pools were (see rejoin_replica).
        self._done_grace = done_grace
        self._start_method = start_method
        self._transport_slot_bytes = transport_slot_bytes
        self._model_spec0: ModelSpec | None = None
        self.graph: WorkerGraph = build_worker_graph(
            model, stages, granularity=granularity, max_workers=max_workers
        )
        self.workers: list[WorkerCompute] = self.graph.workers
        for w in self.workers:
            for m in w.all_modules:
                if isinstance(m, Dropout) and m.p > 0 and not m.counter_based:
                    raise ValueError(
                        "AsyncPipelineRuntime does not support stream-mode "
                        "training Dropout: its RNG draw order would depend "
                        "on worker scheduling; switch the model to "
                        "counter-based dropout (Dropout(p, seed=...), see "
                        "repro.nn.dropout) or use the simulator backend"
                    )
        # Hybrid data × pipeline parallelism: replicas 1..R-1 are pickle
        # round-trip copies of (model, loss_fn), each sliced into its own
        # worker graph.  Copy workers only ever run sliced steps, so their
        # tied modules stay in deferred-gradient mode for the copies' whole
        # lifetime (exactly like process workers); the live model's modules
        # remain scoped per step by PipelineBackend.
        self.num_replicas = num_replicas
        self.replica_plan = ReplicaPlan(self.plan, model, loss_fn)
        self.replica_graphs: list[WorkerGraph] = [self.graph]
        for rep in self.replica_plan.replicas:
            g = build_worker_graph(
                rep.model, rep.stages, granularity=granularity,
                max_workers=max_workers,
            )
            for wrk in g.workers:
                wrk.enable_deferred()
                wrk.zero_deferred()
            self.replica_graphs.append(g)
        self._all_graph_workers: list[WorkerCompute] = [
            w for g in self.replica_graphs for w in g.workers
        ]
        k, n = len(self.workers), num_microbatches
        kt = k * num_replicas  # per-worker stats cover every replica's pool
        self.stats = RuntimeStats(
            last_busy=[0.0] * kt,
            total_busy=[0.0] * kt,
            last_transport=[0.0] * kt,
            total_transport=[0.0] * kt,
        )
        self._closed = False
        pools: list[_WorkerPoolBase] = []
        try:
            if backend == "process":
                spec0 = (
                    model_spec
                    if model_spec is not None
                    else ModelSpec.from_model(
                        model, num_stages=len(stages), plan=partition_plan
                    )
                )
                self._model_spec0 = spec0
                for r in range(num_replicas):
                    rep = None if r == 0 else self.replica_plan.replicas[r - 1]
                    pools.append(
                        ProcessWorkerPool(
                            graph=self.replica_graphs[r],
                            plan=self.plan,
                            stages=stages if rep is None else rep.stages,
                            loss_fn=loss_fn if rep is None else rep.loss_fn,
                            model_spec=spec0 if r == 0 else spec0.for_replica(r),
                            num_microbatches=n,
                            deadlock_timeout=deadlock_timeout,
                            done_grace=done_grace,
                            start_method=start_method,
                            transport_slot_bytes=transport_slot_bytes,
                            granularity=granularity,
                            max_workers=max_workers,
                            replica=r,
                            num_replicas=num_replicas,
                            shared=None if r == 0 else pools[0].shared_handles,
                            fuse_waves=self.fuse_waves,
                        )
                    )
            elif backend == "socket":
                # Lazy import: net.py imports this module at its top, so the
                # dependency must point this way only when actually used.
                from repro.pipeline.net import SocketWorkerPool

                if num_replicas != 1:
                    raise ValueError(
                        "socket backend does not support num_replicas > 1 yet"
                    )
                spec0 = (
                    model_spec
                    if model_spec is not None
                    else ModelSpec.from_model(
                        model, num_stages=len(stages), plan=partition_plan
                    )
                )
                pools.append(
                    SocketWorkerPool(
                        graph=self.graph,
                        plan=self.plan,
                        stages=stages,
                        loss_fn=loss_fn,
                        model_spec=spec0,
                        num_microbatches=n,
                        deadlock_timeout=deadlock_timeout,
                        done_grace=done_grace,
                        granularity=granularity,
                        max_workers=max_workers,
                        start_method=start_method,
                        fuse_waves=self.fuse_waves,
                        **(net_options or {}),
                    )
                )
            else:
                for r in range(num_replicas):
                    rep = None if r == 0 else self.replica_plan.replicas[r - 1]
                    pools.append(
                        ThreadWorkerPool(
                            self.replica_graphs[r],
                            self.plan,
                            loss_fn if rep is None else rep.loss_fn,
                            deadlock_timeout,
                            done_grace,
                            fuse_waves=self.fuse_waves,
                        )
                    )
        except BaseException:
            for p in pools:
                try:
                    p.close()
                except Exception:
                    pass
            raise
        # The scheduler drives the group; ``pool`` stays the replica-0 pool
        # for introspection (at R = 1 the group is a thin dispatch around
        # it with no behavioural change).
        self.group = ReplicaGroup(pools, self.replica_graphs, self.replica_plan)
        self.pool: _WorkerPoolBase = pools[0]

    # -- introspection ---------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    # -- training ---------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """Run one minibatch through the concurrent pipe; returns the mean
        microbatch training loss (bit-identical to the simulator's)."""
        if self._closed:
            raise RuntimeError("runtime is closed")
        if self.group.wedged:
            raise RuntimeWedgedError(
                "runtime is wedged after a deadlock (a worker never reported "
                "back); build a fresh runtime"
            )
        plan = self.plan
        n = plan.num_microbatches
        # Hybrid sharding: each replica trains on its own contiguous view of
        # the minibatch (replica 0 takes the first shard), with per-replica
        # microbatch splits, loss scales and external-input routing.  R = 1
        # reduces to the original single-pipeline step, bit for bit.
        if plan.num_replicas == 1:
            shards = [(x, y)]
        else:
            shards_x, shards_y = self._shard_minibatch(x, y, plan.num_replicas)
            shards = list(zip(shards_x, shards_y))
        steps = []
        for xr, yr in shards:
            xs, ys = self._split_minibatch(xr, yr, n)
            total = sum(self._num_samples(xj) for xj in xs)
            scales = [plan.grad_scale(self._num_samples(xj), total) for xj in xs]
            # Route each external model input to the graph edges that consume
            # it: multi-input models (the two-stream Transformer) yield tuple
            # microbatches, transposed here into per-input streams.  The
            # microbatches themselves are views of the caller's arrays — no
            # copies on this path (the process backend copies once, into the
            # command pipe).
            if self.graph.num_external == 1:
                ext = [xs]
            else:
                ext = [
                    [xs[j][i] for j in range(n)]
                    for i in range(self.graph.num_external)
                ]
            steps.append((ext, ys, scales))
        # The minibatch index of the step being admitted: ahead of the
        # plan's counter by one per uncollected in-flight step plus one if
        # the previous boundary is still pending.
        t = plan.t + len(self._inflight) + (1 if self._pending_sync is not None else 0)
        sync = plan.is_sync_step_at(t)

        if self._pending_sync is None and not self._inflight:
            # Opening a fresh pipeline epoch (first step, or first after a
            # sync): no boundary will run before this step's backward
            # waves, so the gradient accumulators must be clean *before*
            # any worker starts.
            plan.begin_step()
        if not self._deferred_on:
            self._begin_deferred_grads()
            self._deferred_on = True

        if self.overlap and self.inflight_steps >= 2:
            return self._train_step_pipelined(t, sync, steps, n)

        start = time.perf_counter()
        boundary = 0.0
        try:
            self.group.issue(t, sync, steps, n)
            if self._pending_sync is not None:
                # The overlap: step t's fill is already running on the
                # workers while the driver finishes step t-1 here.  The
                # version push inside is the release that admits step t's
                # gated (backward / T2-recompute) waves.
                b0 = time.perf_counter()
                self._complete_pending_boundary()
                boundary = time.perf_counter() - b0
            result = self.group.collect()
        except BaseException:
            # However the step died, first settle the *previous* step if
            # its boundary is still owed (its gradients are intact — it
            # completed), then leave the model usable monolithically: live
            # parameters back on the latest weight version (thread workers
            # may have re-pointed them at historical arrays mid-step) and
            # tied modules out of deferred mode — evaluation or
            # checkpointing after a caught error must not silently read
            # delayed weights or mis-route gradients.
            if self._pending_sync is not None:
                try:
                    self._complete_pending_boundary()
                except Exception:
                    # The original step error outranks this one; the
                    # half-applied boundary already wedged the pool, so
                    # the failure is not silent — further steps are
                    # rejected explicitly.
                    pass
            self._abort_deferred_grads()
            self._deferred_on = False
            self._zero_replica_grads()
            plan.store.load_latest()
            self._maybe_degrade()
            raise
        finally:
            # Borrowed per-slot version arrays are step-local state; the
            # workers are quiescent once collect returns (or aborted).
            for w in self._all_graph_workers:
                w.unload_borrowed()
        if not self.overlap:
            self._fold_pending_deferred()
            self._fold_replica_grads()
            b0 = time.perf_counter()
            plan.finish_step_detached(sync)
            self.group.publish_plan_state()
            plan.store.load_latest()
            boundary = time.perf_counter() - b0
            self._end_deferred()
        else:
            self._pending_sync = sync
        wall = time.perf_counter() - start
        # Stats commit atomically, and only for completed steps — aborted
        # steps contribute neither busy nor wall time.  ``boundary`` is the
        # non-overlapped boundary cost: the barrier path's full fold +
        # optimizer + publish, zero on the overlapped path (where that work
        # ran concurrently with this step's fill and is inside ``wall``
        # anyway).
        self.stats.commit(
            wall, result.busy, result.transport, result.stall,
            0.0 if self.overlap else boundary,
            commands=result.commands, reports=result.reports, lanes=result.lanes,
        )
        return float(np.mean(result.losses))

    def _train_step_pipelined(self, t, sync, steps, n) -> float:
        """The two-in-flight driver loop: admit step t, settle the oldest
        in-flight step (collect + its optimizer boundary) once the window
        is full, and return as soon as every sink worker has step t's
        losses — t's backward half keeps draining while the caller prepares
        the next minibatch.  Wall time is measured settle-to-settle
        (``_step_mark``), so per-step stats still sum to elapsed time."""
        try:
            seq = self.group.issue(t, sync, steps, n)
            if self._step_mark is None:
                self._step_mark = time.perf_counter()
            self._inflight.append((seq, t, sync))
            if len(self._inflight) >= self.inflight_steps:
                self._settle_oldest()
            losses = self.group.await_losses(seq)
            if losses is None:
                # The step failed or stalled before producing losses; drain
                # the window so the real error surfaces.
                while self._inflight:
                    self._settle_oldest()
                raise PipelineDeadlockError(
                    "pipeline stalled before the sink produced losses"
                )
        except BaseException:
            self._recover_after_failure()
            raise
        return float(np.mean(losses))

    def _settle_oldest(self):
        """Collect the oldest in-flight step and run its (now owed)
        optimizer boundary; commit its stats."""
        seq, t, sync = self._inflight.popleft()
        result = self.group.collect()
        self._pending_sync = sync
        self._complete_pending_boundary()
        now = time.perf_counter()
        wall = now - (self._step_mark if self._step_mark is not None else now)
        self._step_mark = now
        self.stats.commit(
            wall, result.busy, result.transport, result.stall, 0.0,
            commands=result.commands, reports=result.reports, lanes=result.lanes,
        )
        return result

    def _recover_after_failure(self) -> None:
        """Best-effort drain after a pipelined-step failure: settle what
        still can be settled, then leave the model usable monolithically
        (latest weights live, tied modules out of deferred mode) — same
        contract as the barrier path's error handling."""
        failed = False
        while self._inflight:
            if not failed:
                try:
                    self._settle_oldest()
                    continue
                except BaseException:
                    failed = True
                    continue
            # A step already failed: later in-flight steps ran on state the
            # failure may have polluted, so their gradients must not reach
            # the optimizer — collect only to keep the pool's bookkeeping
            # aligned.
            self._inflight.popleft()
            try:
                self.group.collect()
            except BaseException:
                pass
        if self._pending_sync is not None:
            try:
                self._complete_pending_boundary()
            except BaseException:
                pass
        self._step_mark = None
        self._abort_deferred_grads()
        self._deferred_on = False
        self._zero_replica_grads()
        self.plan.store.load_latest()
        for w in self._all_graph_workers:
            w.unload_borrowed()
        self._maybe_degrade()

    def _maybe_degrade(self) -> None:
        """Elastic replica degradation: if a failure wedged *some* of the
        group's active replicas but not all, drop the wedged ones and
        continue at the reduced count — the hybrid group trades data
        parallelism for liveness instead of wedging the whole run.

        Runs at the tail of both failure paths (barrier and pipelined),
        after every in-flight step was drained and the model restored to
        the latest published weights.  The caller's exception still
        propagates: the failed minibatch was aborted, and the *caller*
        retries it — now sharded over the survivors, with the boundary
        renormalized from n·R to n·(R−1) (``StepPlan.set_num_replicas``).
        A from-scratch run at the reduced count with the same shard
        assignment computes the same fold bit-for-bit (see
        :meth:`~repro.pipeline.plan.ReplicaPlan.fold_replica_grads`).

        A half-applied optimizer boundary wedges *all* pools
        (:meth:`_complete_pending_boundary`), so this declines exactly
        the failures that poisoned shared state no survivor can recover
        from — those still wedge the runtime."""
        group = self.group
        changed = False
        while True:
            wedged = [r for r in group.active if group.pools[r].wedged]
            if not wedged or len(wedged) == len(group.active):
                break
            for r in wedged:
                group.drop_replica(r)
                if r > 0:
                    # The dropped copy's buffers must never reach a fold
                    # again.
                    rep = self.replica_plan.replicas[r - 1]
                    for p in rep.params:
                        p.grad.fill(0.0)
                    for m in rep.deferred_modules:
                        for _, buf in m.deferred_grads():
                            buf.fill(0.0)
                self.stats.degradations.append({
                    "kind": "degrade",
                    "minibatch": self.plan.t,
                    "replica": r,
                    "reason": group.pools[r].kind + " worker pool wedged",
                    "active": list(group.active),
                })
            # Drain the survivors' residue.  A group issue that failed
            # mid-broadcast left every healthy pool with an issued step
            # the scheduler will never collect — and its workers are
            # executing that step *right now*, so the caller's retry
            # would race their gradient writes.  Wait for those steps to
            # finish and discard the results.  A survivor that fails
            # here wedges itself and the outer loop drops it too.
            for r in list(group.active):
                pool = group.pools[r]
                while pool._issued:
                    try:
                        pool.collect()
                    except BaseException:  # noqa: BLE001 — best-effort
                        break
            changed = True
        if changed:
            # The drain may have re-polluted gradient buffers and left
            # thread workers' borrowed version arrays loaded; restore the
            # post-abort invariants the failure paths established.
            self._zero_replica_grads()
            for w in self._all_graph_workers:
                w.unload_borrowed()
            self.plan.store.load_latest()
            self.plan.set_num_replicas(len(group.active))

    def rejoin_replica(self, r: int) -> None:
        """Version-fenced rejoin of a previously dropped replica at an
        optimizer boundary.

        :meth:`sync` runs first (every in-flight step settled, the
        store's latest version live), then a fresh worker pool is built
        for slot ``r``, its step-sequence counter aligned to the
        survivors' lockstep value, its gradient buffers zeroed, and the
        boundary renormalization restored to the new active count.
        Process pools attach the group's existing shared mirror and
        mailbox (the replica's lane was never reused), so the rejoined
        workers read the same weight versions the survivors do from
        their first wave — the version fence is the sync itself.

        The rejoined replica resumes its own persistent-state stream
        (e.g. BatchNorm running statistics) from where it froze at the
        drop; per-replica streams are independent, so survivors are
        unaffected."""
        if self._closed:
            raise RuntimeError("runtime is closed")
        group = self.group
        if not 0 <= r < self.num_replicas:
            raise ValueError(f"no such replica {r}")
        if r in group.active:
            raise ValueError(f"replica {r} is already active")
        if group.wedged:
            raise RuntimeWedgedError(
                "cannot rejoin a replica into a wedged group; build a "
                "fresh runtime"
            )
        self.sync()
        rep = None if r == 0 else self.replica_plan.replicas[r - 1]
        if self.backend == "process":
            spec0 = self._model_spec0
            pool = ProcessWorkerPool(
                graph=self.replica_graphs[r],
                plan=self.plan,
                stages=self.plan.stages if rep is None else rep.stages,
                loss_fn=self.loss_fn if rep is None else rep.loss_fn,
                model_spec=spec0 if r == 0 else spec0.for_replica(r),
                num_microbatches=self.plan.num_microbatches,
                deadlock_timeout=self.deadlock_timeout,
                done_grace=self._done_grace,
                start_method=self._start_method,
                transport_slot_bytes=self._transport_slot_bytes,
                granularity=self.granularity,
                max_workers=self.max_workers,
                replica=r,
                num_replicas=self.num_replicas,
                shared=group.pools[0].shared_handles,
                fuse_waves=self.fuse_waves,
            )
        elif self.backend == "thread":
            pool = ThreadWorkerPool(
                self.replica_graphs[r],
                self.plan,
                self.loss_fn if rep is None else rep.loss_fn,
                self.deadlock_timeout,
                self._done_grace,
                fuse_waves=self.fuse_waves,
            )
        else:
            raise ValueError(
                f"rejoin_replica is not supported on the {self.backend!r} "
                f"backend"
            )
        # Lockstep: the new pool must tag its first step with the same
        # sequence number the survivors will (the shared-mailbox parity
        # contract keys off this).
        pool._seq = group.pools[group.active[0]]._seq
        if rep is not None:
            for p in rep.params:
                p.grad.fill(0.0)
            for m in rep.deferred_modules:
                for _, buf in m.deferred_grads():
                    buf.fill(0.0)
        group.readmit(r, pool)
        self.plan.set_num_replicas(len(group.active))
        self.stats.degradations.append({
            "kind": "rejoin",
            "minibatch": self.plan.t,
            "replica": r,
            "active": list(group.active),
        })

    def _complete_pending_boundary(self) -> None:
        """Fold the pending step's deferred tied gradients, run its
        detached optimizer boundary, and publish version t+1 — the publish
        being the release the next step's version gates observe.

        A failure here may leave the boundary half-applied (optimizer or
        T2 state advanced with no version published), after which the
        exact trajectory cannot be continued — so it wedges the runtime
        explicitly instead of letting later steps silently diverge from
        the simulator."""
        sync = self._pending_sync
        self._pending_sync = None
        try:
            self._fold_pending_deferred()
            self._fold_replica_grads()
            self.plan.finish_step_detached(sync)
            self.group.publish_plan_state()
        except BaseException:
            self.group.wedged = True
            raise

    def _fold_pending_deferred(self) -> None:
        """Fold deferred tied-gradient buffers into ``Parameter.grad`` and
        re-zero them, staying in deferred mode — the per-boundary fold of
        the overlapped protocol (ordering: strictly before the boundary's
        version push releases the next step's backward waves, which write
        these buffers again)."""
        for m in self._deferred_modules:
            for p, buf in m.deferred_grads():
                p.grad += buf
                buf.fill(0.0)

    def _fold_replica_grads(self) -> None:
        """The replica half of the boundary fold (no-op at R = 1): fold
        each copy replica's deferred tied-gradient buffers into its own
        accumulated gradients, then add every copy's gradients into the
        live parameters in ascending replica index — the canonical fold
        order, independent of which replica's pool finished first (see
        :class:`~repro.pipeline.plan.ReplicaPlan`).  Runs strictly after
        :meth:`_fold_pending_deferred` (replica 0's own deferred fold) and
        strictly before the optimizer consumes ``Parameter.grad``.  A
        degraded group folds its *active* replicas only — a dropped
        replica's buffers are stale and were zeroed at the drop."""
        active = set(self.group.active)
        for rep in self.replica_plan.replicas:
            if rep.index not in active:
                continue
            for m in rep.deferred_modules:
                for p, buf in m.deferred_grads():
                    p.grad += buf
                    buf.fill(0.0)
        self.replica_plan.fold_replica_grads(active=active)

    def _zero_replica_grads(self) -> None:
        """Clear every copy replica's gradient and deferred buffers after
        an aborted step — partial accumulations must not leak into the
        next step's fold (replica 0's buffers are handled by the plan's
        own begin_step / abort paths)."""
        for rep in self.replica_plan.replicas:
            for p in rep.params:
                p.grad.fill(0.0)
            for m in rep.deferred_modules:
                for _, buf in m.deferred_grads():
                    buf.fill(0.0)

    def _end_deferred(self) -> None:
        """Leave deferred tied-gradient mode (buffers already folded)."""
        for m in self._deferred_modules:
            m.disable_deferred_grads()
        self._deferred_on = False

    def sync(self) -> None:
        """Complete any pending (overlapped) optimizer boundary and point
        the live model at the latest weights.  Idempotent and cheap when
        there is nothing pending.  Called automatically by ``state_dict``,
        ``load_state_dict`` and ``close``; :class:`~repro.train.PipelineTrainer`
        calls it before each evaluation.  Direct users of ``train_step``
        who read model weights between steps with overlap on should call
        it first."""
        try:
            while self._inflight:
                self._settle_oldest()
        except BaseException:
            self._recover_after_failure()
            raise
        self._step_mark = None
        if self._pending_sync is not None:
            self._complete_pending_boundary()
        if self._deferred_on:
            self._end_deferred()
        self.plan.store.load_latest()
        # The workers are quiescent now; drop any borrowed per-step version
        # arrays they left loaded.
        for w in self._all_graph_workers:
            w.unload_borrowed()

    # -- accounting --------------------------------------------------------------
    def step_time(self) -> float:
        # The next step to issue is ahead of the plan's counter by the
        # in-flight window plus a pending boundary; the trainer calls this
        # *before* train_step.
        return self.plan.step_time_at(
            self.plan.t
            + len(self._inflight)
            + (1 if self._pending_sync is not None else 0)
        )

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        self.sync()
        return super().state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.sync()
        super().load_state_dict(state)
        self.group.full_resync()

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (idempotent).  Completes any pending overlapped
        boundary first, so the model holds the latest weights afterwards.
        Safe after a deadlock: thread workers consume the shutdown sentinel
        once their own channel timeout returns them to the command loop,
        and process workers are terminated if they do not exit in time."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        pending = (
            getattr(self, "_pending_sync", None) is not None
            or getattr(self, "_deferred_on", False)
            or getattr(self, "_inflight", None)
        )
        wedged = getattr(getattr(self, "group", None), "wedged", False)
        try:
            if pending and not wedged:
                self.sync()
            elif pending:
                # A wedged pipe cannot be drained — syncing would block on
                # done reports that will never arrive.  Abandon the
                # in-flight steps and leave the model monolithically
                # usable (latest published weights, tied modules out of
                # deferred mode), exactly like the failure paths do.
                self._inflight.clear()
                self._pending_sync = None
                self._step_mark = None
                self._abort_deferred_grads()
                self._deferred_on = False
                self._zero_replica_grads()
                self.plan.store.load_latest()
        except Exception:
            pass
        group = getattr(self, "group", None)
        if group is not None:
            group.close()
        # A straggler thread on the deadlock path may have re-loaded a
        # borrowed version array after train_step's own unload; now that
        # every worker has stopped, detach them for good.
        for w in getattr(self, "_all_graph_workers", getattr(self, "workers", [])):
            w.unload_borrowed()

    def __enter__(self) -> "AsyncPipelineRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; workers are daemons regardless
        try:
            self.close()
        except Exception:
            pass
