"""Concurrent asynchronous pipeline runtime.

Where :class:`repro.pipeline.PipelineExecutor` *simulates* pipeline delay by
processing microbatches one at a time, this runtime actually runs the
pipeline: every stage slice executes on its own worker, following the
interleaved occupancy schedule from :mod:`repro.pipeline.schedule` for real
— 1F1B for the asynchronous methods, fill/drain for GPipe and T3 warmup
steps.  Weight versions are read at the exact ``v_fwd`` / ``v_bkwd`` /
recompute slots the delay profile prescribes, so the per-step losses and
final weights are **bit-for-bit identical** to the sequential simulator
(enforced by ``tests/test_runtime_equivalence.py``,
``tests/test_runtime_process.py`` and ``tests/test_runtime_translation.py``).

The model is sliced along the stage partition into a **worker graph**
(:func:`repro.pipeline.stage_compute.build_worker_graph`): each worker owns
one or more segments of the model's stage-program graph, and every dataflow
edge between workers gets its own activation / recompute / gradient
channel.  Purely linear models degenerate to the familiar chain (worker w
talks only to w±1); two-stream models like the Transformer add skip edges —
the target-embedding output jumps from the embedding worker straight to the
cross-attention join, and the encoder output follows — with the same
worker programs, because every edge flows forward through the worker order
(validated at build time), which keeps 1F1B and fill/drain deadlock-free.

Two worker backends share one scheduler loop (:meth:`train_step`):

* :class:`ThreadWorkerPool` (``backend="thread"``, the ``async`` runtime) —
  per-stage worker threads with one in-process queue per graph edge.
  NumPy kernels release the GIL, which is where the wall-clock overlap
  comes from; Python-level glue still serialises on it.
* :class:`ProcessWorkerPool` (``backend="process"``) — per-stage worker
  *processes*, sidestepping the GIL entirely.  Each worker rebuilds its
  slice of the worker graph from a picklable
  :class:`~repro.pipeline.stage_compute.ModelSpec` (nothing live is
  shipped), reads weight versions from a
  :class:`~repro.pipeline.weight_store.SharedWeightMirror` the driver
  republishes after every optimizer step, and exchanges edge payloads with
  its peers over the pickle-free shared-memory ring buffers of
  :mod:`repro.pipeline.transport` (one ring per graph edge per direction;
  multi-part messages carry tuple payloads such as the decoder's
  ``(d, memory, masks…)``).  Accumulated gradients return through a
  :class:`~repro.pipeline.transport.SharedGradMailbox` and the optimizer
  still steps once per minibatch on the driver.

Why equivalence holds despite concurrency:

* every weight version a minibatch reads already exists at the minibatch
  boundary (the newest version any slot resolves to is the current one), so
  no read races an optimizer step;
* each parameter belongs to exactly one worker, which processes backwards
  in microbatch order — gradient accumulation order per parameter matches
  the simulator exactly.  Weight-tied modules either share the owner's
  worker (tied embeddings) or accumulate into a module-local deferred
  buffer folded at the minibatch boundary (tied output projections), in
  the same order on every backend;
* stochastic forwards use counter-based dropout
  (:mod:`repro.nn.dropout`): masks are pure functions of
  (seed, layer, step, microbatch), so draw order cannot depend on worker
  scheduling.  Stream-mode training dropout is rejected at construction;
* per-microbatch forward caches are snapshotted/restored around the many
  in-flight microbatches a worker interleaves;
* NumPy kernels are deterministic, and shared-memory copies are bit-exact,
  so where a value is computed (thread, process) never changes what is
  computed.

The optimizer steps once per minibatch on the driver (the paper's semantics
— updates land at minibatch boundaries), so a train step is: broadcast the
step context, let the workers drain the schedule, then run the shared
optimizer-boundary logic from the plan.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.core import PipeMareConfig
from repro.nn.dropout import Dropout
from repro.nn.module import Module
from repro.optim import Optimizer
from repro.optim.schedulers import LRSchedule
from repro.pipeline.delays import Method
from repro.pipeline.partition import Stage
from repro.pipeline.plan import PipelineBackend, ResolverSpec, StepPlan, WorkerPlanMirror
from repro.pipeline.schedule import stage_programs
from repro.pipeline.stage_compute import (
    ModelSpec,
    WorkerCompute,
    WorkerGraph,
    build_worker_graph,
)
from repro.pipeline.transport import (
    SharedGradMailbox,
    ShmRing,
    TransportTimeout,
)
from repro.pipeline.weight_store import SharedWeightMirror


class PipelineDeadlockError(RuntimeError):
    """A worker waited longer than ``deadlock_timeout`` for an activation or
    gradient that never arrived — the schedule's dataflow stalled."""


@dataclass
class _StepContext:
    """Everything one train step shares between the driver and thread
    workers.  ``ext[i][j]`` is external model input i for microbatch j;
    the per-kind queue dicts are keyed by cross-worker edge index."""

    sync: bool
    ext: list
    ys: list
    scales: list[float]
    programs: list[list[tuple[str, int]]]
    losses: list[float]
    act_q: dict[int, queue.SimpleQueue]
    rec_q: dict[int, queue.SimpleQueue]
    grad_q: dict[int, queue.SimpleQueue]


@dataclass
class RuntimeStats:
    """Wall-clock accounting for the last :meth:`train_step` (and running
    totals) — the raw material for measured bubble fractions.

    Stats are committed **atomically and only for completed steps**: an
    aborted step (worker exception, deadlock) contributes nothing, so busy
    time from a partial step can never be mixed with wall time that
    excludes it.

    ``busy`` is compute time (channel waits and payload copies excluded);
    ``transport`` is the time the process backend spent copying payloads
    through shared memory (zero for threads).  The two are disjoint, so a
    worker's *active* time is their sum — that is the quantity
    :meth:`bubble_fraction` treats as non-idle and
    :meth:`transport_fraction` takes its share of."""

    steps: int = 0
    last_wall: float = 0.0
    total_wall: float = 0.0
    last_busy: list[float] = field(default_factory=list)
    total_busy: list[float] = field(default_factory=list)
    last_transport: list[float] = field(default_factory=list)
    total_transport: list[float] = field(default_factory=list)

    def commit(self, wall: float, busy: list[float], transport: list[float]) -> None:
        """Fold one *completed* step into the running totals."""
        self.steps += 1
        self.last_wall = wall
        self.total_wall += wall
        self.last_busy = list(busy)
        self.last_transport = list(transport)
        for w, b in enumerate(busy):
            self.total_busy[w] += b
        for w, x in enumerate(transport):
            self.total_transport[w] += x

    def bubble_fraction(self) -> float:
        """1 − active/(wall × workers) over all steps so far: the measured
        share of worker-time spent idle (queue waits + fill/drain).  Active
        time includes transport copies — moving an activation is work, not
        bubble."""
        if not self.total_busy or self.total_wall <= 0:
            return 0.0
        denom = self.total_wall * len(self.total_busy)
        active = sum(self.total_busy) + sum(self.total_transport)
        return max(0.0, 1.0 - active / denom)

    def transport_fraction(self) -> float:
        """Share of worker *active* time (compute + copies) spent copying
        payloads through the shared-memory transport."""
        active = sum(self.total_busy) + sum(self.total_transport)
        if active <= 0:
            return 0.0
        return sum(self.total_transport) / active


@dataclass
class _StepResult:
    losses: list[float]
    busy: list[float]
    transport: list[float]


# -- the shared per-worker program interpreter --------------------------------


def _execute_program(
    compute: WorkerCompute,
    program: list[tuple[str, int]],
    resolver,
    sync: bool,
    chans,
    loss_fn,
    ext,
    ys,
    scales,
    losses,
) -> float:
    """Run one worker's (op, microbatch) list for one step.

    Identical for both backends: only ``chans`` (queue- or ring-backed) and
    ``resolver`` (driver :class:`StepPlan` or a worker's
    :class:`WorkerPlanMirror`) differ.  Each op walks the worker's segments
    in graph order (forward) or reverse (backward); same-worker edges hand
    payloads off through a local dict, cross-worker edges through the
    channel of that edge.  Returns busy seconds (time spent computing,
    excluding channel waits).
    """
    snapshots: dict[int, list[dict]] = {}
    grads: dict[int, np.ndarray] = {}
    recompute = resolver.recompute_active(sync)
    busy = 0.0

    def run_wave(kind: str, j: int, weights_for_stage) -> None:
        """One forward-style pass (op F on "act", op R on "rec")."""
        nonlocal busy
        local: dict[int, object] = {}
        loaded = False
        for seg in compute.segments:
            ins = []
            for e in seg.in_edges:
                if e.src is None:
                    ins.append(ext[e.ext_index][j])
                elif e.local:
                    ins.append(local.pop(e.index))
                else:
                    ins.append(chans.recv(kind, e.index))
            t0 = time.perf_counter()
            if not loaded:
                compute.load_weights(weights_for_stage)
                compute.set_dropout_slot(resolver.t, j)
                loaded = True
            out = seg.forward(ins)
            if seg.is_sink and kind == "act":
                losses[j] = loss_fn(out, ys[j])
                grads[j] = loss_fn.backward() * scales[j]
            busy += time.perf_counter() - t0
            if seg.out_edge is not None:
                e = seg.out_edge
                if e.local:
                    local[e.index] = out
                else:
                    chans.send(kind, e.index, out)
        if kind == "rec" or not recompute:
            t0 = time.perf_counter()
            snapshots[j] = compute.cache_state()
            busy += time.perf_counter() - t0

    def run_backward(j: int) -> None:
        nonlocal busy
        local: dict[int, object] = {}
        restored = False
        for seg in reversed(compute.segments):
            if seg.is_sink:
                g = grads.pop(j)
            elif seg.out_edge.local:
                g = local.pop(seg.out_edge.index)
            else:
                g = chans.recv("grad", seg.out_edge.index)
            t0 = time.perf_counter()
            if not restored:
                compute.load_cache_state(snapshots.pop(j))
                compute.load_weights(lambda s: resolver.backward_weights(s, j, sync))
                restored = True
            gins = seg.backward(g)
            busy += time.perf_counter() - t0
            for e, gi in zip(seg.in_edges, gins):
                if e.src is None:
                    continue
                if e.local:
                    local[e.index] = gi
                else:
                    chans.send("grad", e.index, gi)

    for op, j in program:
        if op == "F":
            run_wave("act", j, lambda s: resolver.forward_weights(s, j, sync))
        elif op == "R":
            run_wave("rec", j, lambda s: resolver.recompute_weights(s, j))
        else:  # "B"
            run_backward(j)
    return busy


class _QueueChannels:
    """Thread-backend channel set: one per-step in-process SimpleQueue per
    cross-worker edge and payload kind."""

    def __init__(self, ctx: _StepContext, w: int, timeout: float):
        self._by_kind = {"act": ctx.act_q, "rec": ctx.rec_q, "grad": ctx.grad_q}
        self._w = w
        self._timeout = timeout

    def recv(self, kind: str, edge: int):
        try:
            return self._by_kind[kind][edge].get(timeout=self._timeout)
        except queue.Empty:
            raise TransportTimeout(
                f"worker {self._w} waited >{self._timeout}s for a {kind} "
                f"payload on edge {edge} that never arrived"
            ) from None

    def send(self, kind: str, edge: int, payload) -> None:
        self._by_kind[kind][edge].put(payload)


class _RingChannels:
    """Process-backend channel set: one shared-memory ring per cross-worker
    edge and payload kind.

    Messages are tagged with the driver's step sequence; a tag older than
    the current step is residue from an aborted step and is discarded, so
    the channels self-heal after an error without any flush handshake.
    """

    def __init__(self, rings: dict[tuple[str, int], ShmRing], timeout: float):
        self._rings = rings
        self._timeout = timeout
        self.step = 0

    def xfer_seconds(self) -> float:
        return sum(r.xfer_seconds for r in self._rings.values())

    def recv(self, kind: str, edge: int):
        ring = self._rings[(kind, edge)]
        while True:
            tag, payload = ring.recv_msg(self._timeout)
            if tag == self.step:
                return payload
            # stale message from an aborted step — drop and keep looking

    def send(self, kind: str, edge: int, payload) -> None:
        self._rings[(kind, edge)].send_msg(payload, self.step, self._timeout)

    def close(self) -> None:
        for r in self._rings.values():
            r.close()


# -- worker pools --------------------------------------------------------------


def _build_programs(
    method: Method, num_workers: int, num_microbatches: int, recompute: bool
) -> dict[bool, list[list[tuple[str, int]]]]:
    """Worker programs, straight off the occupancy grids: the schedule
    module's Figure 1 cartoons, executed for real.  Keyed by the step's
    sync flag — GPipe-style fill/drain for synchronous steps (T3 warmup;
    for the GPipe method ``is_sync_step()`` is always True), the method's
    own interleaved schedule otherwise.  Thread pools build this on the
    driver; process workers rebuild the identical dict from the resolver
    spec inside their own interpreter."""
    return {
        True: stage_programs(Method.GPIPE, num_workers, num_microbatches, recompute=False),
        False: stage_programs(method, num_workers, num_microbatches, recompute=recompute),
    }


class _WorkerPoolBase:
    """Shared driver-side collection loop of the two pools.

    Done messages are ``(worker, kind, busy, transport, payload)`` with kind
    in {"ok", "error", "deadlock"} (plus "ready"/"init_error" during process
    startup).  ``_collect`` gathers all workers' reports into locals and
    raises on failure **without mutating any runtime state**, which is what
    lets :meth:`AsyncPipelineRuntime.train_step` commit stats atomically for
    completed steps only.
    """

    kind: str = ""

    def __init__(self, num_workers: int, deadlock_timeout: float, done_grace: float):
        self.num_workers = num_workers
        self.deadlock_timeout = deadlock_timeout
        self.done_grace = done_grace
        self.wedged = False

    def _get_done(self, timeout: float):
        raise NotImplementedError

    def _peer_failure(self) -> str | None:
        """Process pools report a worker that died without a message (killed,
        segfaulted); threads cannot die silently."""
        return None

    def _next_done(self, deadline: float):
        """One done message, failing fast on dead peers.  A worker that will
        never report wedges the pool: don't reuse it, but close() can still
        deliver shutdown sentinels / terminate stragglers."""
        while True:
            try:
                return self._get_done(min(0.2, self.deadlock_timeout + self.done_grace))
            except queue.Empty:
                dead = self._peer_failure()
                if dead is not None:
                    self.wedged = True
                    raise PipelineDeadlockError(dead) from None
                if time.perf_counter() > deadline:
                    self.wedged = True
                    raise PipelineDeadlockError(
                        f"pipeline stalled: a worker did not finish within "
                        f"{self.deadlock_timeout + self.done_grace:.0f}s"
                    ) from None

    def _collect(self) -> tuple[list[float], list[float], dict[int, object]]:
        k = self.num_workers
        busys = [0.0] * k
        xfers = [0.0] * k
        extras: dict[int, object] = {}
        errors: list[tuple[int, BaseException]] = []
        deadlocks: list[tuple[int, str]] = []
        for _ in range(k):
            # Each report gets its own full timeout window: a worker whose
            # final (secondary) channel wait starts late in the step must
            # still get to report its TransportTimeout, otherwise the real
            # worker exception already collected would be masked by a
            # spurious wedge.
            deadline = time.perf_counter() + self.deadlock_timeout + self.done_grace
            w, kind, busy, xfer, payload = self._next_done(deadline)
            busys[w] = busy
            xfers[w] = xfer
            if kind == "error":
                errors.append((w, payload))
            elif kind == "deadlock":
                deadlocks.append((w, payload))
            else:
                extras[w] = payload
        if errors:
            # Real exceptions outrank the secondary starvation timeouts they
            # cause in neighbouring workers.
            raise errors[0][1]
        if deadlocks:
            raise PipelineDeadlockError(
                f"worker {deadlocks[0][0]} reported: {deadlocks[0][1]}"
            )
        return busys, xfers, extras

    def run_step(self, sync, ext, ys, scales, num_microbatches) -> _StepResult:
        raise NotImplementedError

    def publish_plan_state(self) -> None:
        """Called after the optimizer boundary; process pools push the new
        weight version (and T2 velocities) into the shared mirror."""

    def full_resync(self) -> None:
        """Called after a checkpoint restore rewrote the version window."""

    def close(self) -> None:
        raise NotImplementedError


class ThreadWorkerPool(_WorkerPoolBase):
    """Per-stage worker threads with in-process per-edge queues."""

    kind = "thread"

    def __init__(
        self,
        graph: WorkerGraph,
        plan: StepPlan,
        loss_fn,
        deadlock_timeout: float,
        done_grace: float,
    ):
        super().__init__(graph.num_workers, deadlock_timeout, done_grace)
        self.graph = graph
        self.workers = graph.workers
        self.plan = plan
        self._programs = _build_programs(
            plan.method, graph.num_workers, plan.num_microbatches,
            plan.recompute_segment is not None,
        )
        self._cross = [e.index for e in graph.cross_edges()]
        self.loss_fn = loss_fn
        self._cmd: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(self.num_workers)
        ]
        self._done: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(w,), name=f"pipe-worker-{w}", daemon=True
            )
            for w in range(self.num_workers)
        ]
        for th in self._threads:
            th.start()

    def _get_done(self, timeout: float):
        return self._done.get(timeout=timeout)

    def run_step(self, sync, ext, ys, scales, num_microbatches) -> _StepResult:
        ctx = _StepContext(
            sync=sync,
            ext=ext,
            ys=ys,
            scales=scales,
            programs=self._programs[bool(sync)],
            losses=[0.0] * num_microbatches,
            act_q={e: queue.SimpleQueue() for e in self._cross},
            rec_q={e: queue.SimpleQueue() for e in self._cross},
            grad_q={e: queue.SimpleQueue() for e in self._cross},
        )
        for cq in self._cmd:
            cq.put(ctx)
        busys, xfers, _ = self._collect()
        return _StepResult(losses=list(ctx.losses), busy=busys, transport=xfers)

    def _worker_loop(self, w: int) -> None:
        while True:
            ctx = self._cmd[w].get()
            if ctx is None:
                return
            busy = 0.0
            kind, payload = "ok", None
            chans = _QueueChannels(ctx, w, self.deadlock_timeout)
            try:
                busy = _execute_program(
                    self.workers[w], ctx.programs[w], self.plan, ctx.sync, chans,
                    self.loss_fn, ctx.ext, ctx.ys, ctx.scales, ctx.losses,
                )
            except TransportTimeout as exc:
                kind, payload = "deadlock", str(exc)
            except BaseException as exc:  # noqa: BLE001 — relayed to driver
                kind, payload = "error", exc
            self._done.put((w, kind, busy, 0.0, payload))

    def close(self) -> None:
        for cq in self._cmd:
            cq.put(None)
        for th in self._threads:
            th.join(timeout=1.0)


def _picklable_exc(exc: BaseException) -> BaseException:
    """Exceptions cross the done queue by pickle; anything that cannot make
    the trip is flattened to a RuntimeError carrying the formatted
    traceback."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        )


def _default_start_method() -> str:
    """fork where the platform offers it (cheap, inherits the loaded NumPy),
    else spawn.  Workers rebuild their state from picklable specs either
    way, so the start method is a pure performance knob."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _worker_rings(
    graph: WorkerGraph, w: int, base: str, slots: int
) -> dict[tuple[str, int], ShmRing]:
    """Attach worker ``w``'s endpoints: for each cross-worker edge it sits
    on, activations/recomputes flow src→dst and gradients dst→src."""
    rings: dict[tuple[str, int], ShmRing] = {}
    for e in graph.cross_edges():
        if e.dst.worker == w:
            rings[("act", e.index)] = ShmRing(f"{base}a{e.index}", slots=slots, role="recv")
            rings[("rec", e.index)] = ShmRing(f"{base}r{e.index}", slots=slots, role="recv")
            rings[("grad", e.index)] = ShmRing(f"{base}g{e.index}", slots=slots, role="send")
        elif e.src_worker == w:
            rings[("act", e.index)] = ShmRing(f"{base}a{e.index}", slots=slots, role="send")
            rings[("rec", e.index)] = ShmRing(f"{base}r{e.index}", slots=slots, role="send")
            rings[("grad", e.index)] = ShmRing(f"{base}g{e.index}", slots=slots, role="recv")
    return rings


def _process_worker_main(w: int, conn, done, init: dict) -> None:
    """Entry point of one spawned stage worker.

    Constructs everything locally from the picklable ``init`` payload —
    model replica via :class:`ModelSpec`, partition, worker graph, resolver
    over the attached weight mirror, ring endpoints — then serves step
    commands until the ``None`` sentinel (or a closed pipe) arrives.
    """
    k = init["k"]
    n = init["num_microbatches"]
    base = init["base"]
    spec: ResolverSpec = init["resolver_spec"]
    timeout = init["deadlock_timeout"]
    chans = None
    mirror = mailbox = None
    try:
        model, stages = init["model_spec"].build()
        names = [list(s.names) for s in stages]
        if names != init["stage_names"]:
            raise ValueError(
                f"worker {w}: model spec rebuilt a different partition than "
                f"the driver's (stage parameter names differ)"
            )
        graph = build_worker_graph(model, stages)
        if graph.num_workers != k or graph.edge_spec() != init["edges"]:
            raise ValueError(
                f"worker {w}: model spec rebuilt a different worker graph "
                f"than the driver's ({graph.num_workers} workers, edges "
                f"{graph.edge_spec()!r} vs {init['edges']!r})"
            )
        compute = graph.workers[w]
        # The replica only ever runs sliced steps, so tied modules stay in
        # deferred-gradient mode for its whole lifetime (the driver's own
        # modules are scoped per step by PipelineBackend instead).
        compute.enable_deferred()
        stage_shapes = init["stage_shapes"]
        mirror = SharedWeightMirror(
            f"{base}w", stage_shapes, spec.history, spec.use_t2, readonly=True
        )
        resolver = WorkerPlanMirror(spec, mirror)
        mailbox = SharedGradMailbox(f"{base}mb", stage_shapes)
        is_sink_worker = w == k - 1
        loss_fn = pickle.loads(init["loss_pickle"]) if is_sink_worker else None
        chans = _RingChannels(_worker_rings(graph, w, base, init["slots"]), timeout)
        programs = _build_programs(
            Method(spec.method), k, n, spec.recompute_segment is not None
        )
        has_pstate = compute.has_persistent_state()
        if init["pstate"][w] is not None:
            compute.load_persistent_state(init["pstate"][w])
    except BaseException as exc:  # noqa: BLE001 — reported to driver
        done.put((w, "init_error", 0.0, 0.0, _picklable_exc(exc)))
        return
    done.put((w, "ready", 0.0, 0.0, None))

    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            if msg[0] == "__pstate__":
                # Driver pushed fresh persistent state (checkpoint restore).
                compute.load_persistent_state(msg[1])
                continue
            step_seq, t, sync, scales, ext, ys = msg
            resolver.t = t
            chans.step = step_seq
            losses = [0.0] * n
            busy = 0.0
            kind, payload = "ok", None
            xfer0 = chans.xfer_seconds()
            try:
                for b in compute.bindings:
                    for p in b.params:
                        p.grad.fill(0.0)
                compute.zero_deferred()
                busy = _execute_program(
                    compute, programs[bool(sync)][w], resolver, sync, chans,
                    loss_fn, ext, ys, scales, losses,
                )
                for b in compute.bindings:
                    for pos, p in zip(b.positions, b.params):
                        mailbox.write(b.stage, pos, p.grad)
                payload = (
                    losses if is_sink_worker else None,
                    compute.persistent_state() if has_pstate else None,
                )
            except TransportTimeout as exc:
                kind, payload = "deadlock", str(exc)
            except BaseException as exc:  # noqa: BLE001 — relayed to driver
                kind, payload = "error", _picklable_exc(exc)
            done.put((w, kind, busy, chans.xfer_seconds() - xfer0, payload))
    finally:
        if chans is not None:
            chans.close()
        if mirror is not None:
            mirror.close()
        if mailbox is not None:
            mailbox.close()


class ProcessWorkerPool(_WorkerPoolBase):
    """Per-stage worker processes over the shared-memory transport."""

    kind = "process"

    def __init__(
        self,
        *,
        graph: WorkerGraph,
        plan: StepPlan,
        stages: list[Stage],
        loss_fn,
        model_spec: ModelSpec,
        num_microbatches: int,
        deadlock_timeout: float,
        done_grace: float,
        start_method: str | None = None,
        transport_slot_bytes: int = 1 << 16,
    ):
        k = graph.num_workers
        super().__init__(k, deadlock_timeout, done_grace)
        self.graph = graph
        self.driver_workers = graph.workers
        self.plan = plan
        self.stages = stages
        self._step_seq = 0
        # Cleanup state first: close() must be safe however far construction
        # got, so a failure mid-way (e.g. /dev/shm full after the mirror was
        # created) cannot leak segments for the driver's lifetime.
        self.mirror: SharedWeightMirror | None = None
        self.mailbox: SharedGradMailbox | None = None
        self._rings: list[ShmRing] = []
        self._conns = []
        self._procs = []
        base = f"pm{os.getpid():x}{os.urandom(3).hex()}"
        self._base = base
        try:
            stage_shapes = [[tuple(p.shape) for p in s.params] for s in stages]
            history = plan.profile.history_needed()
            self.mirror = SharedWeightMirror(
                f"{base}w", stage_shapes, history, plan.corrector is not None,
                create=True,
            )
            self.mirror.sync_from_store(plan.store, plan.corrector)
            self.mailbox = SharedGradMailbox(f"{base}mb", stage_shapes, create=True)
            # One aborted step can leave up to N unconsumed messages in a
            # ring; 2N slots let the next step proceed while recv discards
            # the residue.
            slots = max(2 * num_microbatches, 2)
            for e in graph.cross_edges():
                for tag in ("a", "r", "g"):
                    self._rings.append(
                        ShmRing(
                            f"{base}{tag}{e.index}", slots=slots,
                            slot_bytes=transport_slot_bytes, create=True,
                        )
                    )
            ctx = multiprocessing.get_context(start_method or _default_start_method())
            self._done = ctx.Queue()
            init = {
                "base": base,
                "k": k,
                "slots": slots,
                "num_microbatches": num_microbatches,
                "stage_shapes": stage_shapes,
                "stage_names": [list(s.names) for s in stages],
                "edges": graph.edge_spec(),
                "resolver_spec": plan.resolver_spec(),
                "model_spec": model_spec,
                "loss_pickle": pickle.dumps(loss_fn),
                "deadlock_timeout": deadlock_timeout,
                # Seed each replica with the driver's *current* persistent
                # state (BatchNorm running stats): a factory spec rebuilds a
                # fresh model, whose pristine stats must not clobber stats
                # that already evolved driver-side.
                "pstate": [
                    w.persistent_state() if w.has_persistent_state() else None
                    for w in graph.workers
                ],
            }
            # External model inputs are routed per step to exactly the
            # workers whose graph segments consume them.
            self._ext_needs = [graph.ext_needs(w) for w in range(k)]
            for w in range(k):
                recv_end, send_end = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_process_worker_main,
                    args=(w, recv_end, self._done, init),
                    name=f"pipe-proc-{w}",
                    daemon=True,
                )
                proc.start()
                recv_end.close()  # worker's end; driver keeps the sender
                self._conns.append(send_end)
                self._procs.append(proc)
            self._await_ready(k)
        except BaseException:
            self.close()
            raise

    def _await_ready(self, k: int) -> None:
        """Block until every worker rebuilt its slice and attached the
        transport, so spec/partition mismatches fail at construction."""
        ready = 0
        deadline = time.perf_counter() + max(120.0, self.done_grace)
        while ready < k:
            try:
                w, kind, _, _, payload = self._done.get(timeout=0.2)
            except queue.Empty:
                dead = self._peer_failure()
                if dead is not None:
                    raise PipelineDeadlockError(
                        f"process worker failed to start: {dead}"
                    ) from None
                if time.perf_counter() > deadline:
                    raise PipelineDeadlockError(
                        "process workers did not come up in time"
                    ) from None
                continue
            if kind == "init_error":
                raise payload
            if kind == "ready":
                ready += 1

    def _peer_failure(self) -> str | None:
        for proc in self._procs:
            if not proc.is_alive() and proc.exitcode != 0:
                return (
                    f"pipeline worker {proc.name} died with exit code "
                    f"{proc.exitcode} before reporting back"
                )
        return None

    def _get_done(self, timeout: float):
        return self._done.get(timeout=timeout)

    def run_step(self, sync, ext, ys, scales, num_microbatches) -> _StepResult:
        k = self.num_workers
        self._step_seq += 1
        for w, conn in enumerate(self._conns):
            try:
                conn.send((
                    self._step_seq,
                    self.plan.t,
                    sync,
                    scales,
                    {i: ext[i] for i in self._ext_needs[w]},
                    ys if w == k - 1 else None,
                ))
            except OSError as exc:
                # The worker's end of the pipe is gone — it died between
                # steps.  Same contract as a mid-step death: wedge the pool.
                self.wedged = True
                raise PipelineDeadlockError(
                    f"pipeline worker {w} is gone ({exc}); build a fresh runtime"
                ) from None
        busys, xfers, extras = self._collect()
        losses, _ = extras[k - 1]
        for w, (_, pstate) in extras.items():
            if pstate is not None:
                self.driver_workers[w].load_persistent_state(pstate)
        for s, stage in enumerate(self.stages):
            for pos, p in enumerate(stage.params):
                p.grad[...] = self.mailbox.read(s, pos)
        return _StepResult(losses=list(losses), busy=busys, transport=xfers)

    def publish_plan_state(self) -> None:
        store = self.plan.store
        v = store.latest_version
        self.mirror.publish_version(
            v, [store.weights(s, v) for s in range(store.num_stages)]
        )
        if self.plan.corrector is not None:
            self.mirror.publish_velocity(self.plan.corrector.velocity)

    def full_resync(self) -> None:
        self.mirror.sync_from_store(self.plan.store, self.plan.corrector)
        # Push driver-side persistent state (e.g. restored BatchNorm running
        # stats) down to the worker replicas; the pipe is FIFO, so workers
        # apply it before any subsequent step command.
        for w, (conn, compute) in enumerate(zip(self._conns, self.driver_workers)):
            if compute.has_persistent_state():
                try:
                    conn.send(("__pstate__", compute.persistent_state()))
                except OSError as exc:
                    self.wedged = True
                    raise PipelineDeadlockError(
                        f"pipeline worker {w} is gone ({exc}); build a fresh runtime"
                    ) from None

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        for ring in self._rings:
            ring.unlink()
        if self.mirror is not None:
            self.mirror.unlink()
        if self.mailbox is not None:
            self.mailbox.unlink()


class AsyncPipelineRuntime(PipelineBackend):
    """Event-driven multi-worker pipeline backend.

    Accepts the same arguments as :class:`~repro.pipeline.PipelineExecutor`
    plus:

    backend:
        ``"thread"`` (default; the CLI's ``async`` runtime) or
        ``"process"`` (the CLI's ``process`` runtime — stage workers in
        separate processes over shared-memory transport).
    deadlock_timeout:
        Seconds a worker may wait on a channel before the step is aborted
        with :class:`PipelineDeadlockError` — a wedged pipe fails fast
        instead of hanging.
    model_spec:
        Process backend only: picklable
        :class:`~repro.pipeline.stage_compute.ModelSpec` each worker
        rebuilds its slice from.  Defaults to a pickled snapshot of
        ``model`` (``ModelSpec.from_model``) partitioned into
        ``len(stages)`` stages.
    start_method, transport_slot_bytes, done_grace:
        Process-backend tuning: multiprocessing start method (default fork
        where available), initial ring-slot capacity (rings grow on
        demand), and the extra driver-side wait beyond ``deadlock_timeout``
        before a silent worker wedges the runtime.

    The model must be sliceable into a stage-program graph (see
    :mod:`repro.pipeline.stage_compute`); training-mode Dropout must be
    counter-based (:mod:`repro.nn.dropout`) — stream-mode dropout is
    rejected because its draw order would depend on wall-clock scheduling.

    Use as a context manager, or call :meth:`close`, to shut the workers
    down promptly; thread workers are daemons and process workers are
    daemonic child processes, so leaking one cannot hang interpreter exit.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        stages: list[Stage],
        num_microbatches: int,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        recompute_segment: int | None = None,
        deadlock_timeout: float = 30.0,
        backend: str = "thread",
        model_spec: ModelSpec | None = None,
        start_method: str | None = None,
        transport_slot_bytes: int = 1 << 16,
        done_grace: float = 10.0,
    ):
        super().__init__(
            model,
            loss_fn,
            StepPlan(
                params=model.parameters(),
                optimizer=optimizer,
                stages=stages,
                num_microbatches=num_microbatches,
                method=method,
                pipemare=pipemare,
                base_schedule=base_schedule,
                grad_clip=grad_clip,
                recompute_segment=recompute_segment,
            ),
        )
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown worker backend {backend!r}")
        self.backend = backend
        self.deadlock_timeout = deadlock_timeout
        self.graph: WorkerGraph = build_worker_graph(model, stages)
        self.workers: list[WorkerCompute] = self.graph.workers
        for w in self.workers:
            for m in w.all_modules:
                if isinstance(m, Dropout) and m.p > 0 and not m.counter_based:
                    raise ValueError(
                        "AsyncPipelineRuntime does not support stream-mode "
                        "training Dropout: its RNG draw order would depend "
                        "on worker scheduling; switch the model to "
                        "counter-based dropout (Dropout(p, seed=...), see "
                        "repro.nn.dropout) or use the simulator backend"
                    )
        k, n = len(self.workers), num_microbatches
        self.stats = RuntimeStats(
            last_busy=[0.0] * k,
            total_busy=[0.0] * k,
            last_transport=[0.0] * k,
            total_transport=[0.0] * k,
        )
        self._closed = False
        if backend == "process":
            self.pool: _WorkerPoolBase = ProcessWorkerPool(
                graph=self.graph,
                plan=self.plan,
                stages=stages,
                loss_fn=loss_fn,
                model_spec=(
                    model_spec
                    if model_spec is not None
                    else ModelSpec.from_model(model, num_stages=len(stages))
                ),
                num_microbatches=n,
                deadlock_timeout=deadlock_timeout,
                done_grace=done_grace,
                start_method=start_method,
                transport_slot_bytes=transport_slot_bytes,
            )
        else:
            self.pool = ThreadWorkerPool(
                self.graph, self.plan, loss_fn, deadlock_timeout, done_grace,
            )

    # -- introspection ---------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    # -- training ---------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """Run one minibatch through the concurrent pipe; returns the mean
        microbatch training loss (bit-identical to the simulator's)."""
        if self._closed:
            raise RuntimeError("runtime is closed")
        if self.pool.wedged:
            raise RuntimeError(
                "runtime is wedged after a deadlock (a worker never reported "
                "back); build a fresh runtime"
            )
        plan = self.plan
        n = plan.num_microbatches
        xs, ys = self._split_minibatch(x, y, n)
        total = sum(self._num_samples(xj) for xj in xs)
        scales = [plan.grad_scale(self._num_samples(xj), total) for xj in xs]
        sync = plan.is_sync_step()
        # Route each external model input to the graph edges that consume
        # it: multi-input models (the two-stream Transformer) yield tuple
        # microbatches, transposed here into per-input streams.
        if self.graph.num_external == 1:
            ext = [xs]
        else:
            ext = [[xs[j][i] for j in range(n)] for i in range(self.graph.num_external)]

        plan.begin_step()
        self._begin_deferred_grads()
        start = time.perf_counter()
        try:
            result = self.pool.run_step(sync, ext, ys, scales, n)
        except BaseException:
            # However the step died, leave the model usable monolithically:
            # live parameters back on the latest weight version (thread
            # workers may have re-pointed them at historical arrays
            # mid-step) and tied modules out of deferred mode — evaluation
            # or checkpointing after a caught error must not silently read
            # delayed weights or mis-route gradients.
            self._abort_deferred_grads()
            plan.store.load_latest()
            raise
        finally:
            # Borrowed per-slot version arrays are step-local state.
            for w in self.workers:
                w.unload_borrowed()
        wall = time.perf_counter() - start
        # Stats commit atomically, and only for completed steps — aborted
        # steps contribute neither busy nor wall time.
        self.stats.commit(wall, result.busy, result.transport)
        self._fold_deferred_grads()
        plan.finish_step(sync)
        self.pool.publish_plan_state()
        return float(np.mean(result.losses))

    # -- checkpointing -----------------------------------------------------------
    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.pool.full_resync()

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (idempotent).  Safe after a deadlock: thread
        workers consume the shutdown sentinel once their own channel timeout
        returns them to the command loop, and process workers are terminated
        if they do not exit in time."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        pool = getattr(self, "pool", None)
        if pool is not None:
            pool.close()
        # A straggler thread on the deadlock path may have re-loaded a
        # borrowed version array after train_step's own unload; now that
        # every worker has stopped, detach them for good.
        for w in getattr(self, "workers", []):
            w.unload_borrowed()

    def __enter__(self) -> "AsyncPipelineRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; workers are daemons regardless
        try:
            self.close()
        except Exception:
            pass
