"""Concurrent asynchronous pipeline runtime.

Where :class:`repro.pipeline.PipelineExecutor` *simulates* pipeline delay by
processing microbatches one at a time, this runtime actually runs the
pipeline: every stage slice executes on its own worker thread with inbound
activation/gradient queues, following the interleaved occupancy schedule
from :mod:`repro.pipeline.schedule` for real — 1F1B for the asynchronous
methods, fill/drain for GPipe and T3 warmup steps.  Weight versions are
read through the shared :class:`~repro.pipeline.plan.StepPlan` at the exact
``v_fwd`` / ``v_bkwd`` / recompute slots the delay profile prescribes, so
the per-step losses and final weights are **bit-for-bit identical** to the
sequential simulator (enforced by ``tests/test_runtime_equivalence.py``).

Why equivalence holds despite concurrency:

* every weight version a minibatch reads already exists at the minibatch
  boundary (the newest version any slot resolves to is the current one), so
  no read races an optimizer step;
* each parameter belongs to exactly one worker, which processes backwards
  in microbatch order — gradient accumulation order per parameter matches
  the simulator exactly;
* per-microbatch forward caches are snapshotted/restored around the many
  in-flight microbatches a worker interleaves;
* NumPy kernels are deterministic, and they release the GIL, which is where
  the wall-clock overlap comes from on multi-core hosts.

The optimizer still steps once per minibatch on the driver thread (the
paper's semantics — updates land at minibatch boundaries), so a train step
is: broadcast the step context, let the workers drain the schedule, then
run the shared optimizer-boundary logic from the plan.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import PipeMareConfig
from repro.nn.dropout import Dropout
from repro.nn.module import Module
from repro.optim import Optimizer
from repro.optim.schedulers import LRSchedule
from repro.pipeline.delays import Method
from repro.pipeline.partition import Stage
from repro.pipeline.plan import PipelineBackend, StepPlan
from repro.pipeline.schedule import stage_programs
from repro.pipeline.stage_compute import WorkerCompute, build_worker_computes


class PipelineDeadlockError(RuntimeError):
    """A worker waited longer than ``deadlock_timeout`` for an activation or
    gradient that never arrived — the schedule's dataflow stalled."""


@dataclass
class _StepContext:
    """Everything one train step shares between driver and workers."""

    sync: bool
    xs: list
    ys: list
    scales: list[float]
    programs: list[list[tuple[str, int]]]
    losses: list[float]
    # queue[w] feeds worker w; w=0 reads straight from xs.
    act_q: list[queue.SimpleQueue]
    grad_q: list[queue.SimpleQueue]
    rec_q: list[queue.SimpleQueue]


@dataclass
class RuntimeStats:
    """Wall-clock accounting for the last :meth:`train_step` (and running
    totals) — the raw material for measured bubble fractions."""

    steps: int = 0
    last_wall: float = 0.0
    total_wall: float = 0.0
    last_busy: list[float] = field(default_factory=list)
    total_busy: list[float] = field(default_factory=list)

    def bubble_fraction(self) -> float:
        """1 − busy/(wall × workers) over all steps so far: the measured
        share of worker-time spent idle (queue waits + fill/drain)."""
        if not self.total_busy or self.total_wall <= 0:
            return 0.0
        denom = self.total_wall * len(self.total_busy)
        return max(0.0, 1.0 - sum(self.total_busy) / denom)


class AsyncPipelineRuntime(PipelineBackend):
    """Event-driven multi-worker pipeline backend.

    Accepts the same arguments as :class:`~repro.pipeline.PipelineExecutor`
    plus ``deadlock_timeout`` (seconds a worker may wait on a queue before
    the step is aborted with :class:`PipelineDeadlockError` — a wedged pipe
    fails fast instead of hanging).

    The model must be sliceable into a chain (see
    :mod:`repro.pipeline.stage_compute`); stochastic-forward modules
    (Dropout in training mode) are rejected because their draw order would
    depend on wall-clock scheduling.

    Use as a context manager, or call :meth:`close`, to shut the worker
    threads down promptly; they are daemons, so leaking one cannot hang
    interpreter exit.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Module,
        optimizer: Optimizer,
        stages: list[Stage],
        num_microbatches: int,
        method: Method | str = Method.PIPEMARE,
        pipemare: PipeMareConfig | None = None,
        base_schedule: LRSchedule | None = None,
        grad_clip: float | None = None,
        recompute_segment: int | None = None,
        deadlock_timeout: float = 30.0,
    ):
        super().__init__(
            model,
            loss_fn,
            StepPlan(
                params=model.parameters(),
                optimizer=optimizer,
                stages=stages,
                num_microbatches=num_microbatches,
                method=method,
                pipemare=pipemare,
                base_schedule=base_schedule,
                grad_clip=grad_clip,
                recompute_segment=recompute_segment,
            ),
        )
        self.deadlock_timeout = deadlock_timeout
        self.workers: list[WorkerCompute] = build_worker_computes(model, stages)
        for w in self.workers:
            for m in w.all_modules:
                if isinstance(m, Dropout) and m.p > 0:
                    raise ValueError(
                        "AsyncPipelineRuntime does not support training-mode "
                        "Dropout: its RNG draw order would depend on thread "
                        "scheduling; use the simulator backend"
                    )
        k, n = len(self.workers), num_microbatches
        recompute = recompute_segment is not None
        # Worker programs come straight off the occupancy grids: the
        # schedule module's Figure 1 cartoons, executed for real.  (For the
        # GPipe method is_sync_step() is always True, so only the sync
        # program is ever used there.)
        self._programs = {
            True: stage_programs(Method.GPIPE, k, n, recompute=False),
            False: stage_programs(self.plan.method, k, n, recompute=recompute),
        }
        self.stats = RuntimeStats(
            last_busy=[0.0] * k, total_busy=[0.0] * k
        )

        self._cmd: list[queue.SimpleQueue] = [queue.SimpleQueue() for _ in range(k)]
        self._done: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._wedged = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(w,), name=f"pipe-worker-{w}", daemon=True
            )
            for w in range(k)
        ]
        for th in self._threads:
            th.start()

    # -- introspection ---------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    # -- training ---------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """Run one minibatch through the concurrent pipe; returns the mean
        microbatch training loss (bit-identical to the simulator's)."""
        if self._closed:
            raise RuntimeError("runtime is closed")
        if self._wedged:
            raise RuntimeError(
                "runtime is wedged after a deadlock (a worker never reported "
                "back); build a fresh runtime"
            )
        plan = self.plan
        n = plan.num_microbatches
        xs, ys = self._split_minibatch(x, y, n)
        total = sum(self._num_samples(xj) for xj in xs)
        sync = plan.is_sync_step()
        k = self.num_workers

        plan.begin_step()
        ctx = _StepContext(
            sync=sync,
            xs=xs,
            ys=ys,
            scales=[plan.grad_scale(self._num_samples(xj), total) for xj in xs],
            programs=self._programs[True] if sync else self._programs[False],
            losses=[0.0] * n,
            act_q=[queue.SimpleQueue() for _ in range(k)],
            grad_q=[queue.SimpleQueue() for _ in range(k)],
            rec_q=[queue.SimpleQueue() for _ in range(k)],
        )
        start = time.perf_counter()
        for cq in self._cmd:
            cq.put(ctx)

        errors = []
        for _ in range(k):
            try:
                w, err, busy = self._done.get(timeout=self.deadlock_timeout + 10.0)
            except queue.Empty:
                # A worker never reported back even after its own queue
                # timeout window: don't reuse the runtime, but close() can
                # still deliver shutdown sentinels.
                self._wedged = True
                raise PipelineDeadlockError(
                    f"pipeline stalled: a worker did not finish within "
                    f"{self.deadlock_timeout + 10.0:.0f}s"
                ) from None
            self.stats.last_busy[w] = busy
            if err is not None:
                errors.append((w, err))
        wall = time.perf_counter() - start
        self.stats.steps += 1
        self.stats.last_wall = wall
        self.stats.total_wall += wall
        for w in range(k):
            self.stats.total_busy[w] += self.stats.last_busy[w]
        if errors:
            w, err = errors[0]
            if isinstance(err, queue.Empty):
                raise PipelineDeadlockError(
                    f"worker {w} waited >{self.deadlock_timeout}s for an "
                    f"activation/gradient that never arrived"
                ) from None
            raise err

        plan.finish_step(sync)
        return float(np.mean(ctx.losses))

    # -- worker side ------------------------------------------------------------
    def _worker_loop(self, w: int) -> None:
        while True:
            ctx = self._cmd[w].get()
            if ctx is None:
                return
            busy = 0.0
            err = None
            try:
                busy = self._run_program(w, ctx)
            except BaseException as exc:  # noqa: BLE001 — relayed to driver
                err = exc
            self._done.put((w, err, busy))

    def _run_program(self, w: int, ctx: _StepContext) -> float:
        plan = self.plan
        compute = self.workers[w]
        first = w == 0
        last = w == self.num_workers - 1
        timeout = self.deadlock_timeout
        snapshots: dict[int, list[dict]] = {}
        grads: dict[int, np.ndarray] = {}
        recompute = plan.recompute_active(ctx.sync)
        busy = 0.0

        for op, j in ctx.programs[w]:
            if op == "F":
                xj = ctx.xs[j] if first else ctx.act_q[w].get(timeout=timeout)
                t0 = time.perf_counter()
                compute.load_weights(lambda s: plan.forward_weights(s, j, ctx.sync))
                out = compute.forward(xj)
                if last:
                    ctx.losses[j] = self.loss_fn(out, ctx.ys[j])
                    grads[j] = self.loss_fn.backward() * ctx.scales[j]
                if not recompute:
                    snapshots[j] = compute.cache_state()
                busy += time.perf_counter() - t0
                if not last:
                    ctx.act_q[w + 1].put(out)
            elif op == "R":
                xj = ctx.xs[j] if first else ctx.rec_q[w].get(timeout=timeout)
                t0 = time.perf_counter()
                compute.load_weights(lambda s: plan.recompute_weights(s, j))
                out = compute.forward(xj)
                snapshots[j] = compute.cache_state()
                busy += time.perf_counter() - t0
                if not last:
                    ctx.rec_q[w + 1].put(out)
            else:  # "B"
                gj = grads.pop(j) if last else ctx.grad_q[w].get(timeout=timeout)
                t0 = time.perf_counter()
                compute.load_cache_state(snapshots.pop(j))
                compute.load_weights(lambda s: plan.backward_weights(s, j, ctx.sync))
                gout = compute.backward(gj)
                busy += time.perf_counter() - t0
                if not first:
                    ctx.grad_q[w - 1].put(gout)
        return busy

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker threads (idempotent).  Safe after a deadlock:
        the shutdown sentinel is consumed once a stalled worker's own queue
        timeout returns it to its command loop."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for cq in getattr(self, "_cmd", []):
            cq.put(None)
        for th in getattr(self, "_threads", []):
            th.join(timeout=1.0)

    def __enter__(self) -> "AsyncPipelineRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; threads are daemons regardless
        try:
            self.close()
        except Exception:
            pass
