"""Per-stage weight version queues — the paper's simulator state
("We maintain a queue of weights for each individual pipeline stage",
Appendix C.4).

Stored versions are *references* to the arrays the parameters pointed at
when the version was pushed.  This is safe because optimizers in this
library always rebind ``Parameter.data`` to a fresh array rather than
updating in place; the invariant is asserted at push time in debug mode.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.partition import Stage
from repro.utils.ring_buffer import RingBuffer


class WeightVersionStore:
    """Holds the last ``history`` versions of every stage's weights.

    Version 0 is pushed at construction (the initial weights); version t+1
    must be pushed right after the t-th optimizer step.
    """

    def __init__(self, stages: list[Stage], history: int):
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = stages
        self._buffers = [RingBuffer(history) for _ in stages]
        for stage, buf in zip(stages, self._buffers):
            buf.append(stage.current())

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def latest_version(self) -> int:
        return self._buffers[0].latest_version

    def push_current(self) -> int:
        """Record the stages' current weights as the next version."""
        version = -1
        for stage, buf in zip(self.stages, self._buffers):
            version = buf.append(stage.current())
        return version

    def weights(self, stage: int, version: int) -> list[np.ndarray]:
        return self._buffers[stage][version]

    def load(self, stage: int, version: int) -> None:
        """Point stage parameters at the stored version."""
        self.stages[stage].load(self._buffers[stage][version])

    def load_latest(self, stage: int | None = None) -> None:
        if stage is None:
            for s in range(self.num_stages):
                self.load(s, self._buffers[s].latest_version)
        else:
            self.load(stage, self._buffers[stage].latest_version)

    def resident_versions(self, stage: int) -> list[int]:
        return list(self._buffers[stage].versions())

    def state_dict(self) -> dict:
        """Copies of every resident version of every stage, plus the version
        window — everything needed to resume delayed reads exactly."""
        return {
            "oldest_version": self._buffers[0].oldest_version,
            "payloads": [
                [
                    [w.copy() for w in buf[v]]
                    for v in buf.versions()
                ]
                for buf in self._buffers
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the version window and point every stage at its latest
        restored weights."""
        payloads = state["payloads"]
        if len(payloads) != len(self._buffers):
            raise ValueError(
                f"checkpoint has {len(payloads)} stages, store has "
                f"{len(self._buffers)}"
            )
        start = int(state["oldest_version"])
        for buf, versions in zip(self._buffers, payloads):
            buf.seed(start, [[np.asarray(w) for w in v] for v in versions])
        self.load_latest()
