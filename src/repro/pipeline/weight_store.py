"""Per-stage weight version queues — the paper's simulator state
("We maintain a queue of weights for each individual pipeline stage",
Appendix C.4).

Stored versions are *references* to the arrays the parameters pointed at
when the version was pushed.  This is safe because optimizers in this
library always rebind ``Parameter.data`` to a fresh array rather than
updating in place; the invariant is asserted at push time in debug mode.

:class:`SharedWeightMirror` is the multi-process projection of the same
state: a ``multiprocessing.shared_memory`` image of the version window (and
the T2 velocity buffers) that the driver republishes after every optimizer
step, so process workers resolve the exact ``StepPlan`` delay slots through
zero-copy views instead of deserializing arrays per microbatch.

The **version-window publish invariant** that makes both stores safe with
no per-read locking, stated for the barrier-free (overlapped-boundary)
protocol — the old done-queue-barrier argument is a degenerate case of it:

* version ``v`` lives in slot ``v % history``; the driver copies the full
  payload in first and advertises ``v`` *last* (``latest_version`` header
  bump / condition notify).  That publication is the release operation the
  per-wave version gates observe (``wait_version`` +
  ``StepPlan.required_version``): a wave of minibatch t runs only once
  every version it resolves is published.
* slot ``v % history`` is next rewritten when version ``v + history`` is
  pushed.  Version ``v + history`` is pushed at boundary
  ``v + history − 1``, while at most minibatch ``v + history`` is in
  flight — whose deepest delay slot resolves no older than
  ``(v + history) − (history − 2) = v + 2``.  The single writer and the
  many readers therefore never overlap on a slot even with a step's fill
  already running during the push; no reader refcount is needed because
  the window arithmetic (``DelayProfile.history_needed`` = deepest lag
  + 2) leaves the reused slot strictly outside every live step's reach.
* publication order within one boundary: T2 velocity buffers are written
  *before* the version that advertises them
  (:meth:`~repro.pipeline.runtime.ProcessWorkerPool.publish_plan_state`),
  so a wave gated on version t+1 always sees the boundary-t velocities.

Worker endpoints attach read-only: their views have the writeable flag
cleared, so a stray in-place update fails loudly instead of corrupting
every other worker's weights.  The same guarantee covers *readers of
stages they do not own* (e.g. a tied output projection borrowing the
embedding stage's weights on the last worker).

On checkpoint restore the resident window is republished oldest version
first (:meth:`SharedWeightMirror.sync_from_store`), so the header lands on
the true latest and delayed reads resume exactly; versions too old for any
future wave to resolve (``StepPlan.resolvable_versions``) are skipped.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.pipeline.partition import Stage
from repro.pipeline.transport import (
    TransportTimeout,
    attach_shm,
    block_views,
    create_shm,
    stage_block_layout,
    unlink_quietly,
)
from repro.utils.ring_buffer import RingBuffer


def check_version_resident(
    version: int, latest: int, history: int, where: str = "mirror"
) -> None:
    """Shared window check of the version-gated weight protocol: every
    worker-side mirror (shared-memory or socket) keeps exactly the last
    ``history`` versions and rejects reads outside ``(latest - history,
    latest]`` with the same error text, so a gating bug looks identical
    whichever transport exposed it."""
    if version < 0 or version <= latest - history or version > latest:
        raise KeyError(
            f"version {version} not resident in {where} "
            f"(have ({latest - history}, {latest}])"
        )


class WeightVersionStore:
    """Holds the last ``history`` versions of every stage's weights.

    Version 0 is pushed at construction (the initial weights); version t+1
    must be pushed right after the t-th optimizer step.

    Publication is a release operation: thread workers of an overlapped
    step block in :meth:`wait_version` until the version their wave
    resolves exists, and both push paths notify them under one condition
    variable.  Pushes happen on the driver only; reads may come from any
    worker thread (safe: a push never rewrites a slot a live wave can
    still resolve — see the module docstring's window invariant).
    """

    def __init__(self, stages: list[Stage], history: int):
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = stages
        self._buffers = [RingBuffer(history) for _ in stages]
        self._published = threading.Condition()
        for stage, buf in zip(stages, self._buffers):
            buf.append(stage.current())
        # Advertised version, bumped only after *every* stage buffer holds
        # the payload — the release store lockless gate fast-paths read.
        # Deriving it from a buffer would advertise mid-push.
        self._latest = self._buffers[0].latest_version

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def latest_version(self) -> int:
        return self._latest

    def push_current(self) -> int:
        """Record the stages' current weights as the next version."""
        return self.push_arrays([stage.current() for stage in self.stages])

    def push_arrays(self, arrays_per_stage: list[list[np.ndarray]]) -> int:
        """Record explicit per-stage arrays as the next version — the
        overlapped boundary pushes the detached optimizer result without
        routing it through live ``Parameter.data``.  All stage payloads
        land first, then ``latest_version`` advertises them and every
        :meth:`wait_version` waiter is notified (payload before publish,
        the same release order the shared-memory mirror uses)."""
        version = -1
        with self._published:
            for arrays, buf in zip(arrays_per_stage, self._buffers):
                version = buf.append(list(arrays))
            self._latest = version  # advertise last
            self._published.notify_all()
        return version

    def wait_version(self, version: int, timeout: float) -> None:
        """Block until ``version`` is published (immediately true for
        resident or evicted versions)."""
        if self.latest_version >= version:
            return
        deadline = time.perf_counter() + timeout
        with self._published:
            while self.latest_version < version:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TransportTimeout(
                        f"weight version {version} was never published "
                        f"(latest is {self.latest_version} after {timeout:g}s)"
                    )
                self._published.wait(remaining)

    def weights(self, stage: int, version: int) -> list[np.ndarray]:
        return self._buffers[stage][version]

    def load(self, stage: int, version: int) -> None:
        """Point stage parameters at the stored version."""
        self.stages[stage].load(self._buffers[stage][version])

    def load_latest(self, stage: int | None = None) -> None:
        if stage is None:
            for s in range(self.num_stages):
                self.load(s, self._buffers[s].latest_version)
        else:
            self.load(stage, self._buffers[stage].latest_version)

    def resident_versions(self, stage: int) -> list[int]:
        return list(self._buffers[stage].versions())

    def state_dict(self) -> dict:
        """Copies of every resident version of every stage, plus the version
        window — everything needed to resume delayed reads exactly."""
        return {
            "oldest_version": self._buffers[0].oldest_version,
            "payloads": [
                [
                    [w.copy() for w in buf[v]]
                    for v in buf.versions()
                ]
                for buf in self._buffers
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the version window and point every stage at its latest
        restored weights."""
        payloads = state["payloads"]
        if len(payloads) != len(self._buffers):
            raise ValueError(
                f"checkpoint has {len(payloads)} stages, store has "
                f"{len(self._buffers)}"
            )
        start = int(state["oldest_version"])
        for buf, versions in zip(self._buffers, payloads):
            vs = [[np.asarray(w) for w in v] for v in versions]
            # A checkpoint may come from a store with a different history
            # depth: trim versions the shallower buffer can't hold, and
            # allow a window narrower than the capacity (the delayed reads
            # those extra slots would serve have already been consumed).
            drop = max(0, len(vs) - buf.capacity)
            buf.seed(start + drop, vs[drop:], allow_gap=True)
        self._latest = self._buffers[0].latest_version
        self.load_latest()


class SharedWeightMirror:
    """Shared-memory image of a :class:`WeightVersionStore` window.

    Layout: an int64 header ``[latest_version, has_velocity]`` followed by
    ``history`` version slots (version ``v`` lives at slot ``v % history``),
    each holding one float64 array per (stage, parameter), and — when the
    plan runs T2 — one extra block mirroring the
    :class:`~repro.core.DiscrepancyCorrector` velocity buffers.

    The driver (``readonly=False``, ``create=True``) copies the new version
    in after every optimizer step, *then* bumps ``latest_version`` — the
    release store worker-side :meth:`wait_version` gates spin on, which is
    how an overlapped step's waves are admitted exactly when the versions
    they resolve exist.  Workers only ever resolve versions
    ``> latest − history``, and the slot of version ``v`` is not rewritten
    until version ``v + history`` is pushed — whose concurrently running
    step can resolve nothing older than ``v + 2`` (module docstring) — so
    readers and the single writer never overlap on a slot even without a
    per-minibatch done-queue barrier.

    Worker endpoints (``readonly=True``) get views with the writeable flag
    cleared; a stray in-place update in a worker fails loudly instead of
    silently corrupting every other worker's weights.
    """

    _HDR_INTS = 2

    def __init__(
        self,
        name: str,
        stage_shapes: list[list[tuple[int, ...]]],
        history: int,
        with_velocity: bool,
        create: bool = False,
        readonly: bool = False,
    ):
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.name = name
        self.stage_shapes = stage_shapes
        self.history = history
        self.with_velocity = with_velocity
        offsets, block = stage_block_layout(stage_shapes)
        hdr_bytes = 8 * self._HDR_INTS
        total = hdr_bytes + history * block + (block if with_velocity else 0)
        if create:
            self._shm = create_shm(name, max(total, 8))
        else:
            self._shm = attach_shm(name)
        self._hdr = np.ndarray((self._HDR_INTS,), dtype=np.int64, buffer=self._shm.buf)
        if create:
            self._hdr[0] = -1  # no version published yet
            self._hdr[1] = int(with_velocity)
        elif bool(self._hdr[1]) != with_velocity:
            raise ValueError(
                "mirror and worker disagree on T2 velocity (one side has a "
                "corrector, the other does not)"
            )
        self._slot_views = [
            block_views(self._shm.buf, stage_shapes, hdr_bytes + s * block, offsets)
            for s in range(history)
        ]
        self._vel_views = (
            block_views(self._shm.buf, stage_shapes, hdr_bytes + history * block, offsets)
            if with_velocity
            else None
        )
        if readonly:
            for slot in self._slot_views:
                for stage in slot:
                    for v in stage:
                        v.setflags(write=False)
            if self._vel_views is not None:
                for stage in self._vel_views:
                    for v in stage:
                        v.setflags(write=False)

    # -- driver side ----------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.stage_shapes)

    @property
    def latest_version(self) -> int:
        return int(self._hdr[0])

    def publish_version(self, version: int, arrays_per_stage: list[list[np.ndarray]]) -> None:
        """Copy one full version in, then advertise it as latest."""
        slot = self._slot_views[version % self.history]
        for stage_views, arrays in zip(slot, arrays_per_stage):
            for view, arr in zip(stage_views, arrays):
                np.copyto(view, arr)
        self._hdr[0] = version  # publish last

    def publish_velocity(self, velocity_per_stage: list[list[np.ndarray]]) -> None:
        for stage_views, arrays in zip(self._vel_views, velocity_per_stage):
            for view, arr in zip(stage_views, arrays):
                np.copyto(view, arr)

    def sync_from_store(
        self, store: WeightVersionStore, corrector=None, versions=None
    ) -> None:
        """Republish resident versions (oldest first, so the header lands on
        the true latest) — the checkpoint-restore path.  ``versions``
        restricts the copy to the slots future waves can still resolve
        (``StepPlan.resolvable_versions``); ``None`` republishes the whole
        window.  Velocity goes first so the header bump releases a
        consistent (weights, velocity) pair."""
        if corrector is not None and self.with_velocity:
            self.publish_velocity(corrector.velocity)
        resident = store.resident_versions(0)
        publish = resident if versions is None else sorted(set(versions) & set(resident))
        for v in publish:
            self.publish_version(
                v, [store.weights(s, v) for s in range(store.num_stages)]
            )

    def wait_version(self, version: int, timeout: float) -> None:
        """Spin until ``version`` is advertised by the header (immediately
        true for resident or evicted versions) — the worker side of the
        per-version readiness signal.  Mirrors :class:`ShmRing`'s hot-spin
        then sleep backoff."""
        if self.latest_version >= version:
            return
        deadline = time.perf_counter() + timeout
        spins = 0
        while self.latest_version < version:
            spins += 1
            if spins < 200:
                continue
            if time.perf_counter() > deadline:
                raise TransportTimeout(
                    f"weight version {version} was never published "
                    f"(mirror header at {self.latest_version} after {timeout:g}s)"
                )
            time.sleep(1e-4)

    # -- worker side ----------------------------------------------------------
    def weights(self, stage: int, version: int) -> list[np.ndarray]:
        """Views of ``version``'s arrays for ``stage`` (the worker-side dual
        of :meth:`WeightVersionStore.weights`)."""
        check_version_resident(version, self.latest_version, self.history)
        return self._slot_views[version % self.history][stage]

    def velocity(self, stage: int) -> list[np.ndarray]:
        if self._vel_views is None:
            raise RuntimeError("mirror was built without velocity buffers")
        return self._vel_views[stage]

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        unlink_quietly(self._shm)
