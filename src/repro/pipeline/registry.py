"""Driver-side worker registry for the socket runtime.

The shared-memory pools can treat a missing worker as a protocol bug: the
processes are children on the same host and the only way to lose one is a
crash.  A networked pipeline must treat worker loss as a *state*, not an
exception path bolted on afterwards — connections take time to come up,
heartbeats go quiet before sockets report errors, and the driver has to
decide between respawning the stage and surfacing a typed error.

:class:`WorkerRegistry` tracks one :class:`TaskState` machine per worker::

    CONNECTING ──► READY ──► RUNNING
        │            │    ◄──┘   │
        └────────────┴───► LOST ◄┘
                             │ ▲
                     REPLACING └─(replacement handshake failed)

``CONNECTING``
    spawned, handshake (hello / init / bound / addresses) in progress.
``READY``
    handshake complete, between steps.
``RUNNING``
    a step command is outstanding on the worker.
``LOST``
    socket EOF, process death, or a stale heartbeat.  Terminal unless the
    pool has per-worker restart budget left, in which case the slot moves
    to ``REPLACING`` while a fresh process re-handshakes into the existing
    mesh; otherwise the pool replaces the whole worker set (generation
    respawn) or wedges with :class:`WorkerLostError`.
``REPLACING``
    a replacement process for this slot is mid-handshake: it dials the
    driver, binds fresh channel listeners, and its surviving mesh
    neighbors re-dial it.  Ends in ``READY`` (rejoined) or back in
    ``LOST`` (replacement failed; generation respawn is the fallback).

Every state a record ever enters is appended to ``WorkerRecord.history``,
so tests can assert e.g. that surviving workers never left READY/RUNNING
while a neighbor was replaced.

The registry itself is passive bookkeeping (no threads); the pool's reader
threads call :meth:`beat` / :meth:`mark_lost` and its scheduler-side code
polls :meth:`first_lost`.  All methods take the registry lock, so readers
and the driver may call in concurrently.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field


class WorkerLostError(RuntimeError):
    """A pipeline worker was lost (connection dropped, process died, or
    heartbeats went stale) and the in-flight step cannot complete.  The
    runtime drains the remaining in-flight steps and restores the latest
    published weights before this surfaces; if the pool had restart budget
    left it respawned the worker set first and the *next* step will run."""

    def __init__(self, message: str, worker: int | None = None):
        super().__init__(message)
        self.worker = worker


class TaskState(enum.Enum):
    CONNECTING = "connecting"
    READY = "ready"
    RUNNING = "running"
    LOST = "lost"
    REPLACING = "replacing"


# Legal transitions; everything else is a driver-side protocol bug.
_TRANSITIONS = {
    TaskState.CONNECTING: {TaskState.READY, TaskState.LOST},
    TaskState.READY: {TaskState.RUNNING, TaskState.LOST},
    TaskState.RUNNING: {TaskState.READY, TaskState.LOST},
    TaskState.LOST: {TaskState.REPLACING},
    TaskState.REPLACING: {TaskState.READY, TaskState.LOST},
}


@dataclass
class WorkerRecord:
    worker: int
    state: TaskState = TaskState.CONNECTING
    last_beat: float = field(default_factory=time.monotonic)
    reason: str = ""  # why the worker is LOST (empty otherwise)
    # every state this slot ever entered, in order (starts at CONNECTING);
    # the elastic-recovery tests assert on survivors' histories
    history: list = field(default_factory=lambda: [TaskState.CONNECTING])


class WorkerRegistry:
    """Per-worker task states + heartbeat freshness for one socket pool.

    ``heartbeat_timeout`` is how long a silent worker stays trusted: a
    worker that neither reports nor beats for that long is marked LOST even
    if its socket has not errored yet (a SIGSTOP'd or livelocked peer looks
    exactly like a slow network until then).
    """

    def __init__(self, num_workers: int, heartbeat_timeout: float):
        self.heartbeat_timeout = heartbeat_timeout
        self._lock = threading.Lock()
        self._records = [WorkerRecord(w) for w in range(num_workers)]

    def __getitem__(self, w: int) -> WorkerRecord:
        return self._records[w]

    def states(self) -> list[TaskState]:
        with self._lock:
            return [r.state for r in self._records]

    def transition(self, w: int, state: TaskState, reason: str = "") -> None:
        with self._lock:
            rec = self._records[w]
            if rec.state is state:
                return
            if state not in _TRANSITIONS[rec.state]:
                raise RuntimeError(
                    f"worker {w}: illegal task-state transition "
                    f"{rec.state.value} -> {state.value}"
                )
            rec.state = state
            rec.history.append(state)
            rec.last_beat = time.monotonic()
            if state is TaskState.LOST:
                rec.reason = reason or "lost"
            elif state is TaskState.READY:
                rec.reason = ""  # a replaced worker is healthy again

    def beat(self, w: int) -> None:
        """Refresh worker ``w``'s heartbeat (any inbound traffic counts)."""
        with self._lock:
            rec = self._records[w]
            if rec.state is not TaskState.LOST:
                rec.last_beat = time.monotonic()

    def mark_lost(self, w: int, reason: str) -> None:
        """Idempotent LOST transition (reader threads race on EOF vs the
        stale-heartbeat sweep; first reason wins).  A ``REPLACING`` slot is
        exempt: its fate is decided by the driver thread running the
        replacement handshake, not by stragglers observing the *old*
        connection die (the reader for the dead connection may only get
        scheduled after the replacement has already begun)."""
        with self._lock:
            rec = self._records[w]
            if rec.state not in (TaskState.LOST, TaskState.REPLACING):
                rec.state = TaskState.LOST
                rec.history.append(TaskState.LOST)
                rec.reason = reason

    def sweep_heartbeats(self) -> None:
        """Mark workers whose heartbeat went stale as LOST."""
        horizon = time.monotonic() - self.heartbeat_timeout
        with self._lock:
            for rec in self._records:
                if rec.state in (
                    TaskState.LOST,
                    TaskState.CONNECTING,
                    TaskState.REPLACING,
                ):
                    # CONNECTING/REPLACING handshakes have their own
                    # deadline; a LOST worker is already accounted for.
                    continue
                if rec.last_beat < horizon:
                    rec.state = TaskState.LOST
                    rec.history.append(TaskState.LOST)
                    rec.reason = (
                        f"no heartbeat for more than "
                        f"{self.heartbeat_timeout:g}s (worker frozen or "
                        f"network partitioned)"
                    )

    def first_lost(self) -> WorkerRecord | None:
        """The lowest-indexed LOST worker, or None — the pool's
        ``_peer_failure`` probe (after a heartbeat sweep)."""
        self.sweep_heartbeats()
        with self._lock:
            for rec in self._records:
                if rec.state is TaskState.LOST:
                    return rec
        return None


@dataclass
class Backoff:
    """Bounded retry schedule for connection attempts: exponential delay
    from ``base`` capped at ``ceiling``, all attempts bounded by
    ``total`` seconds.  :meth:`sleep` returns False once the budget is
    exhausted (the caller then raises its typed timeout).

    ``jitter`` spreads each delay uniformly over ``[delay·(1−j),
    delay·(1+j)]`` so that N workers reconnecting after the same failure
    do not dial the driver in lockstep (a reconnect stampede serializes
    on the accept loop and can push the slowest worker past its
    handshake deadline).  The draw comes from ``rng`` — an object with a
    ``random()`` method, e.g. :class:`random.Random` — so tests inject a
    seeded generator and stay deterministic; ``rng=None`` with a nonzero
    jitter creates a fresh unseeded one per clock.
    """

    base: float = 0.02
    ceiling: float = 0.5
    total: float = 10.0
    jitter: float = 0.0
    rng: object = None

    def __post_init__(self):
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def start(self) -> "_BackoffClock":
        return _BackoffClock(self)


class _BackoffClock:
    def __init__(self, spec: Backoff):
        self._spec = spec
        self._delay = spec.base
        self._deadline = time.monotonic() + spec.total
        self.attempts = 0
        self._rng = spec.rng
        if self._rng is None and spec.jitter > 0.0:
            import random

            self._rng = random.Random()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._deadline

    def sleep(self) -> bool:
        """Back off before the next attempt; False if the budget is spent."""
        now = time.monotonic()
        if now >= self._deadline:
            return False
        delay = self._delay
        if self._spec.jitter > 0.0:
            delay *= 1.0 + self._spec.jitter * (2.0 * self._rng.random() - 1.0)
        time.sleep(min(delay, self._deadline - now))
        self._delay = min(self._delay * 2, self._spec.ceiling)
        self.attempts += 1
        return True
