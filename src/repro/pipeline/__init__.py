"""Pipeline-parallel training substrate.

Implements the paper's execution model (§2): a model's weights are
partitioned in topological order into P stages; microbatches flow through a
bubble-free pipe; each stage reads its weights at delayed versions

    ``τ_fwd,i = (2(P−i)+1)/N``,  ``τ_bkwd,i ∈ {τ_fwd,i (PipeDream), 0
    (PipeMare), 0 ≡ fwd (GPipe, synchronous)}``

and applies accumulated gradients at minibatch boundaries.  The executor
realises the *exact* microbatch-granularity version arithmetic, while the
cost models reproduce Table 1, Table 4/5 and the Appendix A.3 throughput
analysis.
"""

from repro.pipeline.partition import (
    GRANULARITIES,
    PARTITION_MODES,
    PartitionPlan,
    Partitioner,
    Stage,
    balanced_bounds,
    check_replica_count,
    check_stage_count,
    even_bounds,
    num_weight_units,
    partition_model,
    partition_units,
)
from repro.pipeline.delays import DelayProfile, Method
from repro.pipeline.weight_store import SharedWeightMirror, WeightVersionStore
from repro.pipeline.plan import ReplicaPlan, ResolverSpec, StepPlan, WorkerPlanMirror
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.stage_compute import (
    GraphNode,
    ModelSpec,
    StageGraph,
    WorkerGraph,
    build_worker_graph,
)
from repro.pipeline.transport import (
    ShmRing,
    TransportClosed,
    TransportError,
    TransportTimeout,
)
from repro.pipeline.registry import (
    TaskState,
    WorkerLostError,
    WorkerRegistry,
)
from repro.pipeline.runtime import (
    AsyncPipelineRuntime,
    PipelineDeadlockError,
    ProcessWorkerPool,
    ReplicaGroup,
    RuntimeWedgedError,
    ThreadWorkerPool,
)
from repro.pipeline.net import RemoteWeightMirror, SocketWorkerPool, Transport
from repro.pipeline.waveprogram import (
    WaveBlock,
    WaveCompileError,
    WaveProgram,
    compile_wave_programs,
)
from repro.pipeline import costmodel
from repro.pipeline import recompute
from repro.pipeline.schedule import (
    ScheduleGrid,
    build_schedule,
    bubble_fraction,
    stage_programs,
)

RUNTIME_BACKENDS = ("simulator", "async", "process", "socket")


def make_backend(runtime: str, *args, **kwargs):
    """Build the requested pipeline backend: the sequential ``simulator``,
    the thread-worker ``async`` runtime, the multi-process shared-memory
    ``process`` runtime, or the framed-socket ``socket`` runtime (workers
    over TCP/UDS with a registry and typed failure handling).  All accept
    the :class:`PipelineExecutor` constructor arguments; the concurrent
    ones additionally accept the :class:`AsyncPipelineRuntime` tuning
    knobs (``overlap_boundary``, ``deadlock_timeout``, and for
    ``process``/``socket`` also ``model_spec``, ``start_method``, plus
    ``transport_slot_bytes`` or ``net_options`` respectively).  The
    simulator has no minibatch barrier to overlap and executes the model
    monolithically, so ``overlap_boundary``, ``granularity``,
    ``max_workers`` and ``fuse_waves`` are accepted and ignored there — callers can pass one
    backend-agnostic kwargs dict.  ``num_replicas`` (hybrid data ×
    pipeline parallelism) is honoured by every backend except ``socket``:
    the simulator runs the R replicas sequentially with exact staleness,
    the thread/process runtimes run them as a :class:`ReplicaGroup` of
    worker pools."""
    if runtime == "simulator":
        for concurrent_only in (
            "overlap_boundary",
            "granularity",
            "max_workers",
            "fuse_waves",
        ):
            kwargs.pop(concurrent_only, None)
        return PipelineExecutor(*args, **kwargs)
    if runtime == "async":
        return AsyncPipelineRuntime(*args, **kwargs)
    if runtime == "process":
        return AsyncPipelineRuntime(*args, backend="process", **kwargs)
    if runtime == "socket":
        return AsyncPipelineRuntime(*args, backend="socket", **kwargs)
    raise ValueError(f"unknown runtime {runtime!r} (expected one of {RUNTIME_BACKENDS})")


__all__ = [
    "Stage",
    "partition_model",
    "partition_units",
    "Partitioner",
    "PartitionPlan",
    "GRANULARITIES",
    "PARTITION_MODES",
    "balanced_bounds",
    "check_replica_count",
    "check_stage_count",
    "even_bounds",
    "num_weight_units",
    "DelayProfile",
    "Method",
    "WeightVersionStore",
    "SharedWeightMirror",
    "StepPlan",
    "ReplicaPlan",
    "ResolverSpec",
    "WorkerPlanMirror",
    "PipelineExecutor",
    "AsyncPipelineRuntime",
    "ReplicaGroup",
    "ThreadWorkerPool",
    "ProcessWorkerPool",
    "SocketWorkerPool",
    "PipelineDeadlockError",
    "RuntimeWedgedError",
    "WorkerLostError",
    "WorkerRegistry",
    "TaskState",
    "Transport",
    "RemoteWeightMirror",
    "ModelSpec",
    "StageGraph",
    "GraphNode",
    "WorkerGraph",
    "build_worker_graph",
    "WaveBlock",
    "WaveCompileError",
    "WaveProgram",
    "compile_wave_programs",
    "ShmRing",
    "TransportError",
    "TransportTimeout",
    "TransportClosed",
    "RUNTIME_BACKENDS",
    "make_backend",
    "costmodel",
    "recompute",
    "ScheduleGrid",
    "build_schedule",
    "bubble_fraction",
    "stage_programs",
]
