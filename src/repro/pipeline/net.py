"""Socket transport behind the ShmRing seam: the pipeline over real links.

The shared-memory runtime (``pipeline/transport.py``) deliberately exposes
two narrow seams:

* **channels** — ``send(kind, edge, payload)`` / ``recv(kind, edge)`` of
  step-tagged multi-part array payloads, one channel per cross-worker edge
  and payload kind;
* the **version-gated weight protocol** — ``weights(stage, version)`` /
  ``latest_version`` / ``wait_version(version, timeout)`` (plus
  ``velocity(stage)`` for T2), with velocity published *before* the
  version that advertises it.

This module fills both seams over TCP or Unix-domain sockets so the exact
:class:`~repro.pipeline.plan.StepPlan` runs with workers that could sit on
other hosts: :class:`Transport` frames the byte stream (length-prefixed,
CRC-checked), the frame codec mirrors :class:`ShmRing`'s layout headers
(dtype code, transposed-view shape, axis permutation — so an F-order array
comes out F-order and BLAS takes bit-identical paths on both ends),
:class:`RemoteWeightMirror` replays the driver's pushed version stream,
and :class:`SocketWorkerPool` drives it all behind the unchanged
issue/collect scheduler surface.

Failure is a first-class state here, not an assertion: the pool keeps a
:class:`~repro.pipeline.registry.WorkerRegistry` (CONNECTING → READY →
RUNNING → LOST) fed by per-connection reader threads and heartbeats.  When
a worker is lost the pool invalidates every step issued before the loss
(``collect``/``await_losses`` fail fast instead of waiting out the
deadlock timeout), and either respawns the *whole* worker set — the
channel mesh is pairwise, so a lone fresh worker cannot rejoin — and
republishes the resolvable weight window, or wedges with a typed
:class:`~repro.pipeline.registry.WorkerLostError`.  Either way the runtime
drains its in-flight window and restores the latest published weights, so
a killed worker costs one minibatch, never a silent divergence.

Addresses are ``"uds:/path/sock"`` or ``"tcp:host:port"`` (``port`` 0
binds an ephemeral port; :class:`Listener` reports the real one).  The
pool defaults to UDS loopback — single host, but every byte crosses a real
socket, which is exactly what the fault-injection suites need.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import random
import select
import socket
import struct
import tempfile
import threading
import time
import zlib

import numpy as np

# One-way dependency: runtime imports this module only lazily, inside the
# socket-backend branch, so a top-level import here cannot cycle.
from repro.pipeline import runtime as _runtime
from repro.pipeline.registry import (
    Backoff,
    TaskState,
    WorkerLostError,
    WorkerRegistry,
)
from repro.pipeline.stage_compute import ModelSpec, build_worker_graph
from repro.pipeline.transport import (
    _DTYPE_CODE,
    _MAX_DIMS,
    _RING_DTYPES,
    TransportClosed,
    TransportError,
    TransportTimeout,
    _layout_perm,
    pack_lanes,
    unpack_lanes,
)
from repro.pipeline.weight_store import check_version_resident


class FrameError(TransportError):
    """The byte stream is corrupt — bad magic, checksum mismatch, or a
    payload header that cannot describe any array.  Unlike a timeout the
    stream cannot be resynchronised: framing is length-prefixed, so one
    garbled frame poisons everything after it."""


# -- wire framing --------------------------------------------------------------

_MAGIC = 0x504D4652  # "PMFR"
_HDR = struct.Struct("<IIQI")  # magic, frame kind, body length, crc32(body)
_ARR_HDR = struct.Struct("<qqq")  # step tag, payload kind (0 bare / 1 tuple), nparts
_PART_HDR = struct.Struct("<qqqq")  # present, dtype code, ndim, nbytes
_MAX_FRAME = 1 << 40

# Frame kinds.  OBJ carries pickled control messages (step commands, done
# reports, handshake); ARRAYS carries one step-tagged edge payload in the
# ring-compatible layout below; WEIGHTS/VELOCITY reuse the ARRAYS body on
# the weight socket (the step field holds the version); RESET clears a
# remote mirror's window before a checkpoint-restore republish.
K_OBJ, K_ARRAYS, K_WEIGHTS, K_VELOCITY, K_RESET = 1, 2, 3, 4, 5


def encode_arrays(payload, step: int) -> bytes:
    """One multi-part array payload as a frame body.

    Mirrors :meth:`ShmRing.send_msg`'s layout semantics exactly: each part
    records its dtype code, the shape of the C-contiguous *transposed
    view* (``array.transpose(perm)``) and the axis permutation, so the
    receiver reconstructs the sender's shape **and memory layout** —
    required for bit-determinism, since BLAS kernels take different
    floating-point paths for different strides.  ``None`` parts (absent
    optional inputs) are a present=0 header; a bare array is payload kind
    0, a tuple kind 1.
    """
    kind = 1 if isinstance(payload, tuple) else 0
    parts = list(payload) if kind else [payload]
    chunks = [_ARR_HDR.pack(step, kind, len(parts))]
    blobs: list[bytes] = []
    for part in parts:
        if part is None:
            chunks.append(_PART_HDR.pack(0, 0, 0, 0))
            continue
        array = np.asarray(part)
        code = _DTYPE_CODE.get(array.dtype)
        if code is None:
            raise TypeError(
                f"cannot frame dtype {array.dtype} (supported: "
                f"{', '.join(str(d) for d in _RING_DTYPES)})"
            )
        if array.ndim > _MAX_DIMS:
            raise ValueError(f"cannot frame ndim {array.ndim} > {_MAX_DIMS}")
        perm = _layout_perm(array)
        if perm is None:
            array = np.ascontiguousarray(array)
            perm = tuple(range(array.ndim))
        view = np.ascontiguousarray(array.transpose(perm))
        chunks.append(_PART_HDR.pack(1, code, array.ndim, view.nbytes))
        if array.ndim:
            chunks.append(struct.pack(f"<{array.ndim}q", *view.shape))
            chunks.append(struct.pack(f"<{array.ndim}q", *perm))
        blobs.append(view.tobytes())
    return b"".join(chunks) + b"".join(blobs)


def decode_arrays(body) -> tuple[int, object]:
    """Inverse of :func:`encode_arrays`: ``(step, payload)`` with every
    part owning fresh memory in the sender's exact layout.  Any header
    that cannot describe a real array — unknown dtype code, negative
    sizes, a perm that is not a permutation, payload bytes that do not
    add up — raises :class:`FrameError` (garbled stream), never returns
    garbage arrays."""
    body = memoryview(body)
    try:
        step, kind, nparts = _ARR_HDR.unpack_from(body, 0)
    except struct.error:
        raise FrameError("array frame shorter than its base header") from None
    if kind not in (0, 1) or nparts < 0 or (kind == 0 and nparts != 1):
        raise FrameError(
            f"garbled array frame header (kind={kind}, nparts={nparts})"
        )
    pos = _ARR_HDR.size
    metas = []
    try:
        for _ in range(nparts):
            present, code, ndim, nbytes = _PART_HDR.unpack_from(body, pos)
            pos += _PART_HDR.size
            if not present:
                metas.append(None)
                continue
            if not (0 <= code < len(_RING_DTYPES)) or not (0 <= ndim <= _MAX_DIMS):
                raise FrameError(
                    f"garbled part header (dtype code {code}, ndim {ndim})"
                )
            shape = struct.unpack_from(f"<{ndim}q", body, pos)
            pos += 8 * ndim
            perm = struct.unpack_from(f"<{ndim}q", body, pos)
            pos += 8 * ndim
            if any(s < 0 for s in shape) or sorted(perm) != list(range(ndim)):
                raise FrameError(
                    f"garbled part header (shape {shape}, perm {perm})"
                )
            metas.append((code, ndim, nbytes, shape, perm))
    except struct.error:
        raise FrameError("array frame truncated inside a part header") from None
    parts: list[np.ndarray | None] = []
    for meta in metas:
        if meta is None:
            parts.append(None)
            continue
        code, ndim, nbytes, shape, perm = meta
        dtype = _RING_DTYPES[code]
        count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
        if nbytes != count * dtype.itemsize or pos + nbytes > len(body):
            raise FrameError(
                f"part payload does not match its header "
                f"({nbytes} bytes claimed for shape {shape} {dtype})"
            )
        flat = np.frombuffer(body, dtype=dtype, count=count, offset=pos)
        pos += nbytes
        # .copy() owns the memory C-contiguously in the transposed-view
        # shape; the inverse permutation restores the sender's shape and
        # strides — same recipe as ShmRing.recv_msg.
        out = flat.reshape(shape).copy()
        inv = tuple(np.argsort(perm)) if ndim else ()
        parts.append(out.transpose(inv))
    if pos != len(body):
        raise FrameError(f"{len(body) - pos} trailing bytes after array frame")
    return step, (tuple(parts) if kind else parts[0])


# -- connected endpoints -------------------------------------------------------


def _parse_address(address: str):
    if address.startswith("uds:"):
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - platform
            raise ValueError("uds: addresses need AF_UNIX support")
        return socket.AF_UNIX, address[4:]
    if address.startswith("tcp:"):
        host, sep, port = address[4:].rpartition(":")
        if not sep:
            raise ValueError(f"tcp address must be tcp:host:port, got {address!r}")
        return socket.AF_INET, (host, int(port))
    raise ValueError(f"address must start with uds: or tcp:, got {address!r}")


class Listener:
    """A bound, listening socket handing out :class:`Transport` endpoints.
    ``tcp:host:0`` binds an ephemeral port; :attr:`address` always names
    the real endpoint peers should connect to."""

    def __init__(self, address: str, backlog: int = 16):
        family, addr = _parse_address(address)
        self._family = family
        self._path = addr if family == getattr(socket, "AF_UNIX", None) else None
        self._sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            if family == socket.AF_INET:
                self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind(addr)
            self._sock.listen(backlog)
        except BaseException:
            self._sock.close()
            raise
        if family == socket.AF_INET:
            host, port = self._sock.getsockname()[:2]
            self.address = f"tcp:{host}:{port}"
        else:
            self.address = address

    def accept(self, timeout: float) -> "Transport":
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except socket.timeout:
            raise TransportTimeout(
                f"no connection on {self.address} within {timeout:g}s"
            ) from None
        except OSError as exc:
            raise TransportClosed(f"listener {self.address} is gone ({exc})") from None
        return Transport(conn)

    def close(self) -> None:
        try:
            self._sock.close()
        finally:
            if self._path is not None:
                try:
                    os.unlink(self._path)
                except OSError:
                    pass


def connect(
    address: str, timeout: float = 10.0, backoff: Backoff | None = None
) -> "Transport":
    """Dial ``address`` with bounded retry + exponential backoff — a worker
    typically races the peer's ``bind``/``listen``, so refusals inside the
    budget are retried; expiry raises :class:`TransportTimeout`."""
    family, addr = _parse_address(address)
    clock = (backoff or Backoff(total=timeout)).start()
    while True:
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(addr)
            return Transport(sock)
        except (ConnectionError, FileNotFoundError, socket.timeout, OSError) as exc:
            sock.close()
            last = exc
        if not clock.sleep():
            raise TransportTimeout(
                f"could not connect to {address} within {timeout:g}s "
                f"after {clock.attempts + 1} attempts ({last})"
            ) from None


class Transport:
    """One connected framed stream endpoint — the network twin of
    :class:`ShmRing`'s send/recv surface.

    Frames are ``(magic, kind, length, crc32)`` headers plus body; a short
    read raises :class:`TransportClosed` (peer gone mid-frame), a bad
    magic or checksum :class:`FrameError` (garbled stream), a deadline
    :class:`TransportTimeout`.  Sends are serialised by a lock so a
    heartbeat thread can share the control socket with the worker's done
    reports without interleaving frames.  :attr:`xfer_seconds` accumulates
    wall time spent moving *array* payloads (``send_msg``/``recv_msg``),
    matching the ring transport's accounting.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        if sock.family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Deadlines are per-operation select() waits over a non-blocking
        # socket, never settimeout(): the timeout there is socket-global
        # state, and this endpoint is explicitly shared between a sender
        # and a receiver thread (driver reader vs issue(); worker serve
        # loop vs heartbeat), so one direction's deadline must not leak
        # into the other's blocking call.
        sock.setblocking(False)
        self._send_lock = threading.Lock()
        self._closed = False
        self.xfer_seconds = 0.0

    # -- raw framing -----------------------------------------------------------
    def _wait_io(self, read: bool, deadline: float | None, stalled) -> None:
        """Block until the socket is ready for one recv/send, or the
        operation's own deadline expires (typed timeout) — no shared
        timeout state with the opposite direction."""
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(stalled())
        try:
            if read:
                ready = select.select([self._sock], [], [], remaining)[0]
            else:
                ready = select.select([], [self._sock], [], remaining)[1]
        except (OSError, ValueError) as exc:
            # close() raced from another thread: the fd is gone (EBADF /
            # fileno -1), which is a peer-side story for this caller.
            raise TransportClosed(f"connection lost mid-wait ({exc})") from None
        if not ready:
            raise TransportTimeout(stalled())

    def _recv_exact(self, n: int, deadline: float | None) -> memoryview:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            try:
                k = self._sock.recv_into(view[got:])
            except (BlockingIOError, InterruptedError):
                self._wait_io(
                    True, deadline,
                    lambda: f"frame read stalled ({got}/{n} bytes arrived)",
                )
                continue
            except OSError as exc:
                raise TransportClosed(f"connection lost mid-read ({exc})") from None
            if k == 0:
                raise TransportClosed(
                    "peer closed the connection mid-frame"
                    if got
                    else "peer closed the connection"
                )
            got += k
        return view

    def send_frame(self, kind: int, body: bytes, timeout: float | None = None) -> None:
        header = _HDR.pack(_MAGIC, kind, len(body), zlib.crc32(body) & 0xFFFFFFFF)
        data = memoryview(header + body)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._send_lock:
            if self._closed:
                raise TransportClosed("endpoint is closed")
            sent = 0
            while sent < len(data):
                try:
                    sent += self._sock.send(data[sent:])
                except (BlockingIOError, InterruptedError):
                    self._wait_io(
                        False, deadline,
                        lambda: (
                            f"frame send stalled for {timeout:g}s "
                            f"(peer not draining)"
                        ),
                    )
                except OSError as exc:
                    raise TransportClosed(
                        f"connection lost mid-send ({exc})"
                    ) from None

    def recv_frame(self, timeout: float | None = None) -> tuple[int, memoryview]:
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._closed:
            raise TransportClosed("endpoint is closed")
        header = self._recv_exact(_HDR.size, deadline)
        magic, kind, length, crc = _HDR.unpack(header)
        if magic != _MAGIC:
            raise FrameError(f"bad frame magic 0x{magic:08x} — stream corrupt")
        if length > _MAX_FRAME:
            raise FrameError(f"frame length {length} exceeds the 1 TiB cap")
        body = self._recv_exact(length, deadline)
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise FrameError("frame checksum mismatch — stream corrupt")
        return kind, body

    # -- typed convenience -----------------------------------------------------
    def send_obj(self, obj, timeout: float | None = None) -> None:
        self.send_frame(K_OBJ, pickle.dumps(obj), timeout)

    def recv_obj(self, timeout: float | None = None):
        kind, body = self.recv_frame(timeout)
        if kind != K_OBJ:
            raise FrameError(f"expected an OBJ frame, got kind {kind}")
        return pickle.loads(body)

    def send_msg(self, payload, step: int, timeout: float | None = None) -> None:
        t0 = time.perf_counter()
        self.send_frame(K_ARRAYS, encode_arrays(payload, step), timeout)
        self.xfer_seconds += time.perf_counter() - t0

    def recv_msg(self, timeout: float | None = None) -> tuple[int, object]:
        t0 = time.perf_counter()
        kind, body = self.recv_frame(timeout)
        if kind != K_ARRAYS:
            raise FrameError(f"expected an ARRAYS frame, got kind {kind}")
        out = decode_arrays(body)
        self.xfer_seconds += time.perf_counter() - t0
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


# -- the two seams -------------------------------------------------------------


class _SocketChannels:
    """Socket-backend channel set: one framed connection per cross-worker
    edge and payload kind — the drop-in sibling of ``_QueueChannels`` and
    ``_RingChannels``.

    Messages carry the driver's step-sequence tag; residue from an aborted
    step is discarded on receive, exactly like the ring transport, so the
    channels self-heal after an error with no flush handshake.  Streams
    copy on both ends (no shared slots to pin), so the reserve/pin surface
    degenerates to no-ops and ``can_reserve`` is False.
    """

    can_reserve = False

    def __init__(self, conns: dict[tuple[str, int], Transport], timeout: float):
        self._conns = conns
        self._timeout = timeout
        self.step = 0

    def xfer_seconds(self) -> float:
        return sum(c.xfer_seconds for c in self._conns.values())

    def recv(self, kind: str, edge: int):
        conn = self._conns[(kind, edge)]
        deadline = time.monotonic() + self._timeout
        while True:
            try:
                tag, payload = conn.recv_msg(max(0.0, deadline - time.monotonic()))
            except TransportTimeout:
                raise TransportTimeout(
                    f"waited >{self._timeout}s for a {kind} payload on edge "
                    f"{edge} that never arrived"
                ) from None
            if tag != self.step:
                continue  # stale message from an aborted step — discard
            return payload

    def send(self, kind: str, edge: int, payload) -> None:
        self._conns[(kind, edge)].send_msg(payload, self.step, self._timeout)

    def reserve(self, kind: str, edge: int, shape, dtype):
        return None

    def begin_wave(self, j: int) -> None:
        pass

    def release_wave(self, j: int) -> None:
        pass

    def release_all(self) -> None:
        pass

    def disconnect(self, kind: str, edge: int) -> None:
        """Sever one channel (fault injection / tests)."""
        self._conns[(kind, edge)].close()

    def drop(self, key: tuple[str, int]) -> None:
        """Remove and close one channel — its peer is being replaced, so
        the dead connection must not linger in the set (a later ``recv``
        on it would surface a confusing TransportClosed instead of using
        the re-dialed socket)."""
        conn = self._conns.pop(key, None)
        if conn is not None:
            conn.close()

    def adopt(self, key: tuple[str, int], conn: Transport) -> None:
        """Install the re-dialed connection for a dropped channel."""
        self._conns[key] = conn

    def close(self) -> None:
        for conn in self._conns.values():
            conn.close()


class RemoteWeightMirror:
    """Worker-side endpoint of the version-gated weight protocol over a
    socket: the driver *pushes* velocity and version frames after every
    optimizer boundary and this mirror replays them, in arrival order,
    into a resident window of the last ``history`` versions.

    The seam is identical to :class:`SharedWeightMirror`'s worker side —
    ``weights``/``latest_version``/``wait_version``/``velocity`` — so
    :class:`~repro.pipeline.plan.WorkerPlanMirror` runs unmodified.
    A dedicated drainer thread folds frames into the window *eagerly*, in
    arrival order — the driver's ``sendall`` must never block on a worker
    that happens not to need a version right now, or a weight window
    larger than the kernel socket buffer deadlocks the publish (the
    worker would only start reading once a step arrives on the control
    channel, which the blocked driver never sends).  In-order delivery
    guarantees that once version v is visible, every older resident
    version and v's boundary velocities (sent first, same as the shared
    mirror's publish order) are too.  The driver's latest can only run
    *ahead* of this view, never behind it, so the ``v > latest_version``
    gate check stays correct; the one non-monotone event — checkpoint
    restore — is fenced by :meth:`await_reset` (a RESET frame plus a
    control-channel marker).
    """

    def __init__(
        self,
        conn: Transport,
        stage_shapes: list[list[tuple[int, ...]]],
        history: int,
        with_velocity: bool,
    ):
        self._conn = conn
        self._counts = [len(shapes) for shapes in stage_shapes]
        self.history = history
        self.with_velocity = with_velocity
        self._window: dict[int, list[list[np.ndarray]]] = {}
        self._velocity: list[list[np.ndarray]] | None = None
        self._latest = -1
        self._cond = threading.Condition()
        self._resets = 0  # RESET frames folded so far
        self._resets_consumed = 0  # acknowledged by await_reset
        self._broken: BaseException | None = None
        self._drainer = threading.Thread(
            target=self._drain_loop, name="weight-drain", daemon=True
        )
        self._drainer.start()

    def _drain_loop(self) -> None:
        while True:
            try:
                kind, body = self._conn.recv_frame(None)
            except TransportError as exc:
                with self._cond:
                    self._broken = exc
                    self._cond.notify_all()
                return
            with self._cond:
                try:
                    if self._apply(kind, body):
                        self._resets += 1
                except BaseException as exc:
                    self._broken = exc
                    self._cond.notify_all()
                    return
                self._cond.notify_all()

    def _wait_for(self, ready, deadline: float, describe) -> None:
        with self._cond:
            while not ready():
                if self._broken is not None:
                    raise TransportClosed(
                        f"weight channel broke while {describe()} "
                        f"({self._broken})"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportTimeout(describe())
                self._cond.wait(remaining)

    @property
    def latest_version(self) -> int:
        return self._latest

    def _regroup(self, flat) -> list[list[np.ndarray]]:
        arrays = list(flat) if isinstance(flat, tuple) else [flat]
        if len(arrays) != sum(self._counts):
            raise FrameError(
                f"weight frame carried {len(arrays)} arrays, expected "
                f"{sum(self._counts)}"
            )
        stages, pos = [], 0
        for count in self._counts:
            group = arrays[pos:pos + count]
            for arr in group:
                arr.setflags(write=False)  # workers must never write weights
            stages.append(group)
            pos += count
        return stages

    def _apply(self, kind: int, body) -> bool:
        """Fold one weight-socket frame into the window; True for RESET."""
        if kind == K_RESET:
            self._window.clear()
            self._latest = -1
            return True
        version, payload = decode_arrays(body)
        stages = self._regroup(payload)
        if kind == K_VELOCITY:
            self._velocity = stages
            return False
        if kind != K_WEIGHTS:
            raise FrameError(f"unexpected frame kind {kind} on the weight socket")
        self._window[version] = stages
        self._latest = max(self._latest, version)
        for old in [v for v in self._window if v <= self._latest - self.history]:
            del self._window[old]
        return False

    def wait_version(self, version: int, timeout: float) -> None:
        if self._latest >= version:
            return
        self._wait_for(
            lambda: self._latest >= version,
            time.monotonic() + timeout,
            lambda: (
                f"weight version {version} was never published "
                f"(remote mirror at {self._latest} after {timeout:g}s)"
            ),
        )

    def await_reset(self, version: int, timeout: float) -> None:
        """Checkpoint-restore fence: wait until a RESET frame has been
        folded and the republished window's header lands on ``version``.
        The driver sends the weight frames first and then the
        control-channel marker that triggers this call, so the drainer
        may have folded the RESET already — each fence consumes one RESET
        frame, whether it landed before or after this call."""
        self._wait_for(
            lambda: self._resets > self._resets_consumed
            and self._latest == version,
            time.monotonic() + timeout,
            lambda: (
                f"weight window was never republished to version "
                f"{version} after a restore (at {self._latest} after "
                f"{timeout:g}s)"
            ),
        )
        with self._cond:
            self._resets_consumed += 1

    def weights(self, stage: int, version: int) -> list[np.ndarray]:
        with self._cond:
            check_version_resident(
                version, self._latest, self.history, "remote mirror"
            )
            return self._window[version][stage]

    def velocity(self, stage: int) -> list[np.ndarray]:
        if not self.with_velocity:
            raise RuntimeError("mirror was built without velocity buffers")
        if self._velocity is None:
            raise RuntimeError(
                "no velocity frame received yet (driver must publish velocity "
                "before the version that needs it)"
            )
        return self._velocity[stage]

    def close(self) -> None:
        self._conn.close()


# -- worker process ------------------------------------------------------------


def _channel_keys(edges, w: int):
    """Which (kind, edge) channels worker ``w`` listens on vs dials, from
    the worker graph's picklable edge spec ``(index, src_worker,
    dst_worker)``.  The *receiver* of a channel owns its listener:
    activations/recomputes flow src→dst, gradients dst→src — the socket
    projection of ``_worker_rings``'s role assignment."""
    listen, dial = [], []
    for index, src_w, dst_w in edges:
        if dst_w == w:
            listen += [("act", index), ("rec", index)]
            dial += [("grad", index)]
        elif src_w == w:
            dial += [("act", index), ("rec", index)]
            listen += [("grad", index)]
    return listen, dial


def _socket_worker_main(w: int, ctl_address: str, opts: dict) -> None:
    """Entry point of one socket stage worker.

    Only the bootstrap address crosses the process boundary; everything
    else — the model spec (as wire bytes), resolver spec, channel
    topology, initial persistent state — arrives over the control socket,
    so the same entry point would serve a worker started on another host
    by any launcher.  Phases: dial the driver (control + weight
    connections), receive init, build the model slice, bind channel
    listeners, report them, receive the full address map, dial send-side
    channels then accept recv-side ones, report ready, serve step
    commands until shutdown or EOF.
    """
    rt = _runtime
    from repro.nn import arena as nn_arena
    from repro.pipeline.delays import Method
    from repro.pipeline.plan import WorkerPlanMirror

    handshake = opts["handshake_timeout"]
    timeout = opts["deadlock_timeout"]
    # Jitter desynchronizes the retry schedules of workers (re)connecting
    # after the same event — a whole generation dialing the driver, or every
    # mesh neighbor re-dialing one replacement — so attempts don't stampede
    # the listener backlog in lockstep.  Seeded by worker index: each worker
    # draws a distinct but reproducible schedule.
    backoff = Backoff(
        total=opts["connect_timeout"], jitter=0.25, rng=random.Random(w)
    )
    try:
        ctl = connect(ctl_address, opts["connect_timeout"], backoff)
        ctl.send_obj(("hello", w), handshake)
        wconn = connect(ctl_address, opts["connect_timeout"], backoff)
        wconn.send_obj(("weights", w), handshake)
    except TransportError:
        return  # driver gone before the handshake; nothing to report to
    chans = None
    mirror = None
    listeners: dict[tuple[str, int], Listener] = {}

    def report(seq, kind, busy=0.0, xfer=0.0, stall=0.0, payload=None):
        ctl.send_obj(("done", (w, seq, kind, busy, xfer, stall, payload)), timeout)

    try:
        try:
            tag, init = ctl.recv_obj(handshake)
            if tag != "init":
                raise FrameError(f"expected init, got {tag!r}")
            k = init["k"]
            n = init["num_microbatches"]
            spec = init["resolver_spec"]
            model, stages = ModelSpec.from_wire(init["model_wire"]).build()
            names = [list(s.names) for s in stages]
            if names != init["stage_names"]:
                raise ValueError(
                    f"worker {w}: model spec rebuilt a different partition "
                    f"than the driver's (stage parameter names differ)"
                )
            graph = build_worker_graph(
                model, stages,
                granularity=init["granularity"], max_workers=init["max_workers"],
            )
            if graph.num_workers != k or graph.edge_spec() != init["edges"]:
                raise ValueError(
                    f"worker {w}: model spec rebuilt a different worker graph "
                    f"than the driver's ({graph.num_workers} workers, edges "
                    f"{graph.edge_spec()!r} vs {init['edges']!r})"
                )
            compute = graph.workers[w]
            compute.enable_deferred()
            mirror = RemoteWeightMirror(
                wconn, init["stage_shapes"], spec.history, spec.use_t2
            )
            resolver = WorkerPlanMirror(spec, mirror)
            is_sink_worker = w == k - 1
            loss_fn = pickle.loads(init["loss_pickle"]) if is_sink_worker else None
            for key, address in init["listen"].items():
                listeners[key] = Listener(address, backlog=2)
        except BaseException as exc:  # noqa: BLE001 — reported to driver
            report(0, "init_error", payload=rt._picklable_exc(exc))
            return
        ctl.send_obj(
            ("bound", w, {key: l.address for key, l in listeners.items()}), timeout
        )
        try:
            tag, addresses = ctl.recv_obj(handshake)
            if tag != "addresses":
                raise FrameError(f"expected addresses, got {tag!r}")
            conns: dict[tuple[str, int], Transport] = {}
            # Dial first, accept second: every peer listener reported bound
            # before the address broadcast, so dials complete against the
            # backlog without waiting for the peer's accept — no ordering
            # deadlock however the mesh is shaped.
            for key in init["dial"]:
                conns[key] = connect(addresses[key], opts["connect_timeout"], backoff)
            for key, listener in listeners.items():
                conns[key] = listener.accept(handshake)
                listener.close()
            listeners.clear()
            chans = rt._wrap_channels(_SocketChannels(conns, timeout), w)
            # Compiled locally from the resolver mirror — identical
            # arithmetic and deterministic graph ⇒ identical fused blocks
            # to every other backend's, and no compiled program on the wire.
            programs = rt._build_wave_programs(
                Method(spec.method), resolver, graph, n,
                spec.recompute_segment is not None, init["fuse_waves"],
            )
            has_pstate = compute.has_persistent_state()
            if init["pstate"] is not None:
                compute.load_persistent_state(init["pstate"])
            arena_obj = nn_arena.Arena()
            nn_arena.set_current(arena_obj)
        except BaseException as exc:  # noqa: BLE001 — reported to driver
            report(0, "init_error", payload=rt._picklable_exc(exc))
            return
        report(0, "ready")

        stop_beats = threading.Event()

        def _heartbeat():
            while not stop_beats.wait(opts["heartbeat_interval"]):
                try:
                    ctl.send_obj(("hb", w), timeout)
                except TransportError:
                    return

        threading.Thread(
            target=_heartbeat, name=f"pipe-sock-hb-{w}", daemon=True
        ).start()

        while True:
            try:
                msg = ctl.recv_obj(None)
            except TransportClosed:
                break  # driver is gone; exit quietly
            if msg[0] == "shutdown":
                break
            if msg[0] == "pstate":
                compute.load_persistent_state(msg[1])
                continue
            if msg[0] == "resync":
                # Checkpoint restore: fence on the republished window so a
                # stale (higher) latest can never satisfy a gate against
                # the restored timeline.
                mirror.await_reset(msg[1], timeout)
                continue
            if msg[0] == "fence":
                # Quiesce ping after a per-worker replacement.  FIFO on the
                # control channel means reaching this message proves every
                # step command queued before it has fully run (or aborted)
                # — this worker can no longer be blocked on a stale-tagged
                # recv that would swallow the retried step's payloads.
                ctl.send_obj(("fenced", w, msg[1]), timeout)
                continue
            if msg[0] == "rewire":
                # A mesh neighbor was replaced inside this generation:
                # drop the channels that died with it, rebind fresh
                # listeners for the keys this worker owns (the receiver
                # listens, same role assignment as bring-up), report the
                # new addresses, then dial-then-accept against the merged
                # map exactly like the original handshake.  Every other
                # connection — control, weights, channels to unaffected
                # neighbors — survives untouched.  Failure is fatal for
                # this worker; the driver falls back to a generation
                # respawn.
                spec = msg[1]
                new_listeners: dict[tuple[str, int], Listener] = {}
                try:
                    for key in spec["close"]:
                        chans.drop(key)
                    for key, address in spec["listen"].items():
                        new_listeners[key] = Listener(address, backlog=2)
                    ctl.send_obj(
                        (
                            "rewire_bound",
                            w,
                            {key: l.address for key, l in new_listeners.items()},
                        ),
                        timeout,
                    )
                    tag, addresses = ctl.recv_obj(handshake)
                    if tag != "rewire_addresses":
                        raise FrameError(
                            f"expected rewire_addresses, got {tag!r}"
                        )
                    for key in spec["dial"]:
                        chans.adopt(
                            key,
                            connect(
                                addresses[key], opts["connect_timeout"], backoff
                            ),
                        )
                    for key, listener in new_listeners.items():
                        chans.adopt(key, listener.accept(handshake))
                except BaseException as exc:  # noqa: BLE001 — reported
                    try:
                        report(0, "init_error", payload=rt._picklable_exc(exc))
                    except TransportError:
                        pass
                    break
                finally:
                    for listener in new_listeners.values():
                        listener.close()
                continue
            step_seq, t, sync, scales, ext, ys = msg[1]
            resolver.t = t
            chans.step = step_seq
            losses = [0.0] * n
            busy = stall = 0.0
            kind, payload = "ok", None
            xfer0 = chans.xfer_seconds()
            arena_obj.begin_program(step_seq)
            if is_sink_worker:
                def on_losses(_seq=step_seq, _losses=losses):
                    report(_seq, "losses", payload=list(_losses))
            else:
                on_losses = None
            try:
                for b in compute.bindings:
                    for p in b.params:
                        p.grad.fill(0.0)
                compute.zero_deferred()
                busy, stall, lanes = rt._execute_program(
                    compute, programs[bool(sync)][w], resolver, t, sync, chans,
                    loss_fn, ext, ys, scales, losses, timeout, on_losses,
                )
                # Gradients ride the done report (no shared mailbox over a
                # socket): per-binding (stage, positions, arrays), disjoint
                # across workers, folded driver-side in worker order.  One
                # done frame per step carries the whole block's lanes — the
                # coarsened report; frames-per-step on the wire is
                # unchanged by block count.
                grads = [
                    (b.stage, list(b.positions), [p.grad for p in b.params])
                    for b in compute.bindings
                ]
                payload = (
                    losses if is_sink_worker else None,
                    compute.persistent_state() if has_pstate else None,
                    grads,
                    pack_lanes(lanes),
                )
            except TransportTimeout as exc:
                kind, payload = "deadlock", str(exc)
            except BaseException as exc:  # noqa: BLE001 — relayed to driver
                kind, payload = "error", rt._picklable_exc(exc)
            finally:
                chans.release_all()
            try:
                report(
                    step_seq, kind, busy, chans.xfer_seconds() - xfer0, stall, payload
                )
            except TransportError:
                break  # driver is gone mid-report
        stop_beats.set()
    except TransportError:
        pass  # driver-side teardown raced the serve loop
    finally:
        for listener in listeners.values():
            listener.close()
        if chans is not None:
            chans.close()
        if mirror is not None:
            mirror.close()
        ctl.close()


# -- driver-side pool ----------------------------------------------------------


class SocketWorkerPool(_runtime._WorkerPoolBase):
    """Per-stage workers over framed sockets, behind the unchanged
    issue/collect scheduler surface — ``AsyncPipelineRuntime`` drives it
    exactly like the thread and process pools, so the same ``StepPlan``
    runs bit-for-bit.

    What is different is the failure story.  A :class:`WorkerRegistry`
    tracks every worker's task state, fed by one reader thread per control
    connection (done reports, early losses, heartbeats) and by process
    liveness; ``_peer_failure`` consults it, so a lost worker surfaces as
    a typed :class:`WorkerLostError` instead of a generic deadlock.  On
    loss the pool invalidates all steps issued before the event
    (``_dead_before`` — their collects fail fast rather than waiting out
    the deadlock timeout) and, if ``max_restarts`` allows, tears the whole
    worker set down and respawns it: fresh handshake, republished
    resolvable weight window, driver-side persistent state seeded through
    init.  The runtime's normal error path then restores the latest
    published weights, so the failed minibatch is simply retried.

    ``family="uds"`` (default) runs over Unix-domain sockets in a private
    tmpdir; ``family="tcp"`` binds loopback TCP with ephemeral ports — the
    single-host stand-in for the multi-host topology, with every byte on a
    real socket either way.
    """

    kind = "socket"

    def __init__(
        self,
        *,
        graph,
        plan,
        stages,
        loss_fn,
        model_spec: ModelSpec,
        num_microbatches: int,
        deadlock_timeout: float,
        done_grace: float,
        granularity: str = "layer",
        max_workers: int | None = None,
        start_method: str | None = None,
        family: str = "uds",
        host: str = "127.0.0.1",
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float | None = None,
        connect_timeout: float = 10.0,
        handshake_timeout: float = 120.0,
        max_restarts: int = 0,
        max_worker_restarts: int = 0,
        fuse_waves: bool = True,
    ):
        super().__init__(graph.num_workers, deadlock_timeout, done_grace)
        if family not in ("uds", "tcp"):
            raise ValueError(f"family must be 'uds' or 'tcp', got {family!r}")
        # Fail loudly on a misconfigured net_options dict: a negative
        # timeout or a heartbeat_timeout at/below the beat interval would
        # not error anywhere — it would just mark every healthy worker
        # LOST on the first sweep, which reads like a cluster outage.
        for key, value in (
            ("heartbeat_interval", heartbeat_interval),
            ("connect_timeout", connect_timeout),
            ("handshake_timeout", handshake_timeout),
        ):
            if value <= 0:
                raise ValueError(
                    f"net_options[{key!r}] must be positive, got {value!r}"
                )
        if heartbeat_timeout is not None and heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                f"net_options['heartbeat_timeout'] ({heartbeat_timeout!r}) "
                f"must exceed net_options['heartbeat_interval'] "
                f"({heartbeat_interval!r}); a timeout at or below the beat "
                f"interval marks every healthy worker LOST"
            )
        for key, value in (
            ("max_restarts", max_restarts),
            ("max_worker_restarts", max_worker_restarts),
        ):
            if value < 0:
                raise ValueError(
                    f"net_options[{key!r}] must be >= 0, got {value!r}"
                )
        self.graph = graph
        self.driver_workers = graph.workers
        self.plan = plan
        self.stages = stages
        self._loss_pickle = pickle.dumps(loss_fn)
        self._model_wire = model_spec.to_wire()
        self._num_microbatches = num_microbatches
        self._granularity = granularity
        self._max_workers = max_workers
        self.fuse_waves = fuse_waves
        self._start_method = start_method
        self._family = family
        self._host = host
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else max(10 * heartbeat_interval, 5.0)
        )
        self._connect_timeout = connect_timeout
        self._handshake_timeout = handshake_timeout
        self._send_timeout = deadlock_timeout + done_grace
        self.max_restarts = max_restarts
        self._restarts_left = max_restarts
        self.max_worker_restarts = max_worker_restarts
        self._worker_restarts_left = max_worker_restarts
        self._generation = 0
        self._rewires = 0  # per-worker replacements (names fresh uds paths)
        # Survivors' ("rewire_bound", w, addrs) replies arrive on control
        # connections owned by reader threads; they are routed here for the
        # driver thread running the replacement handshake.
        self._rewire_q: queue.SimpleQueue = queue.SimpleQueue()
        # ("fenced", w, token) replies to the post-replacement quiesce ping
        # (see _await_quiesce), routed the same way.
        self._fence_q: queue.SimpleQueue = queue.SimpleQueue()
        # Steps issued at or before this sequence died with a lost worker:
        # their collects fail fast with WorkerLostError instead of waiting
        # out the deadlock timeout (the runtime drains them on recovery).
        self._dead_before = 0
        self._lost_worker: int | None = None
        self._done: queue.SimpleQueue = queue.SimpleQueue()
        self._dir = tempfile.mkdtemp(prefix="pmnet-") if family == "uds" else None
        self.registry = WorkerRegistry(graph.num_workers, self._heartbeat_timeout)
        self._ctls: list[Transport] = []
        self._weight_conns: list[Transport] = []
        self._procs: list = []
        self._ext_needs = [graph.ext_needs(w) for w in range(graph.num_workers)]
        self._stage_shapes = [[tuple(p.shape) for p in s.params] for s in stages]
        self._edges = graph.edge_spec()
        # Channels exist only for cross-worker edges (local and external
        # edges never touch a transport), same set _worker_rings covers.
        self._cross = [
            (e.index, e.src_worker, e.dst.worker) for e in graph.cross_edges()
        ]
        try:
            self._spawn_workers()
        except BaseException:
            self.close()
            raise

    def _get_done(self, timeout: float):
        return self._done.get(timeout=timeout)

    # -- topology --------------------------------------------------------------
    def _address(self, name: str) -> str:
        if self._family == "uds":
            return f"uds:{self._dir}/{name}"
        return f"tcp:{self._host}:0"

    def _spawn_workers(self) -> None:
        """Launch and handshake a complete worker set (initial bring-up and
        every respawn): accept control + weight connections, ship init
        (model spec over the wire), gather bound channel listeners,
        broadcast the address map, await ready, publish the resolvable
        weight window."""
        k = self.num_workers
        gen = self._generation
        self._generation += 1
        self.registry = WorkerRegistry(k, self._heartbeat_timeout)
        registry = self.registry
        listener = Listener(self._address(f"ctl{gen}"), backlog=2 * k)
        opts = {
            "connect_timeout": self._connect_timeout,
            "handshake_timeout": self._handshake_timeout,
            "heartbeat_interval": self._heartbeat_interval,
            "deadlock_timeout": self.deadlock_timeout,
        }
        ctx = multiprocessing.get_context(
            self._start_method or _runtime._default_start_method()
        )
        try:
            for w in range(k):
                proc = ctx.Process(
                    target=_socket_worker_main,
                    args=(w, listener.address, opts),
                    name=f"pipe-sock-{gen}-{w}",
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
            ctls: list[Transport | None] = [None] * k
            wconns: list[Transport | None] = [None] * k
            # Visible to _teardown_workers from the first accept: if the
            # handshake dies partway (worker death, timeout, garbage),
            # close() must reach the connections already accepted, not
            # just a fully-assembled set.
            self._ctls = ctls
            self._weight_conns = wconns
            deadline = time.monotonic() + self._handshake_timeout
            pending = 2 * k
            while pending:
                try:
                    conn = listener.accept(0.2)
                except TransportTimeout:
                    dead = self._proc_failure()
                    if dead is not None:
                        raise WorkerLostError(
                            f"socket worker failed to start: {dead}"
                        ) from None
                    if time.monotonic() > deadline:
                        raise TransportTimeout(
                            f"worker handshake incomplete after "
                            f"{self._handshake_timeout:g}s"
                        ) from None
                    continue
                try:
                    tag, w = conn.recv_obj(self._handshake_timeout)
                    if tag == "hello":
                        ctls[w] = conn
                    elif tag == "weights":
                        wconns[w] = conn
                    else:
                        raise FrameError(f"unexpected handshake frame {tag!r}")
                except BaseException:
                    conn.close()  # not in any slot yet; nobody else can
                    raise
                pending -= 1
            for w in range(k):
                listen, dial = _channel_keys(self._cross, w)
                init = {
                    "k": k,
                    "num_microbatches": self._num_microbatches,
                    "stage_shapes": self._stage_shapes,
                    "stage_names": [list(s.names) for s in self.stages],
                    "edges": self._edges,
                    "resolver_spec": self.plan.resolver_spec(),
                    "model_wire": self._model_wire,
                    "granularity": self._granularity,
                    "max_workers": self._max_workers,
                    "fuse_waves": self.fuse_waves,
                    "loss_pickle": self._loss_pickle if w == k - 1 else b"",
                    "listen": {
                        key: self._address(f"c{gen}_{key[0]}{key[1]}")
                        for key in listen
                    },
                    "dial": dial,
                    "pstate": (
                        self.driver_workers[w].persistent_state()
                        if self.driver_workers[w].has_persistent_state()
                        else None
                    ),
                }
                ctls[w].send_obj(("init", init), self._handshake_timeout)
            addresses: dict[tuple[str, int], str] = {}
            for w in range(k):
                msg = ctls[w].recv_obj(self._handshake_timeout)
                if msg[0] == "done" and msg[1][2] == "init_error":
                    raise msg[1][6]
                if msg[0] != "bound":
                    raise FrameError(f"expected bound from worker {w}, got {msg[0]!r}")
                addresses.update(msg[2])
            for w in range(k):
                ctls[w].send_obj(("addresses", addresses), self._handshake_timeout)
            for w in range(k):
                threading.Thread(
                    target=self._reader,
                    args=(w, ctls[w], registry),
                    name=f"pipe-sock-reader-{gen}-{w}",
                    daemon=True,
                ).start()
            self._await_ready(k)
            self._publish_window()
        finally:
            listener.close()

    def _reader(self, w: int, conn: Transport, registry: WorkerRegistry) -> None:
        """Drain worker ``w``'s control connection for the lifetime of one
        worker generation: done reports and early losses go to the done
        queue, heartbeats refresh the registry, EOF/corruption marks the
        worker LOST.  The registry is captured, not read off self: after a
        respawn a straggling reader can only mutate its own generation's
        (discarded) records."""
        while True:
            try:
                msg = conn.recv_obj(None)
            except TransportError as exc:
                # Only the connection currently registered for this slot may
                # declare it lost: during a per-worker replacement the old
                # conn is closed and its slot re-pointed at the new one, so
                # a straggling reader observing the *old* socket die must
                # not poison the replacement's record.
                ctls = self._ctls
                if w < len(ctls) and ctls[w] is conn:
                    registry.mark_lost(w, f"worker {w} connection lost ({exc})")
                return
            registry.beat(w)
            if msg[0] == "hb":
                continue
            if msg[0] == "rewire_bound":
                # Survivor's reply in the replacement handshake; the driver
                # thread inside _replace_worker is waiting on it.
                self._rewire_q.put(msg)
                continue
            if msg[0] == "fenced":
                self._fence_q.put(msg)
                continue
            if msg[0] == "done":
                report = msg[1]
                if report[2] in ("ok", "error", "deadlock"):
                    try:
                        registry.transition(w, TaskState.READY)
                    except RuntimeError:
                        pass  # racing a LOST mark; LOST wins
                self._done.put(report)
                continue
            registry.mark_lost(w, f"worker {w} spoke garbage ({msg[0]!r})")
            return

    def _await_ready(self, k: int) -> None:
        ready = 0
        deadline = time.monotonic() + self._handshake_timeout
        while ready < k:
            try:
                w, _, kind, _, _, _, payload = self._done.get(timeout=0.2)
            except queue.Empty:
                dead = self._peer_failure()
                if dead is not None:
                    raise WorkerLostError(
                        f"socket worker failed to start: {dead}"
                    ) from None
                if time.monotonic() > deadline:
                    raise TransportTimeout(
                        "socket workers did not come up in time"
                    ) from None
                continue
            if kind == "init_error":
                raise payload
            if kind == "ready":
                self.registry.transition(w, TaskState.READY)
                ready += 1

    # -- failure detection -----------------------------------------------------
    def _proc_failure(self) -> str | None:
        # _teardown_workers empties the list, so it always holds exactly the
        # current generation's processes, in worker order.
        for w, proc in enumerate(self._procs):
            if not proc.is_alive() and proc.exitcode != 0:
                self.registry.mark_lost(
                    w, f"worker process {proc.name} died with exit code "
                    f"{proc.exitcode}"
                )
        rec = self.registry.first_lost()
        if rec is None:
            return None
        self._lost_worker = rec.worker
        return f"pipeline worker {rec.worker} was lost: {rec.reason}"

    def _peer_failure(self) -> str | None:
        return self._proc_failure()

    def _peer_error(self, dead: str) -> BaseException:
        return WorkerLostError(dead, worker=self._lost_worker)

    # -- scheduler surface -----------------------------------------------------
    def issue(self, t, sync, ext, ys, scales, num_microbatches) -> int:
        k = self.num_workers
        self._seq += 1
        self._issued.append(self._seq)
        for w, conn in enumerate(self._ctls):
            try:
                conn.send_obj(
                    (
                        "step",
                        (
                            self._seq,
                            t,
                            sync,
                            scales,
                            {i: ext[i] for i in self._ext_needs[w]},
                            ys if w == k - 1 else None,
                        ),
                    ),
                    self._send_timeout,
                )
            except TransportError as exc:
                # The worker died between steps.  Nobody will ever collect
                # this sequence (the runtime has not recorded it yet), so
                # withdraw it before handling the loss.
                self.registry.mark_lost(w, f"unreachable at issue ({exc})")
                self._issued.pop()
                err = WorkerLostError(
                    f"pipeline worker {w} is gone ({exc})", worker=w
                )
                self._handle_loss()
                raise err from None
            try:
                self.registry.transition(w, TaskState.RUNNING)
            except RuntimeError:
                pass  # already LOST or still RUNNING a buffered prior step
        return self._seq

    def collect(self):
        k = self.num_workers
        seq = self._issued.popleft()
        if seq <= self._dead_before:
            raise WorkerLostError(
                f"step {seq} was in flight when a worker was lost; its "
                f"results are gone (weights were restored to the latest "
                f"published version)",
                worker=self._lost_worker,
            )
        try:
            busys, xfers, stalls, extras = self._collect(seq)
        except (WorkerLostError, TransportClosed) as exc:
            err = (
                exc
                if isinstance(exc, WorkerLostError)
                else WorkerLostError(f"a worker's channel closed mid-step: {exc}")
            )
            self._handle_loss()
            raise err from exc
        losses, _, _, _ = extras[k - 1]
        for w in sorted(extras):
            _, pstate, grads, _ = extras[w]
            if pstate is not None:
                self.driver_workers[w].load_persistent_state(pstate)
            # Each worker owns disjoint (stage, position) coordinates, so
            # the fold order cannot matter; sorted for determinism anyway.
            for s, positions, arrays in grads:
                params = self.stages[s].params
                for pos, arr in zip(positions, arrays):
                    params[pos].grad[...] = arr
        lanes = [unpack_lanes(extras[w][3]) for w in range(k)]
        blocks = sum(len(lane) for lane in lanes)
        return _runtime._StepResult(
            losses=list(losses),
            busy=busys,
            transport=xfers,
            stall=stalls,
            commands=blocks,
            reports=blocks,
            lanes=lanes,
        )

    def await_losses(self, seq: int):
        if seq <= self._dead_before:
            return None
        return super().await_losses(seq)

    def publish_plan_state(self) -> None:
        # Velocity first, version last: in-order frame delivery makes the
        # version frame the release operation, same as the shared mirror's
        # header bump.
        if self.plan.corrector is not None:
            self._broadcast_weights(
                K_VELOCITY, encode_arrays(_flatten(self.plan.corrector.velocity), -1)
            )
        store = self.plan.store
        v = store.latest_version
        self._broadcast_weights(
            K_WEIGHTS,
            encode_arrays(
                _flatten([store.weights(s, v) for s in range(store.num_stages)]), v
            ),
        )

    def full_resync(self) -> None:
        """Checkpoint restore: clear every remote window, republish the
        resolvable versions, then fence each worker through its control
        channel (FIFO with the next step command) so a stale higher
        ``latest`` can never satisfy a gate against the restored
        timeline."""
        self._broadcast_weights(K_RESET, b"")
        self._publish_window()
        v = self.plan.store.latest_version
        for w, (conn, compute) in enumerate(zip(self._ctls, self.driver_workers)):
            try:
                conn.send_obj(("resync", v), self._send_timeout)
                if compute.has_persistent_state():
                    conn.send_obj(
                        ("pstate", compute.persistent_state()), self._send_timeout
                    )
            except TransportError as exc:
                self.registry.mark_lost(w, f"unreachable at resync ({exc})")
                self.wedged = True
                raise WorkerLostError(
                    f"pipeline worker {w} is gone ({exc})", worker=w
                ) from None

    def _publish_window(self, workers=None) -> None:
        """Publish every resolvable resident version — to all workers on
        bring-up/respawn, or (``workers=...``) to just a replacement whose
        fresh mirror starts empty while survivors keep their windows."""
        plan = self.plan
        if plan.corrector is not None:
            self._broadcast_weights(
                K_VELOCITY,
                encode_arrays(_flatten(plan.corrector.velocity), -1),
                workers=workers,
            )
        store = plan.store
        resident = set(store.resident_versions(0))
        for v in sorted(set(plan.resolvable_versions()) & resident):
            self._broadcast_weights(
                K_WEIGHTS,
                encode_arrays(
                    _flatten([store.weights(s, v) for s in range(store.num_stages)]),
                    v,
                ),
                workers=workers,
            )

    def _broadcast_weights(self, kind: int, body: bytes, workers=None) -> None:
        for w, conn in enumerate(self._weight_conns):
            if conn is None or (workers is not None and w not in workers):
                continue
            try:
                conn.send_frame(kind, body, self._send_timeout)
            except TransportError as exc:
                self.registry.mark_lost(w, f"unreachable at publish ({exc})")
                self.wedged = True
                raise WorkerLostError(
                    f"pipeline worker {w} is gone ({exc})", worker=w
                ) from None

    # -- loss handling ---------------------------------------------------------
    def _drain_residue(self) -> None:
        self._buffered.clear()
        self._early_losses.clear()
        while True:
            try:
                self._done.get_nowait()
            except queue.Empty:
                break

    def _handle_loss(self) -> None:
        """A worker is LOST.  Invalidate everything issued before now, then
        recover along the cheapest path that still has budget:

        1. *Per-worker replacement* (``max_worker_restarts``): exactly one
           worker is lost — respawn just that slot inside the current
           generation.  Survivors keep their processes, control/weight
           connections and mirror windows; only the channels adjacent to
           the dead worker are re-dialed (see :meth:`_replace_worker`).
        2. *Generation respawn* (``max_restarts``): connections,
           processes, registry and remote weight windows are replaced
           wholesale — the fallback when several workers died at once or
           a replacement handshake itself failed.
        3. *Wedge*: no budget left; every further step raises.

        Either recovery leaves the failed minibatch for the caller to
        retry (collects for steps at or before ``_dead_before`` fail fast
        with :class:`WorkerLostError`)."""
        self._dead_before = self._seq
        self._drain_residue()
        lost = [
            w
            for w, s in enumerate(self.registry.states())
            if s is TaskState.LOST
        ]
        if len(lost) == 1 and self._worker_restarts_left > 0:
            self._worker_restarts_left -= 1
            try:
                self._replace_worker(lost[0])
            except BaseException:
                # The replacement handshake failed (slot or a survivor went
                # down mid-rewire, or it timed out).  Record the outcome and
                # fall through to the blunt recovery below.
                try:
                    self.registry.transition(
                        lost[0], TaskState.LOST, "replacement handshake failed"
                    )
                except RuntimeError:
                    pass  # already LOST (e.g. a survivor died instead)
                self._drain_residue()
            else:
                self.wedged = False
                return
        if self._restarts_left > 0:
            self._restarts_left -= 1
            self._teardown_workers()
            try:
                self._spawn_workers()
            except BaseException:
                self.wedged = True  # respawn itself failed; no third option
                raise
            self.wedged = False
        else:
            self.wedged = True

    def _replace_worker(self, w: int) -> None:
        """Respawn slot ``w`` inside the current generation.

        Protocol (driver thread; survivors answer from their serve loops,
        so a survivor still aborting the failed step joins as soon as it
        has reported it):

        1. retire the old slot: null the conn slots (so the straggling
           reader cannot poison the new record), close them, reap the
           process, move the registry LOST → REPLACING;
        2. bootstrap the replacement exactly like bring-up — fresh
           listener, hello/weights dial-back, init with the driver's
           current persistent state and *fresh* channel addresses;
        3. tell every mesh neighbor to ``rewire``: drop the channels that
           died with ``w``, rebind fresh listeners for the keys it owns,
           reply ``rewire_bound`` (routed here via ``_rewire_q``);
        4. merge the replacement's ``bound`` with the survivors' replies
           and broadcast the address map to all affected workers — every
           listener is bound before anyone dials, the same ordering that
           makes bring-up deadlock-free;
        5. await the replacement's ``ready``, publish the resolvable
           weight window to *its* mirror only, reseed survivors'
           persistent state, move the registry REPLACING → READY.

        Any failure raises; the caller falls back to a generation respawn
        (or wedges)."""
        registry = self.registry
        old_ctl, old_wconn = self._ctls[w], self._weight_conns[w]
        self._ctls[w] = None
        self._weight_conns[w] = None
        for conn in (old_ctl, old_wconn):
            if conn is not None:
                conn.close()
        old_proc = self._procs[w]
        old_proc.join(timeout=2.0)
        if old_proc.is_alive():
            old_proc.terminate()
            old_proc.join(timeout=2.0)
        registry.transition(w, TaskState.REPLACING)
        for q in (self._rewire_q, self._fence_q):
            while True:  # residue from an earlier failed attempt
                try:
                    q.get_nowait()
                except queue.Empty:
                    break
        self._rewires += 1
        r = self._rewires
        opts = {
            "connect_timeout": self._connect_timeout,
            "handshake_timeout": self._handshake_timeout,
            "heartbeat_interval": self._heartbeat_interval,
            "deadlock_timeout": self.deadlock_timeout,
        }
        ctx = multiprocessing.get_context(
            self._start_method or _runtime._default_start_method()
        )
        bootstrap = Listener(self._address(f"ctl_r{r}"), backlog=2)
        try:
            proc = ctx.Process(
                target=_socket_worker_main,
                args=(w, bootstrap.address, opts),
                name=f"pipe-sock-r{r}-{w}",
                daemon=True,
            )
            proc.start()
            self._procs[w] = proc
            deadline = time.monotonic() + self._handshake_timeout
            pending = 2
            while pending:
                try:
                    conn = bootstrap.accept(0.2)
                except TransportTimeout:
                    if not proc.is_alive() and proc.exitcode != 0:
                        raise WorkerLostError(
                            f"replacement for worker {w} died on startup "
                            f"(exit code {proc.exitcode})",
                            worker=w,
                        ) from None
                    if time.monotonic() > deadline:
                        raise TransportTimeout(
                            f"replacement for worker {w} did not dial back "
                            f"within {self._handshake_timeout:g}s"
                        ) from None
                    continue
                try:
                    tag, ww = conn.recv_obj(self._handshake_timeout)
                    if tag == "hello" and ww == w:
                        self._ctls[w] = conn
                    elif tag == "weights" and ww == w:
                        self._weight_conns[w] = conn
                    else:
                        raise FrameError(
                            f"unexpected handshake frame {tag!r} from "
                            f"replacement worker {ww}"
                        )
                except BaseException:
                    conn.close()
                    raise
                pending -= 1
        finally:
            bootstrap.close()

        k = self.num_workers
        ctl = self._ctls[w]
        listen, dial = _channel_keys(self._cross, w)
        init = {
            "k": k,
            "num_microbatches": self._num_microbatches,
            "stage_shapes": self._stage_shapes,
            "stage_names": [list(s.names) for s in self.stages],
            "edges": self._edges,
            "resolver_spec": self.plan.resolver_spec(),
            "model_wire": self._model_wire,
            "granularity": self._granularity,
            "max_workers": self._max_workers,
            "fuse_waves": self.fuse_waves,
            "loss_pickle": self._loss_pickle if w == k - 1 else b"",
            "listen": {
                key: self._address(f"cr{r}_{key[0]}{key[1]}") for key in listen
            },
            "dial": dial,
            "pstate": (
                self.driver_workers[w].persistent_state()
                if self.driver_workers[w].has_persistent_state()
                else None
            ),
        }
        ctl.send_obj(("init", init), self._handshake_timeout)

        # Survivor rewires: each neighbor's spec covers exactly the channel
        # keys on edges it shares with w (every such key has one listener —
        # the receiver — so one fresh-address namespace covers the lot).
        adjacent = [(i, s, d) for (i, s, d) in self._cross if w in (s, d)]
        neighbors: dict[int, dict] = {}
        for u in range(k):
            if u == w:
                continue
            mine = [(i, s, d) for (i, s, d) in adjacent if u in (s, d)]
            if not mine:
                continue
            u_listen, u_dial = _channel_keys(mine, u)
            neighbors[u] = {
                "close": sorted(u_listen + u_dial),
                "listen": {
                    key: self._address(f"cr{r}_{key[0]}{key[1]}")
                    for key in u_listen
                },
                "dial": u_dial,
            }
        for u, spec in neighbors.items():
            self._ctls[u].send_obj(("rewire", spec), self._send_timeout)

        # Merge bound replies.  The replacement's arrives on its ctl (no
        # reader thread yet); survivors' are routed via _rewire_q — and a
        # survivor blocked mid-aborted-step only answers after that step's
        # deadline, so the wait window covers step deadline + handshake.
        addresses: dict[tuple[str, int], str] = {}
        msg = ctl.recv_obj(
            self.deadlock_timeout + self.done_grace + self._handshake_timeout
        )
        if msg[0] == "done" and msg[1][2] == "init_error":
            raise msg[1][6]
        if msg[0] != "bound":
            raise FrameError(
                f"expected bound from replacement worker {w}, got {msg[0]!r}"
            )
        addresses.update(msg[2])
        deadline = time.monotonic() + (
            self.deadlock_timeout + self.done_grace + self._handshake_timeout
        )
        got = 0
        while got < len(neighbors):
            try:
                msg = self._rewire_q.get(timeout=0.2)
            except queue.Empty:
                dead = self._proc_failure()
                if dead is not None:
                    raise WorkerLostError(dead, worker=self._lost_worker) from None
                if not self._procs[w].is_alive() and self._procs[w].exitcode != 0:
                    raise WorkerLostError(
                        f"replacement for worker {w} died mid-handshake "
                        f"(exit code {self._procs[w].exitcode})",
                        worker=w,
                    ) from None
                if time.monotonic() > deadline:
                    raise TransportTimeout(
                        "survivors did not rebind their channels in time"
                    ) from None
                continue
            addresses.update(msg[2])
            got += 1

        ctl.send_obj(("addresses", addresses), self._handshake_timeout)
        for u in neighbors:
            self._ctls[u].send_obj(("rewire_addresses", addresses), self._send_timeout)

        threading.Thread(
            target=self._reader,
            args=(w, ctl, registry),
            name=f"pipe-sock-reader-r{r}-{w}",
            daemon=True,
        ).start()
        deadline = time.monotonic() + (
            self.deadlock_timeout + self.done_grace + self._handshake_timeout
        )
        while True:
            try:
                ww, _, kind, _, _, _, payload = self._done.get(timeout=0.2)
            except queue.Empty:
                dead = self._proc_failure()
                if dead is not None:
                    raise WorkerLostError(dead, worker=self._lost_worker) from None
                if time.monotonic() > deadline:
                    raise TransportTimeout(
                        f"replacement for worker {w} never reported ready"
                    ) from None
                continue
            if kind == "init_error":
                raise payload
            if kind == "ready" and ww == w:
                break
            # anything else is residue from the aborted step — discard

        # The fresh mirror starts empty; survivors keep their windows, so
        # publish resolvable versions to the replacement alone.  Reseed
        # survivors' persistent state from the driver copies (which hold
        # only collected-step state) so the retried minibatch replays the
        # exact trajectory, matching generation-respawn semantics.
        self._publish_window(workers=(w,))
        for u in neighbors:
            compute = self.driver_workers[u]
            if compute.has_persistent_state():
                self._ctls[u].send_obj(
                    ("pstate", compute.persistent_state()), self._send_timeout
                )
        registry.transition(w, TaskState.READY)
        self._await_quiesce(r)

    def _await_quiesce(self, token: int) -> None:
        """Fence every worker's serve loop before the caller may retry.

        The rewire handshake only synchronizes the dead worker's mesh
        *neighbors*; a survivor elsewhere in the pipeline can still be
        blocked inside an aborted step — or, with the overlapped boundary,
        still hold a queued step command issued before the loss.  Such a
        straggler waits on channel recvs for a *stale* step tag, and the
        tag-discard rule would make it consume and drop the retried step's
        payloads, starving the whole pipeline.  (Generation respawn never
        faces this: teardown kills every straggler.)

        A ``fence`` ping rides the FIFO control channel behind everything
        already queued, so the ``fenced`` reply proves the worker is back
        in its serve loop with no step commands outstanding.  Each queued
        zombie step can burn a full deadlock window before aborting, so
        the deadline scales with the in-flight count."""
        for conn in self._ctls:
            conn.send_obj(("fence", token), self._send_timeout)
        waiting = set(range(self.num_workers))
        deadline = time.monotonic() + (
            self.deadlock_timeout * (len(self._issued) + 1)
            + self.done_grace
            + self._handshake_timeout
        )
        while waiting:
            try:
                _, ww, tok = self._fence_q.get(timeout=0.2)
            except queue.Empty:
                dead = self._proc_failure()
                if dead is not None:
                    raise WorkerLostError(dead, worker=self._lost_worker) from None
                if time.monotonic() > deadline:
                    raise TransportTimeout(
                        f"workers {sorted(waiting)} did not quiesce after a "
                        f"replacement"
                    ) from None
                continue
            if tok == token:
                waiting.discard(ww)
        self._drain_residue()

    def _teardown_workers(self) -> None:
        for conn in self._ctls:
            if conn is None:
                continue
            try:
                conn.send_obj(("shutdown",), 0.5)
            except TransportError:
                pass
        for conn in list(self._ctls) + list(self._weight_conns):
            if conn is not None:
                conn.close()
        self._ctls = []
        self._weight_conns = []
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
        self._procs = []

    def close(self) -> None:
        self._teardown_workers()
        if self._dir is not None:
            try:
                for name in os.listdir(self._dir):
                    try:
                        os.unlink(os.path.join(self._dir, name))
                    except OSError:
                        pass
                os.rmdir(self._dir)
            except OSError:
                pass
            self._dir = None


def _flatten(per_stage) -> tuple:
    """Per-stage array lists as the flat tuple a weight frame carries (the
    remote mirror regroups by the stage shape counts shipped in init)."""
    return tuple(arr for stage in per_stage for arr in stage)
