"""PipeMare Recompute — segment-level activation recomputation
(Appendix A.2 memory model, Appendix D delay model).

Stages are grouped into segments of S stages; each segment caches only its
input activations and recomputes the rest just-in-time for backward,
overlapped with normal pipeline work.  Memory drops from ``O(M·P²)`` to
``O(M·P^{3/2})`` at the optimal ``S = √P`` (eq. 10); GPipe's optimum is
``S = √N`` giving ``O(M·P·√N)`` (eq. 11, Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.delays import Method


def segment_heads(num_stages: int, segment_size: int) -> list[int]:
    """0-indexed first stage of each segment."""
    _check(num_stages, segment_size)
    return list(range(0, num_stages, segment_size))


def _check(num_stages: int, segment_size: int) -> None:
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if not 1 <= segment_size <= num_stages:
        raise ValueError(
            f"segment_size must be in [1, {num_stages}], got {segment_size}"
        )


def per_stage_activation_counts(
    num_stages: int,
    segment_size: int | None = None,
    num_microbatches: int | None = None,
    method: Method | str = Method.PIPEMARE,
) -> np.ndarray:
    """Number of cached microbatch activations per stage — the Figure 6
    bars (16 stages / 4 segments in the paper's example).

    Without recompute (``segment_size=None``) stage i caches one activation
    per microbatch in flight between its forward and backward:
    ``2(P−i)+1`` (1-indexed i).

    With recompute, the head of the segment starting at stage h caches its
    input for every in-flight microbatch (``2(P−h)+1``, or ``N`` for GPipe
    which drains at minibatch boundaries), and the j-th stage inside the
    segment holds ``2(S−j)−1`` recomputed activations (recompute of stage j
    starts ``2(S−j)`` slots before its gradient arrives).
    """
    method = Method(method)
    p = num_stages
    if segment_size is None:
        return np.array([2 * (p - i) + 1 for i in range(1, p + 1)], dtype=float)
    _check(p, segment_size)
    s = segment_size
    counts = np.zeros(p)
    for h in segment_heads(p, s):
        seg = range(h, min(h + s, p))
        seg_len = len(seg)
        for j, stage in enumerate(seg):
            counts[stage] = 2 * (seg_len - j) - 1
        if method is Method.GPIPE:
            if num_microbatches is None:
                raise ValueError("GPipe recompute accounting needs num_microbatches")
            counts[h] += num_microbatches
        else:
            counts[h] += 2 * (p - (h + 1)) + 1
    return counts


def total_activation_memory(
    num_stages: int,
    activation_per_microbatch: float = 1.0,
    segment_size: int | None = None,
    num_microbatches: int | None = None,
    method: Method | str = Method.PIPEMARE,
) -> float:
    """Total activation memory in units of one microbatch-activation ``M``.

    GPipe without recompute caches every layer for the whole minibatch:
    ``M·N·P`` (Table 4, P=L).  All other cases sum the per-stage counts.
    """
    method = Method(method)
    if method is Method.GPIPE and segment_size is None:
        if num_microbatches is None:
            raise ValueError("GPipe accounting needs num_microbatches")
        return activation_per_microbatch * num_microbatches * num_stages
    counts = per_stage_activation_counts(
        num_stages, segment_size, num_microbatches, method
    )
    return activation_per_microbatch * float(counts.sum())


def optimal_segment_size(num_stages: int, method: Method | str = Method.PIPEMARE,
                         num_microbatches: int | None = None) -> int:
    """``S = √P`` for PipeMare/PipeDream (eq. 10); ``S = √N`` for GPipe
    (eq. 11), rounded to the nearest feasible integer."""
    method = Method(method)
    if method is Method.GPIPE:
        if num_microbatches is None:
            raise ValueError("GPipe optimum needs num_microbatches")
        s = int(round(np.sqrt(num_microbatches)))
    else:
        s = int(round(np.sqrt(num_stages)))
    return min(max(1, s), num_stages)


def recompute_savings_ratio(num_stages: int) -> float:
    """Asymptotic Table 5 ratio ``M·P^{3/2} / M·P² = 1/√P`` — the paper
    reports 0.097 / 0.104 / 0.105 for P = 107 / 93 / 91."""
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    return 1.0 / np.sqrt(num_stages)


def table4_asymptotics(num_stages: int, num_microbatches: int) -> dict[str, float]:
    """Table 4's four asymptotic activation-memory entries, in units of
    ``M`` and assuming P = L."""
    p, n = num_stages, num_microbatches
    return {
        "gpipe": p * n,
        "gpipe_recompute": p * np.sqrt(n),
        "pipemare": p**2,
        "pipemare_recompute": p**1.5,
    }


def recompute_delay_slots(num_stages: int, segment_size: int) -> np.ndarray:
    """Microbatch-slot lag between the *recompute* read of stage i's weights
    and its backward: stage j (0-indexed) inside a segment recomputes
    ``2(S−j)`` slots before its gradient arrives, so its recompute weights
    are ``2(S−j)`` slots older than its backward weights.

    Segment heads use their originally cached input, so their activations
    carry the full forward delay (handled separately by the executor).
    """
    _check(num_stages, segment_size)
    lags = np.zeros(num_stages, dtype=int)
    for h in segment_heads(num_stages, segment_size):
        seg = range(h, min(h + segment_size, num_stages))
        seg_len = len(seg)
        for j, stage in enumerate(seg):
            lags[stage] = 2 * (seg_len - j)
    return lags
