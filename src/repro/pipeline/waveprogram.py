"""Compile the per-worker wave schedule into fused command blocks.

The concurrent runtimes all execute the same static per-step schedule: each
worker runs a fixed ``[(op, microbatch), ...]`` program (see
:func:`repro.pipeline.schedule.stage_programs`) whose shape never changes
between minibatches.  Historically the scheduler still paid a per-*wave*
hand-off — the interpreter re-derived the version gate and re-pointed the
stage weights for every single wave even though both are pure functions of
the minibatch index ``t`` with compile-time-constant structure.  PipeDream
(Harlap et al.) and XPipe (Guan et al.) compile such static schedules into
per-worker work queues ahead of time; PipeMare's fixed delay profile makes
the same move exact here.

This module performs that compilation once per (method, sync-flag):

* Every wave's **version gate** is an affine function of the minibatch
  index: ``gate_version(t) = max(0, t - d)`` for a compile-time constant
  delay ``d`` (all delay-profile formulas have the form
  ``max(0, ceil((t·n + c) / n)) = max(0, t + ceil(c / n))``).  The delay is
  recovered by evaluating the resolver at a reference minibatch and
  *verified exhaustively* over ``t = 0 .. horizon`` — a non-affine gate
  raises :class:`WaveCompileError` instead of miscompiling.
* Adjacent same-worker waves are **fused into blocks**: a block boundary is
  forced only where a wave's gate requires a *newer* version than the block
  entry gate (a "rising gate" — gating it at block entry would wait on a
  version the entry gate does not), or where a cross-worker input's
  producing wave is gated newer than the block entry (so the producer may
  not even be admitted when this block starts).  Plain cross-worker data
  edges do **not** break blocks: channel receives block FIFO-style inside
  the wave, so dataflow order is preserved exactly as in the unfused path.
* Within a block, consecutive waves whose weight reads resolve to the same
  store versions skip the redundant ``load_weights`` re-pointing (the
  **load signature** below); gating, arena pinning
  (``begin_wave``/``release_wave``), dropout slots and cache snapshots stay
  per-wave, so trajectories remain bit-for-bit identical to the simulator.

The optimizer boundary never needs an explicit rule: programs are compiled
per step (and per sync flag), so no block can span two minibatches.

:func:`compile_wave_programs` is the entry point; the runtime calls it via
:meth:`repro.pipeline.plan.WeightResolver.wave_programs` so process/socket
workers compile the identical programs from their
:class:`~repro.pipeline.plan.WorkerPlanMirror`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.delays import Method


class WaveCompileError(RuntimeError):
    """A wave's gate or load version did not match the affine model
    ``max(0, t - d)`` — compilation refuses to guess rather than emit a
    program that could diverge from the per-wave reference path."""


@dataclass(frozen=True)
class WaveInfo:
    """One wave of a worker program, annotated for fusion.

    ``gate_delay`` ``d`` encodes the version gate ``max(0, t - d)``
    (``None`` = ungated: the worker reads no stage weights).  ``load_sig``
    is a hashable signature such that equal signatures on the same worker
    within one step imply bit-identical weight loads; ``None`` means "never
    skip".  ``producer_gate_delay`` is the tightest (smallest) gate delay
    among the cross-worker waves producing this wave's inputs, or ``None``
    when every input is local/external.
    """

    op: str
    j: int
    gate_delay: int | None
    load_sig: tuple | None
    producer_gate_delay: int | None = None


@dataclass(frozen=True)
class WaveBlock:
    """A maximal fusable run of waves: one scheduler command, one done
    report.  ``ops`` is the ``(op, microbatch)`` slice of the worker
    program; ``loads[i]`` is False where wave ``i`` may reuse the weights
    the previous wave in the block already loaded."""

    ops: tuple[tuple[str, int], ...]
    gate_delay: int | None
    loads: tuple[bool, ...]


@dataclass(frozen=True)
class WaveProgram:
    """One worker's step program compiled into fused blocks."""

    blocks: tuple[WaveBlock, ...]
    num_waves: int
    num_forwards: int

    @property
    def num_commands(self) -> int:
        return len(self.blocks)


def _affine_delay(fn, horizon: int, what: str) -> int:
    """Recover ``d`` with ``fn(t) == max(0, t - d)`` for all ``t >= 0``.

    ``d`` is read off at the reference minibatch ``horizon`` (chosen past
    every clamp region of the delay formulas), the unit slope is checked one
    step further, and the closed form is verified exhaustively over
    ``t = 0 .. horizon``.  Any mismatch raises :class:`WaveCompileError`.
    """
    ref = fn(horizon)
    d = horizon - ref
    if fn(horizon + 1) - ref != 1:
        raise WaveCompileError(
            f"{what}: version is not affine in t near the reference "
            f"minibatch (slope != 1 at t={horizon})"
        )
    for t in range(horizon + 1):
        if fn(t) != max(0, t - d):
            raise WaveCompileError(
                f"{what}: version at t={t} is {fn(t)}, affine model "
                f"max(0, t - {d}) predicts {max(0, t - d)}"
            )
    return d


def _load_version(resolver, op: str, stage: int, t: int, j: int, sync: bool) -> int:
    """The store version whose arrays ``load_weights`` re-points stage
    ``stage`` at for this wave — mirrors ``forward_weights`` /
    ``backward_weights`` / ``recompute_weights`` without touching the
    store."""
    if op == "F":
        if sync:
            return t
        return resolver.profile.fwd_version(stage, t, j)
    if op == "B":
        if not sync and resolver.method is Method.PIPEDREAM:
            return resolver.profile.bkwd_version(stage, t, j)
        return t
    # op == "R": heads reuse the forward version, which _recompute_version
    # already returns; the T2 extrapolation on non-heads adds a per-stage
    # term that is constant within a step (velocities advance only at the
    # boundary), so the base version alone determines the loaded arrays.
    return resolver._recompute_version(stage, t, j)


def _load_sig(
    resolver, op: str, stages, j: int, sync: bool, horizon: int
) -> tuple | None:
    """Hashable signature of a wave's weight load: equal signatures on the
    same worker within one step imply every stage resolves to the same
    version (hence the identical array objects) — the condition under which
    the repeated ``load_weights`` is a no-op and may be skipped.  The
    per-stage affine delays are compared rather than versions at one ``t``
    so a clamp coincidence at small ``t`` can never merge genuinely
    different loads (the conservative direction: distinct delays whose
    clamped versions coincide merely cost an extra reload)."""
    try:
        delays = tuple(
            _affine_delay(
                lambda t, s=s: _load_version(resolver, op, s, t, j, sync),
                horizon,
                f"load version (op={op}, stage={s}, j={j})",
            )
            for s in stages
        )
    except WaveCompileError:
        return None
    return (op, delays)


def compile_blocks(infos: list[WaveInfo], fuse: bool = True) -> tuple[WaveBlock, ...]:
    """Group a worker's annotated waves into maximal fused blocks.

    A new block starts at wave ``i`` when fusion is off, at the first wave,
    where the wave's own gate is *newer* than the running block's entry
    gate (smaller delay ⇒ larger required version — the entry gate would
    admit the block before this wave may run), or where a cross-worker
    producer of the wave is gated newer than the entry gate (the producing
    peer might not be admitted yet; on the real linear-chain schedules this
    rule never fires because upstream stages always gate at least as old,
    but it keeps compilation safe for arbitrary inputs).  With fusion off
    every wave becomes its own singleton block — the differential
    reference, byte-identical in behaviour to the historical per-wave
    scheduler loop.
    """
    blocks: list[WaveBlock] = []
    ops: list[tuple[str, int]] = []
    loads: list[bool] = []
    entry_delay: int | None = None
    prev_sig: tuple | None = None

    def flush() -> None:
        nonlocal ops, loads
        if ops:
            blocks.append(WaveBlock(tuple(ops), entry_delay, tuple(loads)))
            ops, loads = [], []

    for info in infos:
        newer_gate = info.gate_delay is not None and (
            entry_delay is None or info.gate_delay < entry_delay
        )
        newer_producer = info.producer_gate_delay is not None and (
            entry_delay is None or info.producer_gate_delay < entry_delay
        )
        if not fuse or not ops or newer_gate or newer_producer:
            flush()
            entry_delay = info.gate_delay
            prev_sig = None
        ops.append((info.op, info.j))
        loads.append(prev_sig is None or info.load_sig is None or info.load_sig != prev_sig)
        prev_sig = info.load_sig
    flush()
    return tuple(blocks)


def compile_wave_programs(
    resolver,
    programs: list[list[tuple[str, int]]],
    read_stages: list[list[int]],
    fwd_peers: list[list[int]],
    bwd_peers: list[list[int]],
    sync: bool,
    fuse: bool = True,
) -> list[WaveProgram]:
    """Compile every worker's ``(op, microbatch)`` program for one sync
    flag into a :class:`WaveProgram`.

    ``read_stages[w]`` lists the stages worker ``w``'s weight loads touch
    (owned plus borrowed tied stages — exactly the gate stages of the
    per-wave path); ``fwd_peers[w]`` / ``bwd_peers[w]`` list the workers
    producing ``w``'s cross-worker forward/backward inputs, used for the
    producer boundary rule.  The resolver may be the driver's
    :class:`~repro.pipeline.plan.StepPlan` or a worker's
    :class:`~repro.pipeline.plan.WorkerPlanMirror` — both expose the same
    store-free version arithmetic, so driver and workers compile identical
    programs.
    """
    horizon = 4 * resolver.num_stages + resolver.num_microbatches + 8
    gate_delays: list[dict[tuple[str, int], int | None]] = []
    for w, program in enumerate(programs):
        delays: dict[tuple[str, int], int | None] = {}
        for op, j in program:
            if not read_stages[w]:
                delays[(op, j)] = None
            else:
                delays[(op, j)] = _affine_delay(
                    lambda t, _op=op, _j=j, _w=w: resolver.wave_gate_version(
                        _op, read_stages[_w], t, _j, sync
                    ),
                    horizon,
                    f"gate version (worker={w}, op={op}, j={j})",
                )
        gate_delays.append(delays)

    compiled: list[WaveProgram] = []
    for w, program in enumerate(programs):
        infos: list[WaveInfo] = []
        for op, j in program:
            peers = bwd_peers[w] if op == "B" else fwd_peers[w]
            producer: int | None = None
            for p in peers:
                pd = gate_delays[p].get((op, j))
                if pd is not None and (producer is None or pd < producer):
                    producer = pd
            infos.append(
                WaveInfo(
                    op=op,
                    j=j,
                    gate_delay=gate_delays[w][(op, j)],
                    load_sig=_load_sig(resolver, op, read_stages[w], j, sync, horizon),
                    producer_gate_delay=producer,
                )
            )
        compiled.append(
            WaveProgram(
                blocks=compile_blocks(infos, fuse),
                num_waves=len(program),
                num_forwards=sum(1 for op, _ in program if op == "F"),
            )
        )
    return compiled
