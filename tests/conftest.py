"""Shared fixtures.

Seeding policy
--------------
Every test that draws randomness must route it through the canonical ``rng``
fixture (or a stream spawned from it, like ``rng2``) — never through the
legacy ``numpy.random`` global state or ad-hoc module-level generators.
Each test gets a *fresh* generator, so no test can perturb another's stream
(cross-test seed bleed), and the ``_isolate_global_rng`` autouse fixture
restores ``numpy.random``'s global state after every test so even code that
does touch the legacy API cannot leak between tests.

Explicit model-init seeds inside tests (``np.random.default_rng(7)``) are
fine: they are self-contained, not shared state.

Timeouts
--------
``@pytest.mark.timeout(seconds)`` is honored even without the
``pytest-timeout`` plugin: when the plugin is absent, a SIGALRM-based
fallback aborts the test with ``Failed`` instead of letting a deadlocked
queue hang CI forever.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from helpers import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """The canonical per-test random stream (seed 0, PCG64)."""
    return make_rng(0)


@pytest.fixture
def rng2(rng) -> np.random.Generator:
    """A second, independent stream derived from the canonical fixture
    (used e.g. to pick which entries a gradcheck samples)."""
    return rng.spawn(1)[0]


@pytest.fixture(autouse=True)
def _isolate_global_rng():
    """Snapshot/restore ``numpy.random``'s legacy global state around every
    test, so nothing can bleed seeds across tests through the global RNG."""
    state = np.random.get_state()
    yield
    np.random.set_state(state)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(enforced via SIGALRM when pytest-timeout is not installed)",
    )
    config.addinivalue_line(
        "markers",
        "overlap: overlapped-optimizer-boundary suites (two steps in flight"
        " per pool); CI runs them as a dedicated lane with a tightened"
        " timeout so a version-gating bug surfaces as a timeout, not a hang",
    )
    config.addinivalue_line(
        "markers",
        "hybrid: hybrid data × pipeline parallelism suites (replica groups"
        " sharing one version clock); CI runs them as a dedicated lane with"
        " a tightened timeout so a replica-lockstep bug surfaces as a"
        " timeout, not a hang",
    )
    config.addinivalue_line(
        "markers",
        "net: socket-transport suites (wire framing, the socket runtime's"
        " differential grid, and fault injection across all backends); CI"
        " runs them as a dedicated lane with a tightened timeout so a lost"
        " frame or a broken failure path surfaces as a timeout, not a hang",
    )
    config.addinivalue_line(
        "markers",
        "chaos: seeded chaos soaks (random kills/drops/delays against the"
        " elastic-recovery stack); CI runs them as a dedicated lane with a"
        " tight timeout and uploads the per-seed fault logs from"
        " $CHAOS_LOG_DIR as artifacts when the lane fails",
    )


@pytest.fixture(autouse=True)
def _enforce_timeout_marker(request):
    """Fallback enforcement of ``@pytest.mark.timeout`` without the plugin."""
    marker = request.node.get_closest_marker("timeout")
    if (
        marker is None
        or not marker.args
        or request.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = float(marker.args[0])

    def _alarm(signum, frame):
        raise pytest.fail.Exception(f"test exceeded timeout of {seconds:g}s")

    old = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)
