"""Smoke and behavior tests for :mod:`repro.cli`.

Each command is exercised through :func:`repro.cli.main` with CPU-cheap
arguments, asserting on exit codes and the shape of the printed artifact
(not exact numbers — those belong to the benchmark suite).
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.cli._command import make_workload
from repro.cli.train_cmd import parse_techniques


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestParser:
    def test_no_command_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "command" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_every_command_registered_once(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.dest == "command"
        )
        names = list(sub.choices)
        assert len(names) == len(set(names))
        assert {"info", "delays", "theory", "train", "table2", "table3"} <= set(names)


class TestInfo:
    def test_lists_every_paper_artifact(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        for artifact in ("Table 1", "Table 2", "Table 3", "Figure 3b", "Lemmas 1-3"):
            assert artifact in out


class TestDelays:
    def test_table1_rows_for_all_methods(self, capsys):
        code, out = run_cli(capsys, "delays", "-p", "8", "-n", "4")
        assert code == 0
        for m in ("gpipe", "pipedream", "pipemare"):
            assert m in out

    def test_first_stage_delay_value(self, capsys):
        # τ_fwd = (2(P-1)+1)/N = 15/4 = 3.75 for P=8, N=4, stage 1
        _, out = run_cli(capsys, "delays", "-p", "8", "-n", "4")
        assert "3.750" in out

    def test_per_stage_table(self, capsys):
        code, out = run_cli(capsys, "delays", "-p", "4", "-n", "2", "--per-stage")
        assert code == 0
        assert "per-stage delays" in out
        # last stage: (2(P-P)+1)/N = 0.5
        assert "0.500" in out

    def test_invalid_shape_rejected(self, capsys):
        code, _ = run_cli(capsys, "delays", "-p", "0")
        assert code == 2


class TestTheory:
    def test_lemma1_threshold_matches_closed_form(self, capsys):
        code, out = run_cli(capsys, "theory", "--tau", "10")
        assert code == 0
        assert "0.14946" in out  # (2/1)sin(pi/42)

    def test_momentum_and_discrepancy_rows(self, capsys):
        code, out = run_cli(
            capsys, "theory", "--tau", "10", "--tau-bkwd", "6",
            "--delta", "5", "--beta", "0.9", "--decay", "0.135",
        )
        assert code == 0
        assert "Lemma 3" in out
        assert "Lemma 2" in out
        assert "T2-corrected" in out

    def test_t2_enlarges_stable_range(self, capsys):
        # Figure 5(b): with Δ>0 the corrected threshold beats uncorrected.
        _, out = run_cli(
            capsys, "theory", "--tau", "10", "--tau-bkwd", "6",
            "--delta", "5", "--decay", "0.135",
        )
        lines = [l for l in out.splitlines() if l.startswith(("Lemma 2", "T2-corrected"))]
        uncorrected = float(lines[0].split()[-1])
        corrected = float(lines[1].split()[-1])
        assert corrected > uncorrected

    def test_invalid_tau_rejected(self, capsys):
        code, _ = run_cli(capsys, "theory", "--tau", "0")
        assert code == 2

    def test_invalid_lam_rejected(self, capsys):
        code, _ = run_cli(capsys, "theory", "--tau", "5", "--lam", "-1")
        assert code == 2


class TestQuadratic:
    def test_divergence_labelled(self, capsys):
        # α=1.0 at τ=10 has spectral radius ≈1.14: hits the divergence cap
        # within ~600 steps, so the series is labelled as diverged.
        code, out = run_cli(
            capsys, "quadratic", "--taus", "0", "10", "--alpha", "1.0",
            "--steps", "700",
        )
        assert code == 0
        assert "τ=10 (diverged)" in out
        assert "τ=0" in out

    def test_discrepancy_mode(self, capsys):
        code, out = run_cli(
            capsys, "quadratic", "--taus", "6", "10", "--alpha", "0.05",
            "--delta", "5", "--steps", "100",
        )
        assert code == 0
        assert "Figure 5(a)" in out
        assert "τb=6" in out

    def test_bad_alpha_rejected(self, capsys):
        code, _ = run_cli(capsys, "quadratic", "--alpha", "-1")
        assert code == 2


class TestHeatmap:
    def test_small_grid_renders_with_boundary(self, capsys):
        code, out = run_cli(
            capsys, "heatmap", "--steps", "60", "--alpha-range", "-6", "-2",
            "--tau-max-pow", "2",
        )
        assert code == 0
        assert "Figure 3(b)" in out
        assert "Lemma 1 boundary" in out
        assert "τ=16" in out

    def test_bad_range_rejected(self, capsys):
        code, _ = run_cli(capsys, "heatmap", "--alpha-range", "-2", "-6")
        assert code == 2


class TestTrainCmd:
    def test_short_pipemare_run(self, capsys):
        code, out = run_cli(
            capsys, "train", "--workload", "cifar", "--epochs", "1",
            "--techniques", "t1,t2", "--stages", "6",
        )
        assert code == 0
        assert "best test_accuracy" in out

    def test_plot_flag(self, capsys):
        code, out = run_cli(
            capsys, "train", "--workload", "cifar", "--epochs", "1",
            "--stages", "6", "--plot",
        )
        assert code == 0
        assert "epoch" in out

    def test_gpipe_ignores_techniques(self, capsys):
        code, out = run_cli(
            capsys, "train", "--workload", "cifar", "--epochs", "1",
            "--method", "gpipe", "--stages", "6",
        )
        assert code == 0
        assert "config=synchronous" in out

    def test_unknown_technique_rejected(self, capsys):
        code, out = run_cli(
            capsys, "train", "--techniques", "t9", "--epochs", "1",
        )
        assert code == 2
        assert "unknown technique" in out

    def test_granularity_and_partition_flags(self, capsys):
        code, out = run_cli(
            capsys, "train", "--workload", "cifar", "--epochs", "1",
            "--stages", "6", "--runtime", "async",
            "--granularity", "sublayer", "--partition", "auto",
        )
        assert code == 0
        assert "granularity=sublayer" in out
        assert "partition=auto" in out
        assert "best test_accuracy" in out


class TestInfoPartitionTable:
    def test_partition_table_renders(self, capsys):
        code, out = run_cli(
            capsys, "info", "--partition-table", "--workload", "iwslt",
            "--stages", "12", "--granularity", "sublayer",
            "--partition", "auto",
        )
        assert code == 0
        assert "granularity=sublayer" in out
        assert "cost share" in out
        assert "imbalance" in out
        # sublayer slicing: more workers than encoder+decoder layers
        workers = int(out.split("workers=")[1].split()[0])
        assert workers > 4

    def test_stages_flag_implies_table(self, capsys):
        code, out = run_cli(capsys, "info", "--workload", "cifar", "--stages", "4")
        assert code == 0
        assert "partition: workload=cifar" in out

    def test_too_many_stages_unified_error(self, capsys):
        with pytest.raises(ValueError, match="cannot split ResNet into 999"):
            run_cli(capsys, "info", "--workload", "cifar", "--stages", "999")


class TestParseTechniques:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_workload("cifar")

    def test_none_is_naive_async(self, workload):
        cfg = parse_techniques("none", workload, 0)
        assert not (cfg.use_t1 or cfg.use_t2 or cfg.use_t3)

    def test_t3_sets_warmup_steps(self, workload):
        cfg = parse_techniques("t1,t2,t3", workload, 2)
        assert cfg.use_t3
        assert cfg.warmup_steps == 2 * workload.steps_per_epoch

    def test_none_with_others_rejected(self, workload):
        with pytest.raises(ValueError):
            parse_techniques("none,t1", workload, 0)

    def test_whitespace_tolerated(self, workload):
        cfg = parse_techniques(" t1 , t2 ", workload, 0)
        assert cfg.use_t1 and cfg.use_t2


class TestSweep:
    def test_analytic_sweep_fast(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--analytic-only", "--stage-counts", "4", "8",
            "--plot",
        )
        assert code == 0
        assert "Figure 2/15" in out
        assert "throughput vs stage count" in out


class TestRecompute:
    def test_tables_and_asymptotics(self, capsys):
        code, out = run_cli(capsys, "recompute", "-p", "16", "-n", "4")
        assert code == 0
        assert "Tables 4/5" in out
        assert "asymptotics" in out

    def test_figure6_bars(self, capsys):
        code, out = run_cli(
            capsys, "recompute", "-p", "16", "-n", "4", "--stages-detail",
        )
        assert code == 0
        assert "Figure 6" in out
        assert "stage 15" in out

    def test_bad_segment_rejected(self, capsys):
        code, _ = run_cli(capsys, "recompute", "-p", "8", "--segment", "99")
        assert code == 2


class TestTables:
    def test_table3_one_epoch(self, capsys):
        code, out = run_cli(
            capsys, "table3", "--workload", "cifar", "--epochs", "1",
            "--stages", "6", "--curves",
        )
        assert code == 0
        assert "Table 3" in out
        assert "t1+t2" in out
        assert "eval-metric curves" in out


class TestSchedule:
    def test_three_panels_with_bubble_fractions(self, capsys):
        code, out = run_cli(capsys, "schedule", "-p", "4", "-n", "3")
        assert code == 0
        for marker in ("(a) Throughput-poor", "(b) Memory-hungry", "(c) PipeMare"):
            assert marker in out
        assert out.count("bubble fraction") == 3

    def test_gpipe_has_bubbles_others_do_not(self, capsys):
        _, out = run_cli(
            capsys, "schedule", "-p", "4", "-n", "3", "--minibatches", "8",
        )
        fracs = [
            float(line.split()[2])
            for line in out.splitlines()
            if line.startswith("bubble fraction")
        ]
        gpipe, pipedream, pipemare = fracs
        assert gpipe > pipedream
        assert pipedream == pipemare  # same 1F1B occupancy, different memory

    def test_memory_column_shows_stash(self, capsys):
        _, out = run_cli(capsys, "schedule", "-p", "4", "-n", "2")
        # PipeDream: 1 + P/N = 3x; the other two stay at 1x
        assert "weight copies: 3.00x" in out
        assert out.count("weight copies: 1.00x") == 2

    def test_invalid_shape_rejected(self, capsys):
        code, _ = run_cli(capsys, "schedule", "-p", "0")
        assert code == 2
