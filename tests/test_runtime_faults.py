"""Fault-injection suite: every failure path the driver claims to handle,
triggered deterministically through the ``_channel_hook`` seam (see
``faultutils``) and asserted end to end — typed errors, no hangs, weights
restored to the latest published version, and (where the contract says so)
bit-exact continuation against the simulator.

The matrix, by backend:

* **delay** must be absorbed bit-exactly everywhere — slow links change
  nothing about the trajectory;
* **drop** starves the peer into its channel timeout: a typed
  ``PipelineDeadlockError``, a *non*-wedged pool (every worker reported),
  and bit-exact continuation;
* **dup** (stale step tag) must be discarded by ring and socket channels;
* **disconnect** (socket) surfaces as ``WorkerLostError``;
* **die** kills the worker mid-step at exact coordinates: thread workers
  raise, process workers wedge the pool, socket workers surface
  ``WorkerLostError`` — and with restart budget the socket pool respawns
  the worker set and retries the minibatch bit-exactly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from faultutils import FaultInjected, FaultRule, FaultSpec
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineDeadlockError,
    PipelineExecutor,
    RuntimeWedgedError,
    TaskState,
    WorkerLostError,
    WorkerRegistry,
    partition_model,
)
from repro.pipeline import runtime as runtime_mod
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.registry import Backoff

pytestmark = pytest.mark.net

TIMEOUT = 15.0
BACKENDS = ["thread", "process", "socket"]


def toy_data(rng, n=96):
    centers = rng.normal(size=(3, 6)) * 2
    y = rng.integers(0, 3, size=n)
    x = centers[y] + rng.normal(size=(n, 6))
    return x, y


def build(backend, seed=7, **kw):
    model = MLP([6, 8, 8, 8, 3], np.random.default_rng(seed))
    stages = partition_model(model, 4)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    if backend == "simulator":
        ex = PipelineExecutor(
            model, CrossEntropyLoss(), opt, stages, 2, "pipemare", **kw
        )
    else:
        ex = AsyncPipelineRuntime(
            model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
            backend=backend, **kw
        )
    return model, ex


def install(monkeypatch, rules):
    """Install a fault spec on the channel hook; with the fork start
    method the workers of any pool built afterwards inherit it."""
    spec = FaultSpec(rules)
    monkeypatch.setattr(runtime_mod, "_channel_hook", spec.wrap)
    return spec


def assert_weights_restored(rt):
    for s, stage in enumerate(rt.stages):
        for p, stored in zip(
            stage.params, rt.store.weights(s, rt.store.latest_version)
        ):
            assert p.data is stored, (
                f"stage {s}: Parameter.data aliases a historical version "
                f"after an injected fault"
            )


class TestDelay:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delayed_sends_are_bit_exact(self, rng, monkeypatch, backend):
        """A slow link reorders nothing the schedule depends on: delaying
        one activation and one gradient send leaves the whole trajectory
        bit-identical to the simulator's."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="delay", worker=1, kind="act", step=2),
            FaultRule(op="send", action="delay", worker=2, kind="grad", step=3),
        ])
        m1, ex = build("simulator")
        m2, rt = build(backend, deadlock_timeout=TIMEOUT)
        with rt:
            for i in range(4):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestDrop:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dropped_payload_deadlocks_then_recovers(
        self, rng, monkeypatch, backend
    ):
        """A swallowed activation starves the consumer into its channel
        timeout: the step fails with a typed PipelineDeadlockError, the
        pool is NOT wedged (every worker reported), weights are restored,
        and the runtime continues bit-identically to the simulator."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="drop", worker=1, kind="act", step=2),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            backend, deadlock_timeout=1.0, done_grace=5.0,
            overlap_boundary=False,
        )
        with rt:
            assert ex.train_step(x[:16], y[:16]) == rt.train_step(x[:16], y[:16])
            with pytest.raises(PipelineDeadlockError):
                rt.train_step(x[16:32], y[16:32])  # the dropped batch
            assert not rt.pool.wedged
            assert_weights_restored(rt)
            for i in range(2, 4):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])


class TestDuplicate:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_stale_tagged_duplicate_is_discarded(self, rng, monkeypatch, backend):
        """A duplicated message with a stale step tag must be dropped by
        the receiver's tag filter, leaving the trajectory bit-exact.
        (Thread queues carry no tags; the dup action is tag-based.)"""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="dup", worker=0, kind="act", step=2),
            FaultRule(op="send", action="dup", worker=3, kind="grad", step=3),
        ])
        m1, ex = build("simulator")
        m2, rt = build(backend, deadlock_timeout=TIMEOUT)
        with rt:
            for i in range(4):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestDisconnect:
    @pytest.mark.timeout(120)
    def test_severed_channel_raises_worker_lost(self, rng, monkeypatch):
        """Cutting one socket channel mid-step surfaces as a typed
        WorkerLostError, wedges the (budget-less) pool, and restores the
        latest weights."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="disconnect", worker=1, kind="act", step=2),
        ])
        m, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False,
        )
        with rt:
            rt.train_step(x[:16], y[:16])
            with pytest.raises(WorkerLostError):
                rt.train_step(x[16:32], y[16:32])
            assert rt.pool.wedged
            assert_weights_restored(rt)
            with pytest.raises(RuntimeWedgedError, match="wedged"):
                rt.train_step(x[:16], y[:16])

    @pytest.mark.timeout(120)
    def test_severed_channel_respawns_with_budget(self, rng, monkeypatch):
        """With restart budget the pool replaces the worker set after a
        severed channel and the retried minibatch continues the exact
        simulator trajectory."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="disconnect", worker=1, kind="act", step=2),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False, net_options={"max_restarts": 1},
        )
        with rt:
            assert ex.train_step(x[:16], y[:16]) == rt.train_step(x[:16], y[:16])
            with pytest.raises(WorkerLostError):
                rt.train_step(x[16:32], y[16:32])
            assert not rt.pool.wedged
            # Requeue: the same minibatch retries on the fresh worker set.
            for i in range(1, 4):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestKill:
    @pytest.mark.timeout(120)
    def test_thread_worker_death_raises_and_recovers(self, rng, monkeypatch):
        """A thread worker cannot be SIGKILLed; the die action raises in
        the worker and must surface through the error path with weights
        restored and bit-exact continuation."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=2),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            "thread", deadlock_timeout=1.0, done_grace=5.0,
            overlap_boundary=False,
        )
        with rt:
            assert ex.train_step(x[:16], y[:16]) == rt.train_step(x[:16], y[:16])
            with pytest.raises(FaultInjected):
                rt.train_step(x[16:32], y[16:32])
            assert_weights_restored(rt)
            for i in range(2, 4):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])

    @pytest.mark.timeout(120)
    def test_process_worker_death_wedges_and_close_is_fast(
        self, rng, monkeypatch
    ):
        """The shared-memory pool has no respawn story: a worker killed at
        exact mid-step coordinates wedges the pool with a deadlock error,
        and close() must still join promptly."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=2),
        ])
        m, rt = build(
            "process", deadlock_timeout=1.0, done_grace=2.0,
            overlap_boundary=False,
        )
        rt.train_step(x[:16], y[:16])
        with pytest.raises(PipelineDeadlockError):
            rt.train_step(x[16:32], y[16:32])
        assert rt.pool.wedged
        assert_weights_restored(rt)
        t0 = time.perf_counter()
        rt.close()
        assert time.perf_counter() - t0 < 10.0, "close() hung after a kill"

    @pytest.mark.timeout(120)
    def test_socket_worker_death_is_typed_and_wedges_without_budget(
        self, rng, monkeypatch
    ):
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=2, kind="act", step=2),
        ])
        m, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False,
        )
        with rt:
            rt.train_step(x[:16], y[:16])
            with pytest.raises(WorkerLostError) as exc_info:
                rt.train_step(x[16:32], y[16:32])
            assert exc_info.value.worker == 2
            assert rt.pool.wedged
            assert rt.pool.registry[2].state is TaskState.LOST
            assert_weights_restored(rt)
            with pytest.raises(RuntimeWedgedError, match="wedged"):
                rt.train_step(x[:16], y[:16])

    @pytest.mark.timeout(180)
    def test_socket_worker_death_respawns_and_retries_bit_exact(
        self, rng, monkeypatch
    ):
        """The acceptance scenario: kill a socket worker mid-step, the pool
        respawns the worker set, the driver retries the lost minibatch, and
        the whole trajectory stays bit-identical to the simulator."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=3),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False, net_options={"max_restarts": 1},
        )
        with rt:
            losses = []
            i = 0
            while i < 5:
                b = slice(i * 16, (i + 1) * 16)
                try:
                    losses.append(rt.train_step(x[b], y[b]))
                except WorkerLostError:
                    continue  # retry the same minibatch on the fresh set
                assert losses[-1] == ex.train_step(x[b], y[b])
                i += 1
            assert rt.pool.registry.states() != [TaskState.LOST] * 4
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(180)
    def test_overlap_kill_drains_both_inflight_steps(self, rng, monkeypatch):
        """With two steps in flight, killing a worker must drain BOTH —
        the failing step and the one behind it — with no hang: the driver
        fails fast on steps that were in flight at the loss instead of
        waiting out their full deadlock timeouts."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=2),
        ])
        m, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=True,
        )
        t0 = time.perf_counter()
        with pytest.raises(WorkerLostError):
            for i in range(4):
                b = slice(i * 16, (i + 1) * 16)
                rt.train_step(x[b], y[b])
        assert not rt._inflight, "in-flight steps were not drained"
        assert not rt.pool._issued, "pool still tracks issued steps"
        assert_weights_restored(rt)
        rt.close()
        # Generous bound, but far below what serially waiting out two full
        # deadlock windows plus close() would cost if draining hung.
        assert time.perf_counter() - t0 < 60.0


class TestRegistry:
    def test_transitions_and_illegal_moves(self):
        reg = WorkerRegistry(2, heartbeat_timeout=60.0)
        assert reg.states() == [TaskState.CONNECTING] * 2
        reg.transition(0, TaskState.READY)
        reg.transition(0, TaskState.RUNNING)
        reg.transition(0, TaskState.READY)
        reg.transition(0, TaskState.READY)  # same-state no-op
        with pytest.raises(RuntimeError, match="illegal task-state transition"):
            reg.transition(1, TaskState.RUNNING)  # CONNECTING cannot run
        reg.mark_lost(0, "first reason")
        reg.mark_lost(0, "second reason")  # idempotent; first reason wins
        assert reg[0].reason == "first reason"
        with pytest.raises(RuntimeError, match="illegal task-state transition"):
            reg.transition(0, TaskState.READY)  # LOST is terminal

    def test_heartbeat_sweep_marks_silent_workers_lost(self):
        reg = WorkerRegistry(3, heartbeat_timeout=0.05)
        reg.transition(0, TaskState.READY)
        reg.transition(1, TaskState.READY)
        reg.transition(1, TaskState.RUNNING)
        time.sleep(0.1)
        reg.beat(0)  # fresh traffic exempts worker 0
        assert reg.first_lost() is reg[1]
        assert "no heartbeat" in reg[1].reason
        assert reg[0].state is TaskState.READY
        # CONNECTING workers are exempt: handshakes have their own deadline.
        assert reg[2].state is TaskState.CONNECTING

    def test_backoff_budget_is_bounded(self):
        clock = Backoff(base=0.001, ceiling=0.002, total=0.05).start()
        t0 = time.perf_counter()
        while clock.sleep():
            pass
        assert clock.expired
        assert clock.attempts >= 2
        assert time.perf_counter() - t0 < 5.0
