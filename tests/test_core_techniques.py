"""Tests for the PipeMare techniques: T1 rescheduling, T2 correction,
T3 warmup, and the composed config."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DiscrepancyCorrector,
    LRReschedule,
    PipeMareConfig,
    WarmupSchedule,
    anneal_steps_for_step_schedule,
    anneal_steps_for_warmup_schedule,
)
from repro.core.discrepancy import PAPER_DEFAULT_DECAY
from repro.nn.module import Parameter


class TestLRReschedule:
    def test_exponent_anneals_linearly(self):
        r = LRReschedule([4.0], anneal_steps=10)
        assert r.exponent(0) == 1.0
        assert r.exponent(5) == 0.5
        assert r.exponent(10) == 0.0
        assert r.exponent(100) == 0.0

    def test_eq5_scale(self):
        """α_{k,i} = α_base / τ_i^{p_k}."""
        r = LRReschedule([8.0, 2.0], anneal_steps=4)
        assert r.scale(0, 0) == pytest.approx(1 / 8)
        assert r.scale(0, 1) == pytest.approx(1 / 2)
        assert r.scale(2, 0) == pytest.approx(8 ** -0.5)
        assert r.scale(4, 0) == 1.0

    def test_sub_unit_delays_clamped(self):
        """τ < 1 must not amplify the learning rate."""
        r = LRReschedule([0.25], anneal_steps=10)
        assert r.scale(0, 0) == 1.0

    def test_scales_vector(self):
        r = LRReschedule([9.0, 4.0, 1.0], anneal_steps=2)
        np.testing.assert_allclose(r.scales(0), [1 / 9, 1 / 4, 1.0])

    def test_apply_sets_group_scales(self):
        from repro.optim import SGD, ParamGroup

        groups = [ParamGroup(params=[Parameter(np.zeros(2))]) for _ in range(2)]
        opt = SGD(groups, lr=0.1)
        r = LRReschedule([4.0, 1.0], anneal_steps=10)
        r.apply(opt, 0)
        assert opt.groups[0].lr_scale == pytest.approx(0.25)
        assert opt.groups[1].lr_scale == 1.0

    def test_apply_rejects_group_mismatch(self):
        from repro.optim import SGD

        opt = SGD([Parameter(np.zeros(2))], lr=0.1)  # one group
        r = LRReschedule([4.0, 1.0], anneal_steps=10)
        with pytest.raises(ValueError):
            r.apply(opt, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LRReschedule([1.0], anneal_steps=0)
        with pytest.raises(ValueError):
            LRReschedule([], anneal_steps=5)
        with pytest.raises(ValueError):
            LRReschedule([-1.0], anneal_steps=5)
        with pytest.raises(ValueError):
            LRReschedule([1.0], anneal_steps=5).exponent(-1)

    @given(st.floats(1.0, 100.0), st.integers(1, 50), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_scale_in_unit_interval(self, tau, k_steps, step):
        """T1 never amplifies: scale ∈ (0, 1] always."""
        r = LRReschedule([tau], anneal_steps=k_steps)
        s = r.scale(step, 0)
        assert 0 < s <= 1.0 + 1e-12

    @given(st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_property_monotone_in_step(self, k_steps):
        """Scales relax monotonically toward 1 as training proceeds."""
        r = LRReschedule([10.0], anneal_steps=k_steps)
        scales = [r.scale(k, 0) for k in range(2 * k_steps + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(scales, scales[1:]))
        assert scales[-1] == pytest.approx(1.0)


def _make_corrector(shapes=((3,), (2, 2)), tau_f=(4.0,), tau_b=(0.0,), decay=0.3):
    params = [Parameter(np.ones(s)) for s in shapes]
    return DiscrepancyCorrector([params], np.array(tau_f), np.array(tau_b), decay), params


class TestDiscrepancyCorrector:
    def test_gamma_rule(self):
        c, _ = _make_corrector(tau_f=(4.0,), tau_b=(0.0,), decay=0.3)
        assert c.gamma[0] == pytest.approx(0.3 ** (1 / 4))

    def test_paper_default_decay_is_exp_minus_2(self):
        assert PAPER_DEFAULT_DECAY == pytest.approx(np.exp(-2))

    def test_no_correction_for_zero_gap(self):
        params = [Parameter(np.ones(3))]
        c = DiscrepancyCorrector([params], np.array([2.0]), np.array([2.0]), 0.3)
        out = c.corrected_weights(0)
        assert out[0] is params[0].data

    def test_corrected_weights_extrapolate_backwards(self):
        c, params = _make_corrector()
        # simulate one step of +0.1 everywhere
        old = [p.data.copy() for p in params]
        for p in params:
            p.data = p.data + 0.1
        c.update(0, old)
        corrected = c.corrected_weights(0)
        g = c.gamma[0]
        expected_delta = (1 - g) * 0.1
        np.testing.assert_allclose(corrected[0], params[0].data - 4.0 * expected_delta)

    def test_ewma_update(self):
        c, params = _make_corrector(decay=0.5)
        g = c.gamma[0]
        deltas = [0.1, -0.2, 0.3]
        expected = 0.0
        for d in deltas:
            old = [p.data.copy() for p in params]
            for p in params:
                p.data = p.data + d
            c.update(0, old)
            expected = g * expected + (1 - g) * d
        np.testing.assert_allclose(c.velocity[0][0], np.full(3, expected))

    def test_memory_is_one_weight_copy(self):
        c, params = _make_corrector()
        assert c.memory_elements() == sum(p.size for p in params)

    def test_validation(self):
        params = [Parameter(np.ones(2))]
        with pytest.raises(ValueError):
            DiscrepancyCorrector([params], np.array([1.0]), np.array([2.0]), 0.3)
        with pytest.raises(ValueError):
            DiscrepancyCorrector([params], np.array([2.0]), np.array([0.0]), 1.0)
        with pytest.raises(ValueError):
            DiscrepancyCorrector([params], np.array([1.0, 2.0]), np.array([0.0]), 0.3)


class TestWarmupSchedule:
    def test_window(self):
        w = WarmupSchedule(3)
        assert w.is_synchronous(0) and w.is_synchronous(2)
        assert not w.is_synchronous(3)

    def test_zero_warmup(self):
        assert not WarmupSchedule(0).is_synchronous(0)

    def test_amortized_throughput_iwslt(self):
        """10 sync epochs of 35 total ⇒ ≈ 0.6× (Table 2)."""
        t = WarmupSchedule.amortized_throughput(35, 10)
        assert t == pytest.approx(0.6, abs=0.03)

    def test_amortized_bounds(self):
        assert WarmupSchedule.amortized_throughput(10, 0) == 1.0
        assert WarmupSchedule.amortized_throughput(10, 10) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupSchedule(-1)
        with pytest.raises(ValueError):
            WarmupSchedule.amortized_throughput(0, 0)
        with pytest.raises(ValueError):
            WarmupSchedule.amortized_throughput(5, 6)
        with pytest.raises(ValueError):
            WarmupSchedule(1).is_synchronous(-1)


class TestPipeMareConfig:
    def test_factories(self):
        assert PipeMareConfig.naive_async().describe() == "naive-async"
        assert "T1" in PipeMareConfig.t1_only(10).describe()
        assert "T2" in PipeMareConfig.t2_only().describe()
        full = PipeMareConfig.full(10, 20)
        assert all(tag in full.describe() for tag in ("T1", "T2", "T3"))

    def test_warmup_cleared_without_t3(self):
        cfg = PipeMareConfig(use_t3=False, warmup_steps=0)
        assert cfg.warmup_steps == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PipeMareConfig(use_t1=True, anneal_steps=0)
        with pytest.raises(ValueError):
            PipeMareConfig(use_t2=True, decay=1.5)
        with pytest.raises(ValueError):
            PipeMareConfig(use_t3=True, warmup_steps=0)

    def test_anneal_rules_of_thumb(self):
        assert anneal_steps_for_step_schedule(80) == 20  # quarter of phase 1
        assert anneal_steps_for_warmup_schedule(40) == 200  # 5× warmup
        with pytest.raises(ValueError):
            anneal_steps_for_step_schedule(0)
        with pytest.raises(ValueError):
            anneal_steps_for_warmup_schedule(0)
