"""Failure-injection and edge-case tests: the library must fail loudly and
informatively when misused, and degrade gracefully where the paper's
algorithms do."""

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.nn import CrossEntropyLoss, Embedding, Linear, Sequential
from repro.optim import SGD
from repro.pipeline import (
    DelayProfile,
    Method,
    PipelineExecutor,
    WeightVersionStore,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages


class TestStoreUnderprovisioning:
    def test_too_small_history_fails_loudly(self, rng):
        """If the weight store cannot cover the oldest read, the executor
        must raise KeyError instead of training on wrong weights."""
        m = MLP([4, 8, 8, 8, 3], np.random.default_rng(0))
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=0.01)
        ex = PipelineExecutor(m, CrossEntropyLoss(), opt, stages, 1, "pipemare")
        # sabotage: replace the store with one that holds too few versions
        ex.store = WeightVersionStore(stages, history=2)
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, size=8)
        with pytest.raises(KeyError):
            for _ in range(10):
                ex.train_step(x, y)

    def test_default_history_is_sufficient(self, rng):
        """The automatically computed history must cover a long run."""
        m = MLP([4, 8, 8, 8, 3], np.random.default_rng(0))
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=0.001)
        ex = PipelineExecutor(m, CrossEntropyLoss(), opt, stages, 3, "pipemare")
        x = rng.normal(size=(9, 4))
        y = rng.integers(0, 3, size=9)
        for _ in range(40):  # > several pipe lengths
            ex.train_step(x, y)


class TestNonFiniteHandling:
    def test_diverged_loss_propagates_not_crashes(self, rng):
        """A diverging run must surface non-finite losses, not exceptions."""
        m = MLP([4, 8, 8, 8, 8, 3], np.random.default_rng(0))
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=50.0, momentum=0.9)
        ex = PipelineExecutor(m, CrossEntropyLoss(), opt, stages, 2, "pipemare")
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, size=8)
        with np.errstate(all="ignore"):
            vals = [ex.train_step(x, y) for _ in range(25)]
        assert any(not np.isfinite(v) or v > 1e6 for v in vals)

    def test_nan_input_produces_nan_loss(self, rng):
        m = MLP([4, 8, 3], np.random.default_rng(0))
        loss = CrossEntropyLoss()
        x = np.full((2, 4), np.nan)
        with np.errstate(all="ignore"):
            val = loss(m(x), np.array([0, 1]))
        assert not np.isfinite(val)


class TestEmbeddingStackMisuse:
    def test_double_backward_raises(self, rng):
        e = Embedding(5, 3, rng)
        e(np.array([[1]]))
        e.backward(np.ones((1, 1, 3)))
        with pytest.raises(RuntimeError):
            e.backward(np.ones((1, 1, 3)))


class TestConfigConflicts:
    def test_pipemare_config_only_affects_pipemare(self, rng):
        """Passing a PipeMare config to a synchronous method must not alter
        its dynamics."""
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, size=8)
        final = {}
        for cfg in (None, PipeMareConfig.t1_t2(10)):
            m = MLP([4, 8, 3], np.random.default_rng(0))
            stages = partition_model(m)
            opt = SGD(param_groups_from_stages(stages), lr=0.05)
            ex = PipelineExecutor(m, CrossEntropyLoss(), opt, stages, 2, "gpipe", pipemare=cfg)
            for _ in range(5):
                ex.train_step(x, y)
            final[cfg is None] = np.concatenate([p.data.ravel() for p in m.parameters()])
        np.testing.assert_array_equal(final[True], final[False])

    def test_unknown_method_rejected(self, rng):
        m = MLP([4, 8, 3], np.random.default_rng(0))
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=0.05)
        with pytest.raises(ValueError):
            PipelineExecutor(m, CrossEntropyLoss(), opt, stages, 2, "pipedreams")


class TestDelayProfileEdges:
    def test_single_stage_single_microbatch(self):
        """The minimal pipe still has τ_fwd = 1 (its own fwd/update gap)."""
        prof = DelayProfile(1, 1, Method.PIPEMARE)
        assert prof.tau_fwd(0) == 1.0
        assert prof.fwd_version(0, 5, 0) == 4

    def test_many_microbatches_drive_delay_below_one(self):
        prof = DelayProfile(2, 64, Method.PIPEMARE)
        assert prof.tau_fwd(0) < 0.1
        # most microbatches of a minibatch read the current version
        current = sum(
            prof.fwd_version(0, 10, j) == 10 for j in range(64)
        )
        assert current > 60

    def test_first_minibatch_reads_initial_weights(self):
        prof = DelayProfile(8, 2, Method.PIPEMARE)
        for s in range(8):
            for j in range(2):
                assert prof.fwd_version(s, 0, j) == 0


class TestSequentialEdges:
    def test_empty_sequential_is_identity(self, rng):
        s = Sequential()
        x = rng.normal(size=(2, 3))
        np.testing.assert_array_equal(s(x), x)
        np.testing.assert_array_equal(s.backward(x), x)

    def test_single_layer(self, rng):
        s = Sequential(Linear(3, 2, rng))
        assert s(rng.normal(size=(4, 3))).shape == (4, 2)
