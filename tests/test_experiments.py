"""Integration tests for the experiment runners (reduced scale).

These exercise the same code paths as the paper-figure benchmarks but with
tiny budgets, asserting structural properties rather than final quality.
"""

import math

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.experiments import make_image_workload, make_translation_workload
from repro.experiments.ablation import ablation_variants, format_ablation_table, run_ablation
from repro.experiments.configs import PAPER_STAGE_COUNTS, TABLE8_GRIDS
from repro.experiments.end_to_end import run_end_to_end
from repro.experiments.recompute_training import checkpoints_to_segment, run_recompute_study
from repro.experiments.stability_heatmap import boundary_slope_loglog, run_stability_heatmap
from repro.experiments.stage_sweep import run_stage_sweep
from repro.experiments.hogwild_study import run_hogwild_image


@pytest.fixture(scope="module")
def small_image():
    return make_image_workload(
        "cifar", num_train=128, num_test=64, batch_size=16, num_microbatches=2,
    )


@pytest.fixture(scope="module")
def small_translation():
    return make_translation_workload(
        "iwslt", batches_per_epoch=6, batch_size=16, num_microbatches=4, eval_size=16,
    )


class TestWorkloads:
    def test_presets_exist(self):
        for preset in ("cifar", "imagenet", "resnet152"):
            make_image_workload(preset, num_train=32, num_test=16)
        for preset in ("iwslt", "wmt"):
            make_translation_workload(preset, eval_size=4)
        with pytest.raises(ValueError):
            make_image_workload("mnist")
        with pytest.raises(ValueError):
            make_translation_workload("fr-en")

    def test_image_run_produces_result(self, small_image):
        res = small_image.run(method="gpipe", epochs=2, seed=0)
        assert len(res.tracker) == 2
        assert 0 <= res.best_metric <= 100
        assert res.meta["workload"] == "cifar"

    def test_translation_run_produces_result(self, small_translation):
        res = small_translation.run(method="gpipe", epochs=2, seed=0)
        assert len(res.tracker) == 2
        assert 0 <= res.best_metric <= 100

    def test_default_stage_resolution(self, small_translation):
        b = small_translation.bundle()
        assert b.num_stages == small_translation.default_stages

    def test_max_stages_counts_units(self, small_image):
        assert small_image.max_stages() > 10

    def test_anneal_rules(self, small_image, small_translation):
        # presets carry tuned values
        assert small_image.default_anneal_steps() == small_image.tuned_anneal_steps
        assert small_translation.default_anneal_steps() == 200
        # the rule-of-thumb path
        w = make_image_workload("cifar", num_train=64, num_test=16, tuned_anneal_steps=None)
        assert w.default_anneal_steps() == w.lr_drop_epochs * w.steps_per_epoch // 4


class TestEndToEnd:
    def test_rows_structure(self, small_image):
        rows, results = run_end_to_end(
            small_image, epochs=2, methods=("gpipe", "pipemare")
        )
        assert {r.method for r in rows} == {"gpipe", "pipemare"}
        gpipe = next(r for r in rows if r.method == "gpipe")
        pm = next(r for r in rows if r.method == "pipemare")
        assert gpipe.throughput == pytest.approx(0.30, abs=0.01)
        assert pm.throughput == 1.0
        assert pm.memory_multiplier == pytest.approx(4 / 3)  # SGD + T2
        assert gpipe.memory_multiplier == 1.0
        for r in rows:
            assert isinstance(r.format(), str)

    def test_pipedream_memory_exceeds_others(self, small_image):
        rows, _ = run_end_to_end(
            small_image, epochs=1, methods=("pipedream", "gpipe")
        )
        pd = next(r for r in rows if r.method == "pipedream")
        assert pd.memory_multiplier > 1.5


class TestAblation:
    def test_variant_grid(self, small_image):
        v = ablation_variants(small_image, include_t3=True)
        assert set(v) == {"sync", "naive", "t1", "t2", "t1+t2", "t1+t2+t3"}
        assert v["sync"] is None
        assert v["t1+t2+t3"].use_t3

    def test_run_and_format(self, small_image):
        variants = {
            "sync": None,
            "t1": PipeMareConfig.t1_only(16),
        }
        results = run_ablation(small_image, epochs=2, variants=variants)
        lines = format_ablation_table(small_image, results)
        assert len(lines) == 3  # header + 2 rows


class TestStageSweep:
    def test_shapes_and_monotonicity(self, small_image):
        sweep = run_stage_sweep(
            small_image, stage_counts=[4, 8], epochs=1,
            train_methods=("pipemare",),
        )
        ps, tputs = sweep.series("gpipe", "throughput")
        assert ps == [4, 8]
        assert tputs[0] > tputs[1]  # GPipe throughput degrades with stages
        _, mems = sweep.series("pipedream", "memory")
        assert mems[1] > mems[0]  # PipeDream memory grows with stages
        _, pm_mems = sweep.series("pipemare", "memory")
        assert pm_mems[0] == pm_mems[1]  # PipeMare memory flat


class TestStabilityHeatmap:
    def test_boundary_scales_like_lemma1(self):
        result = run_stability_heatmap(
            alphas=2.0 ** np.arange(-14, 0),
            taus=np.array([4, 16, 64]),
            steps=1500,
            num_samples=256,
        )
        slope = boundary_slope_loglog(result)
        assert slope == pytest.approx(-1.0, abs=0.35)
        # the lemma curve must lower-bound-ish the empirical boundary
        for i in range(len(result.taus)):
            b = result.divergence_boundary_alpha(i)
            assert b >= result.lemma1_curve[i] * 0.4

    def test_larger_tau_diverges_earlier(self):
        result = run_stability_heatmap(
            alphas=2.0 ** np.arange(-12, 0),
            taus=np.array([2, 128]),
            steps=800,
            num_samples=128,
        )
        assert result.divergence_boundary_alpha(1) < result.divergence_boundary_alpha(0)


class TestRecomputeStudy:
    def test_checkpoint_mapping(self):
        assert checkpoints_to_segment(16, 4) == 4
        assert checkpoints_to_segment(16, 5) == 4
        assert checkpoints_to_segment(16, 16) == 1
        with pytest.raises(ValueError):
            checkpoints_to_segment(16, 0)

    def test_study_runs(self, small_image):
        out = run_recompute_study(
            small_image, checkpoint_grid=[None, 2], epochs=1,
            config=PipeMareConfig.t1_t2(16, decay=0.5),
        )
        assert set(out) == {"no_recompute", "2_ckpts"}


class TestHogwildStudy:
    def test_runs_and_differs_from_sync(self, small_image):
        res = run_hogwild_image(small_image, epochs=2, use_t1=True, seed=0)
        assert len(res.tracker) <= 2
        assert res.meta["mode"] == "hogwild"


class TestConfigs:
    def test_paper_records_present(self):
        assert PAPER_STAGE_COUNTS["resnet50"] == 107
        assert PAPER_STAGE_COUNTS["transformer_iwslt"] == 93
        assert TABLE8_GRIDS["cifar10"]["decay"]["optimal"] == 0.5
        assert TABLE8_GRIDS["iwslt"]["decay"]["optimal"] == 0.1
