"""Tests for :mod:`repro.io` — checkpoint save/restore.

The load-bearing property is *resume equivalence*: training K steps,
checkpointing, and training K more must produce bit-identical weights to
restoring the checkpoint into fresh objects and training the same K steps.
This exercises every piece of mutable state (weights, optimizer moments,
T2 velocity, the delayed weight-version window, step counters).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PipeMareConfig
from repro.io import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    load_model,
    save_checkpoint,
    save_model,
)
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, Adam
from repro.pipeline import PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages
from repro.utils import new_rng
from repro.utils.ring_buffer import RingBuffer


def make_data(seed=0, n=64, d=6, classes=3):
    rng = new_rng(seed)
    y = rng.integers(0, classes, size=n)
    centers = rng.normal(size=(classes, d)) * 2.0
    x = centers[y] + rng.normal(size=(n, d))
    return x.astype(np.float64), y


def build_setup(seed=0, method="pipemare", config=None, optimizer_cls=SGD,
                recompute_segment=None, **opt_kw):
    model = MLP([6, 8, 8, 3], new_rng(seed))
    stages = partition_model(model)
    opt = optimizer_cls(param_groups_from_stages(stages), lr=0.05, **opt_kw)
    executor = PipelineExecutor(
        model, CrossEntropyLoss(), opt, stages,
        num_microbatches=2, method=method, pipemare=config,
        recompute_segment=recompute_segment,
    )
    return model, opt, executor


def train_steps(executor, x, y, steps):
    for s in range(steps):
        lo = (s % 2) * 32
        executor.train_step(x[lo:lo + 32], y[lo:lo + 32])


class TestModelRoundtrip:
    def test_save_load_restores_weights(self, tmp_path):
        m1 = MLP([4, 5, 2], new_rng(1))
        path = tmp_path / "model.npz"
        save_model(path, m1)
        m2 = MLP([4, 5, 2], new_rng(2))
        load_model(path, m2)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_architecture_mismatch_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(path, MLP([4, 5, 2], new_rng(0)))
        with pytest.raises(CheckpointError):
            load_model(path, MLP([4, 6, 2], new_rng(0)))

    def test_not_a_checkpoint_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_model(path, MLP([4, 5, 2], new_rng(0)))


class TestOptimizerState:
    def test_momentum_buffers_roundtrip(self, tmp_path):
        x, y = make_data()
        model, opt, executor = build_setup(
            config=PipeMareConfig.naive_async(), momentum=0.9
        )
        train_steps(executor, x, y, 4)
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, optimizer=opt)

        model2, opt2, _ = build_setup(seed=9, config=PipeMareConfig.naive_async(), momentum=0.9)
        load_checkpoint(path, model2, optimizer=opt2)
        assert opt2.steps == opt.steps
        assert opt2.lr == opt.lr
        for g1, g2 in zip(opt.groups, opt2.groups):
            for p1, p2 in zip(g1.params, g2.params):
                s1, s2 = opt.state_for(p1), opt2.state_for(p2)
                assert set(s1) == set(s2)
                for k in s1:
                    np.testing.assert_array_equal(s1[k], s2[k])

    def test_adam_moments_roundtrip(self, tmp_path):
        x, y = make_data()
        model, opt, executor = build_setup(
            config=PipeMareConfig.naive_async(), optimizer_cls=Adam
        )
        train_steps(executor, x, y, 3)
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, optimizer=opt)
        model2, opt2, _ = build_setup(
            seed=7, config=PipeMareConfig.naive_async(), optimizer_cls=Adam
        )
        load_checkpoint(path, model2, optimizer=opt2)
        p_last = opt2.groups[-1].params[-1]
        state = opt2.state_for(p_last)
        assert {"m", "v"} <= set(state) or len(state) == 2  # both moments present
        assert any(np.any(arr != 0) for arr in state.values())

    def test_missing_optimizer_section_raises(self, tmp_path):
        model, opt, _ = build_setup()
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model)  # no optimizer
        model2, opt2, _ = build_setup(seed=3)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, model2, optimizer=opt2)

    def test_group_count_mismatch_raises(self, tmp_path):
        x, y = make_data()
        model, opt, executor = build_setup(config=PipeMareConfig.naive_async())
        train_steps(executor, x, y, 2)
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, optimizer=opt)
        # same model shape, but a single flat param group
        model2 = MLP([6, 8, 8, 3], new_rng(5))
        opt2 = SGD(model2.parameters(), lr=0.05)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, model2, optimizer=opt2)


@pytest.mark.parametrize(
    "method,config,opt_cls",
    [
        ("pipemare", PipeMareConfig.t1_t2(anneal_steps=20, decay=0.3), SGD),
        ("pipemare", PipeMareConfig.naive_async(), SGD),
        ("pipedream", None, SGD),
        ("gpipe", None, Adam),
        ("pipemare", PipeMareConfig.full(anneal_steps=20, warmup_steps=6, decay=0.3), SGD),
    ],
    ids=["pipemare-t1t2", "naive-async", "pipedream", "gpipe-adam", "pipemare-t3"],
)
class TestResumeEquivalence:
    def test_resume_is_bit_exact(self, tmp_path, method, config, opt_cls):
        x, y = make_data()
        kw = {"momentum": 0.9} if opt_cls is SGD else {}

        # Reference: train 4 + 4 steps straight through.
        model_a, opt_a, ex_a = build_setup(method=method, config=config,
                                           optimizer_cls=opt_cls, **kw)
        train_steps(ex_a, x, y, 4)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, model_a, optimizer=opt_a, executor=ex_a,
                        extra={"step": 4})
        train_steps(ex_a, x, y, 4)

        # Restored run: fresh objects, load, train the same last 4 steps.
        model_b, opt_b, ex_b = build_setup(seed=1234, method=method, config=config,
                                           optimizer_cls=opt_cls, **kw)
        extra = load_checkpoint(path, model_b, optimizer=opt_b, executor=ex_b)
        assert extra == {"step": 4}
        assert ex_b.t == 4
        train_steps(ex_b, x, y, 4)

        for (n1, p1), (n2, p2) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)


class TestResumeWithRecompute:
    def test_recompute_resume_is_bit_exact(self, tmp_path):
        """Appendix D's recompute path adds a third delayed read; the
        version window in the checkpoint must cover it too."""
        x, y = make_data()
        cfg = PipeMareConfig.t1_t2(anneal_steps=20, decay=0.3)

        model_a, opt_a, ex_a = build_setup(config=cfg, recompute_segment=2,
                                           momentum=0.9)
        train_steps(ex_a, x, y, 4)
        path = tmp_path / "rc.npz"
        save_checkpoint(path, model_a, optimizer=opt_a, executor=ex_a)
        train_steps(ex_a, x, y, 4)

        model_b, opt_b, ex_b = build_setup(seed=77, config=cfg,
                                           recompute_segment=2, momentum=0.9)
        load_checkpoint(path, model_b, optimizer=opt_b, executor=ex_b)
        train_steps(ex_b, x, y, 4)

        for p1, p2 in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)


class TestExecutorStateValidation:
    def test_corrector_presence_mismatch_raises(self, tmp_path):
        x, y = make_data()
        model, opt, ex = build_setup(config=PipeMareConfig.t2_only(decay=0.3))
        train_steps(ex, x, y, 2)
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, optimizer=opt, executor=ex)
        model2, opt2, ex2 = build_setup(seed=2, config=PipeMareConfig.naive_async())
        with pytest.raises(CheckpointError):
            load_checkpoint(path, model2, optimizer=opt2, executor=ex2)

    def test_missing_executor_section_raises(self, tmp_path):
        model, opt, _ = build_setup()
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, optimizer=opt)
        model2, opt2, ex2 = build_setup(seed=2)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, model2, optimizer=opt2, executor=ex2)

    def test_extra_roundtrips_json_types(self, tmp_path):
        model, _, _ = build_setup()
        path = tmp_path / "ck.npz"
        extra = {"epoch": 3, "best": 91.5, "tag": "run-a", "flags": [1, 2]}
        save_checkpoint(path, model, extra=extra)
        model2, _, _ = build_setup(seed=2)
        out = load_checkpoint(path, model2)
        assert out == extra


class TestRingBufferSeed:
    def test_seed_replays_window(self):
        buf = RingBuffer(3)
        buf.seed(5, ["a", "b", "c"])
        assert buf.oldest_version == 5
        assert buf.latest_version == 7
        assert buf[6] == "b"
        with pytest.raises(KeyError):
            buf[4]

    def test_seed_then_append_continues_versioning(self):
        buf = RingBuffer(2)
        buf.seed(3, ["x", "y"])
        assert buf.append("z") == 5
        assert buf.oldest_version == 4

    def test_seed_window_must_be_newest(self):
        buf = RingBuffer(2)
        with pytest.raises(ValueError):
            buf.seed(1, ["only"])  # version 0 would still be resident

    def test_seed_rejects_overflow_and_empty(self):
        buf = RingBuffer(2)
        with pytest.raises(ValueError):
            buf.seed(0, ["a", "b", "c"])
        with pytest.raises(ValueError):
            buf.seed(0, [])

    @given(
        capacity=st.integers(1, 8),
        total=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_seed_equals_append_history(self, capacity, total):
        """Seeding with the resident window of an appended buffer reproduces
        its observable state exactly."""
        ref = RingBuffer(capacity)
        for i in range(total):
            ref.append(f"payload{i}")
        clone = RingBuffer(capacity)
        clone.seed(ref.oldest_version, [ref[v] for v in ref.versions()])
        assert clone.oldest_version == ref.oldest_version
        assert clone.latest_version == ref.latest_version
        assert len(clone) == len(ref)
        for v in ref.versions():
            assert clone[v] == ref[v]


class TestMismatchedHistoryRoundTrip:
    """Checkpoints cross history depths: a window saved by a deeper buffer
    restores into a shallower one (trimmed to the newest versions) and a
    shallow window restores into a deeper buffer (``allow_gap=True`` parks
    ``_floor`` above the natural ``next - capacity`` bound, so the absent
    older versions read as evicted instead of resolving stale slots)."""

    def test_gap_seed_raises_floor_above_natural_bound(self):
        buf = RingBuffer(3)
        buf.seed(5, ["e"], allow_gap=True)  # newest-only window, capacity 3
        assert buf.oldest_version == 5
        assert buf.latest_version == 5
        for absent in (3, 4):  # naturally resident for capacity 3, but absent
            with pytest.raises(KeyError):
                buf[absent]

    def test_floor_decays_as_appends_refill_the_window(self):
        buf = RingBuffer(3)
        buf.seed(5, ["e"], allow_gap=True)
        buf.append("f")
        buf.append("g")
        assert buf.oldest_version == 5  # floor still binds: 8 - 3 = 5
        assert [buf[v] for v in buf.versions()] == ["e", "f", "g"]
        buf.append("h")
        # natural bound (9 - 3 = 6) has overtaken the floor
        assert buf.oldest_version == 6
        with pytest.raises(KeyError):
            buf[5]

    def _window(self, store, stage=0):
        return {
            v: [w.copy() for w in store.weights(stage, v)]
            for v in store.resident_versions(stage)
        }

    def _make_store(self, history, seed=0, steps=0):
        from repro.pipeline.weight_store import WeightVersionStore

        model = MLP([6, 8, 8, 3], new_rng(seed))
        stages = partition_model(model)
        store = WeightVersionStore(stages, history=history)
        rng = new_rng(99)
        for _ in range(steps):
            for stage in stages:
                for p in stage.params:
                    p.data = p.data + rng.normal(size=p.data.shape)
            store.push_current()
        return store

    def test_save_depth2_load_depth1_trims_to_newest(self):
        deep = self._make_store(history=2, steps=3)  # resident: versions 2, 3
        state = deep.state_dict()
        shallow = self._make_store(history=1, seed=5)
        shallow.load_state_dict(state)
        assert shallow.latest_version == deep.latest_version
        for s in range(shallow.num_stages):
            assert shallow.resident_versions(s) == [deep.latest_version]
            for w_new, w_ref in zip(
                shallow.weights(s, deep.latest_version),
                deep.weights(s, deep.latest_version),
            ):
                np.testing.assert_array_equal(w_new, w_ref)
            with pytest.raises(KeyError):  # trimmed, not silently stale
                shallow.weights(s, deep.latest_version - 1)
        # live parameters point at the restored latest
        for stage, ref_stage in zip(shallow.stages, deep.stages):
            for p, q in zip(stage.params, ref_stage.params):
                np.testing.assert_array_equal(p.data, q.data)

    def test_save_depth1_load_depth2_leaves_gap_below_floor(self):
        shallow = self._make_store(history=1, steps=3)  # resident: version 3
        state = shallow.state_dict()
        deep = self._make_store(history=2, seed=5)
        deep.load_state_dict(state)
        assert deep.latest_version == shallow.latest_version
        for s in range(deep.num_stages):
            assert deep.resident_versions(s) == [shallow.latest_version]
            with pytest.raises(KeyError):  # inside capacity, above _floor
                deep.weights(s, shallow.latest_version - 1)
        # the gap heals as new versions are pushed
        deep.push_current()
        for s in range(deep.num_stages):
            assert deep.resident_versions(s) == [
                shallow.latest_version, shallow.latest_version + 1
            ]

    def test_round_trip_through_both_depths_is_lossless_on_the_latest(self):
        a = self._make_store(history=2, steps=4)
        ref = self._window(a)
        b = self._make_store(history=1, seed=6)
        b.load_state_dict(a.state_dict())
        c = self._make_store(history=2, seed=7)
        c.load_state_dict(b.state_dict())
        latest = a.latest_version
        assert c.latest_version == latest
        for w_new, w_ref in zip(c.weights(0, latest), ref[latest]):
            np.testing.assert_array_equal(w_new, w_ref)


class TestOptimizerStateKeys:
    def test_state_key_mismatch_raises(self, tmp_path):
        """A momentum-SGD checkpoint cannot restore into plain SGD: the
        state keys differ and the mismatch must fail loudly."""
        x, y = make_data()
        model, opt, ex = build_setup(config=PipeMareConfig.naive_async(),
                                     momentum=0.9)
        train_steps(ex, x, y, 2)
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, optimizer=opt)

        model2 = MLP([6, 8, 8, 3], new_rng(3))
        from repro.pipeline import partition_model as pm
        from repro.pipeline.executor import param_groups_from_stages as pg
        stages = pm(model2)
        plain = SGD(pg(stages), lr=0.05)  # momentum=0: no velocity state
        with pytest.raises(CheckpointError, match="keys"):
            load_checkpoint(path, model2, optimizer=plain)


class TestCheckpointManager:
    """Rolling-snapshot directory semantics: atomic writes that leave no
    temp-file residue, a crash-safe ``latest`` pointer, pruning beyond
    ``keep``, and corruption fallback to the previous good snapshot."""

    def _trained(self, steps=2):
        x, y = make_data()
        model, opt, ex = build_setup(momentum=0.9,
                                     config=PipeMareConfig.naive_async())
        train_steps(ex, x, y, steps)
        return model, opt, ex

    def test_save_leaves_no_tmp_residue(self, tmp_path):
        model, opt, ex = self._trained()
        mgr = CheckpointManager(tmp_path, keep=2)
        for _ in range(3):
            mgr.save(model, opt, ex)
        leftover = [n for n in tmp_path.iterdir() if n.suffix == ".tmp"]
        assert leftover == []

    def test_pointer_tracks_newest_and_prunes_to_keep(self, tmp_path):
        model, opt, ex = self._trained()
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in range(4):
            mgr.save(model, opt, ex, extra={"step": step})
        names = sorted(n.name for n in tmp_path.glob("ckpt-*.npz"))
        assert names == ["ckpt-000002.npz", "ckpt-000003.npz"]
        pointer = (tmp_path / "latest").read_text().strip()
        assert pointer == "ckpt-000003.npz"
        m2, o2, e2 = self._trained()
        extra = mgr.load_latest(m2, o2, e2)
        assert extra["step"] == 3

    def test_corrupt_newest_falls_back_to_previous_snapshot(self, tmp_path):
        model, opt, ex = self._trained()
        mgr = CheckpointManager(tmp_path, keep=3)
        mgr.save(model, opt, ex, extra={"step": 0})
        w_good = {n: p.data.copy() for n, p in model.named_parameters()}
        x, y = make_data()
        train_steps(ex, x, y, 1)
        newest = mgr.save(model, opt, ex, extra={"step": 1})
        # Tear the newest snapshot mid-file, as a power cut between the
        # data rename and pointer update could never do but external
        # damage can.
        blob = bytearray(open(newest, "rb").read())
        blob[len(blob) // 2:len(blob) // 2 + 64] = b"\x00" * 64
        with open(newest, "wb") as fh:
            fh.write(bytes(blob))
        m2, o2, e2 = self._trained()
        extra = mgr.load_latest(m2, o2, e2)
        assert extra["step"] == 0
        for name, param in m2.named_parameters():
            np.testing.assert_array_equal(param.data, w_good[name])

    def test_all_corrupt_raises_corrupt_error(self, tmp_path):
        model, opt, ex = self._trained()
        mgr = CheckpointManager(tmp_path, keep=2)
        mgr.save(model, opt, ex)
        mgr.save(model, opt, ex)
        for path in tmp_path.glob("ckpt-*.npz"):
            path.write_bytes(b"not a zip archive")
        with pytest.raises(CheckpointCorruptError):
            mgr.load_latest(*self._trained())

    def test_empty_directory_raises_plain_error(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "fresh", keep=2)
        with pytest.raises(CheckpointError, match="no snapshots"):
            mgr.load_latest(*self._trained())

    def test_crc_mismatch_on_flipped_bytes(self, tmp_path):
        """A single flipped array byte that keeps the zip container intact
        must still be caught — by the per-blob crc32, not the container."""
        model, opt, ex = self._trained()
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, opt, ex)
        import zipfile

        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        victim = next(k for k in arrays if k.startswith("model/"))
        arrays[victim] = arrays[victim] + 1e-3  # values change, shape intact
        # Rewrite the npz with the original (now stale) checksums in meta.
        with zipfile.ZipFile(path, "w") as zf:
            for key, arr in arrays.items():
                import io as _io

                buf = _io.BytesIO()
                np.lib.format.write_array(buf, np.asarray(arr))
                zf.writestr(f"{key}.npy", buf.getvalue())
        with pytest.raises(CheckpointCorruptError, match="crc32 mismatch"):
            load_checkpoint(path, *self._trained())

    def test_stale_pointer_falls_back_to_newest_snapshot(self, tmp_path):
        """A pointer naming a pruned file is ignored in favor of the
        newest snapshot on disk (crash window: unlink raced the pointer)."""
        model, opt, ex = self._trained()
        mgr = CheckpointManager(tmp_path, keep=2)
        mgr.save(model, opt, ex, extra={"step": 0})
        mgr.save(model, opt, ex, extra={"step": 1})
        (tmp_path / "latest").write_text("ckpt-999999.npz")
        extra = mgr.load_latest(*self._trained())
        assert extra["step"] == 1
