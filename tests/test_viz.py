"""Tests for :mod:`repro.viz` — the renderers must be pure, deterministic,
and degrade gracefully on divergent (non-finite) data, because the CLI
feeds them raw experiment output including diverged runs."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import bar_chart, format_table, heatmap, line_plot, sparkline
from repro.viz.heatmap import DIVERGED_CELL


class TestLinePlot:
    def test_flat_series_renders_without_degenerate_scale(self):
        out = line_plot({"flat": ([0, 1, 2], [5.0, 5.0, 5.0])})
        assert "flat" in out
        assert "|" in out

    def test_title_and_labels_appear(self):
        out = line_plot(
            {"s": ([0, 1], [0.0, 1.0])},
            title="Loss vs step",
            ylabel="loss",
            xlabel="step",
        )
        assert out.splitlines()[0] == "Loss vs step"
        assert "loss" in out
        assert "step" in out

    def test_markers_distinct_per_series(self):
        out = line_plot({"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])})
        assert "* a" in out
        assert "o b" in out

    def test_nonfinite_points_dropped(self):
        out = line_plot({"d": ([0, 1, 2, 3], [1.0, 2.0, math.inf, math.nan])})
        # Renders only the finite prefix — no crash, no inf in axis labels.
        assert "inf" not in out
        assert "nan" not in out

    def test_all_nonfinite_yields_placeholder(self):
        out = line_plot({"d": ([0, 1], [math.nan, math.inf])})
        assert "(no finite data)" in out

    def test_logy_drops_nonpositive(self):
        out = line_plot({"s": ([0, 1, 2], [0.0, -1.0, 10.0])}, logy=True)
        assert "1e" in out  # log-scale labels

    def test_empty_series_dict_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"s": ([0, 1], [1.0])})

    def test_tiny_plot_area_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"s": ([0], [0.0])}, width=4, height=2)

    def test_extremes_land_on_grid_corners(self):
        out = line_plot({"s": ([0, 10], [0.0, 1.0])}, width=10, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        # max y on the top plot row, min y on the bottom one
        assert "*" in rows[0]
        assert "*" in rows[-1]

    @given(
        ys=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_any_finite_series_renders(self, ys):
        out = line_plot({"s": (list(range(len(ys))), ys)})
        assert isinstance(out, str)
        assert "s" in out


class TestHeatmap:
    def test_ramp_maps_min_to_first_max_to_last(self):
        out = heatmap([[0.0, 1.0]], ramp=" #", cell_width=1)
        row = out.splitlines()[0]
        assert row == " #"

    def test_nonfinite_cells_marked_diverged(self):
        out = heatmap([[1.0, math.inf], [math.nan, 2.0]], cell_width=1)
        grid_rows = out.splitlines()[:2]
        assert grid_rows[0][1] == DIVERGED_CELL
        assert grid_rows[1][0] == DIVERGED_CELL
        assert "diverged" in out.splitlines()[-1]

    def test_constant_grid_no_zero_division(self):
        out = heatmap(np.full((3, 3), 7.0))
        assert "scale:" in out

    def test_row_labels_aligned(self):
        out = heatmap([[0.0], [1.0]], row_labels=["t=1", "t=10"])
        lines = out.splitlines()
        assert lines[0].startswith(" t=1 ")
        assert lines[1].startswith("t=10 ")

    def test_col_labels_thinned_into_footer(self):
        out = heatmap(
            [[0.0, 0.5, 1.0]],
            col_labels=["a", "b", "c"],
            cell_width=2,
        )
        footer = out.splitlines()[1]
        assert "a" in footer

    def test_label_length_validation(self):
        with pytest.raises(ValueError):
            heatmap([[0.0]], row_labels=["a", "b"])
        with pytest.raises(ValueError):
            heatmap([[0.0]], col_labels=["a", "b"])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3))

    def test_short_ramp_rejected(self):
        with pytest.raises(ValueError):
            heatmap([[0.0]], ramp="#")

    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_shape_of_output_matches_grid(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        out = heatmap(rng.normal(size=(rows, cols)), cell_width=2)
        body = out.splitlines()[:rows]
        assert len(body) == rows
        assert all(len(line) == cols * 2 for line in body)


class TestBarChart:
    def test_peak_bar_fills_width(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert "#" * 10 in lines[1]
        assert "#" * 5 in lines[0]

    def test_zero_values_render_empty_bars(self):
        out = bar_chart(["z"], [0.0], width=10)
        assert "#" not in out

    def test_negative_clamped_to_zero(self):
        out = bar_chart(["n", "p"], [-5.0, 5.0], width=10)
        assert out.splitlines()[0].count("#") == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [math.inf])

    def test_empty_chart_is_title(self):
        assert bar_chart([], [], title="t") == "t"

    def test_values_printed_at_line_ends(self):
        out = bar_chart(["x"], [3.25], fmt=".2f")
        assert out.endswith("3.25")


class TestSparkline:
    def test_monotone_series_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3], ramp=".:#")
        assert s[0] == "."
        assert s[-1] == "#"

    def test_divergence_marked(self):
        s = sparkline([1.0, 2.0, math.inf, math.nan])
        assert s.endswith("!!")

    def test_all_nonfinite(self):
        assert sparkline([math.nan, math.inf]) == "!!"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_mid_ramp(self):
        s = sparkline([5, 5, 5], ramp="ab")
        assert set(s) == {"b"}

    @given(
        ys=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=32),
            max_size=64,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_one_char_per_point(self, ys):
        assert len(sparkline(ys)) == len(ys)


class TestFormatTable:
    def test_numeric_columns_right_aligned_text_left(self):
        out = format_table(
            ["method", "speedup"],
            [["GPipe", 1.0], ["PipeMare", 3.3]],
        )
        lines = out.splitlines()
        assert lines[0].startswith("method")
        assert lines[2].startswith("GPipe")
        assert lines[3].rstrip().endswith("3.3")

    def test_none_renders_dash(self):
        out = format_table(["m", "v"], [["PipeDream", None]])
        assert out.splitlines()[-1].rstrip().endswith("-")

    def test_float_fmt_applied(self):
        out = format_table(["v"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in out

    def test_title_first_line(self):
        out = format_table(["a"], [[1]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows_is_header_plus_rule(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    @given(
        nrows=st.integers(0, 6),
        ncols=st.integers(1, 5),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_rows_same_rendered_width_modulo_rstrip(self, nrows, ncols, seed):
        rng = np.random.default_rng(seed)
        headers = [f"c{i}" for i in range(ncols)]
        rows = [[float(rng.normal()) for _ in range(ncols)] for _ in range(nrows)]
        out = format_table(headers, rows)
        lines = out.splitlines()
        rule = lines[1]
        assert set(rule) <= {"-", " "}
        # numeric columns right-align, so every row ends at the rule's width
        assert all(len(line.rstrip()) == len(rule) for line in lines)
