"""Tests for datasets, loaders, BLEU, accuracy, trackers, history."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    TranslationTask,
    batch_iterator,
    make_cpusmall_like,
    make_image_classification,
)
from repro.metrics import MetricTracker, corpus_bleu, sentence_bleu, top1_accuracy
from repro.utils import History, new_rng, spawn_rngs


class TestSyntheticImages:
    def test_shapes(self):
        ds = make_image_classification(num_train=64, num_test=32, image_size=8)
        assert ds.train_x.shape == (64, 3, 8, 8)
        assert ds.test_y.shape == (32,)
        assert ds.num_classes == 10
        assert len(ds) == 64

    def test_reproducible(self):
        a = make_image_classification(num_train=16, rng=np.random.default_rng(5))
        b = make_image_classification(num_train=16, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_low_noise_is_linearly_separable_by_template(self):
        ds = make_image_classification(num_train=256, num_test=64, noise=0.05)
        # nearest-template classification should be near-perfect at low noise
        flat = ds.test_x.reshape(len(ds.test_x), -1)
        # build templates from train means
        temps = np.stack([
            ds.train_x[ds.train_y == k].mean(axis=0).reshape(-1)
            for k in range(ds.num_classes)
        ])
        pred = ((flat[:, None, :] - temps[None]) ** 2).sum(-1).argmin(1)
        assert (pred == ds.test_y).mean() > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            make_image_classification(num_classes=1)
        with pytest.raises(ValueError):
            make_image_classification(num_train=2, num_classes=10)


class TestCpusmallLike:
    def test_shapes_and_scale_spread(self):
        x, y = make_cpusmall_like(num_samples=256, num_features=12)
        assert x.shape == (256, 12)
        scales = x.std(axis=0)
        assert scales.max() / scales.min() > 4

    def test_learnable(self):
        x, y = make_cpusmall_like(num_samples=512, noise=0.1)
        w, *_ = np.linalg.lstsq(x, y, rcond=None)
        residual = np.mean((x @ w - y) ** 2)
        assert residual < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cpusmall_like(num_samples=4, num_features=12)
        with pytest.raises(ValueError):
            make_cpusmall_like(scale_spread=0.5)


class TestTranslationTask:
    def test_translate_is_reverse_and_rotate(self):
        t = TranslationTask(vocab_size=10, rotation=2)
        src = np.array([3, 4, 5])
        out = t.translate(src)
        assert out.tolist() == [(5 - 3 + 2) % 7 + 3, (4 - 3 + 2) % 7 + 3, (3 - 3 + 2) % 7 + 3]
        assert out.tolist() == out.tolist()[::-1][::-1]

    def test_batch_layout(self):
        t = TranslationTask(vocab_size=16, min_len=3, max_len=5)
        batch = t.sample_batch(4)
        assert batch.src.shape[0] == 4
        assert (batch.tgt_in[:, 0] == t.bos_id).all()
        # tgt_out ends rows with EOS before padding
        for row_in, row_out in zip(batch.tgt_in, batch.tgt_out):
            content = row_out[row_out != t.pad_id]
            assert content[-1] == t.eos_id

    def test_strip_special(self):
        t = TranslationTask(vocab_size=16)
        assert t.strip_special(np.array([1, 5, 6, 2, 0, 0])) == [5, 6]
        assert t.strip_special(np.array([1, 2])) == []

    def test_fixed_eval_set_reproducible_and_nonconsuming(self):
        t = TranslationTask(vocab_size=16, rng=np.random.default_rng(1))
        e1 = t.fixed_eval_set(5)
        s1 = t.sample_pairs(2)
        t2 = TranslationTask(vocab_size=16, rng=np.random.default_rng(1))
        e2 = t2.fixed_eval_set(5)
        s2 = t2.sample_pairs(2)
        for (a, b), (c, d) in zip(e1, e2):
            np.testing.assert_array_equal(a, c)
        for (a, _), (c, _) in zip(s1, s2):
            np.testing.assert_array_equal(a, c)

    def test_validation(self):
        with pytest.raises(ValueError):
            TranslationTask(vocab_size=3)
        with pytest.raises(ValueError):
            TranslationTask(min_len=5, max_len=3)
        with pytest.raises(ValueError):
            TranslationTask().make_batch([])

    @given(st.integers(8, 32), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_translate_bijective(self, vocab, rotation):
        """The ground-truth mapping is a bijection on content tokens."""
        t = TranslationTask(vocab_size=vocab, rotation=rotation)
        src = np.arange(3, vocab)
        out = t.translate(src)
        assert sorted(out.tolist()) == sorted(src.tolist())


class TestBatchIterator:
    def test_covers_all_with_drop_last(self):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)
        batches = list(batch_iterator(x, y, 3, shuffle=False))
        assert len(batches) == 3
        assert all(len(b[0]) == 3 for b in batches)

    def test_shuffle_reproducible(self):
        x = np.arange(8)[:, None].astype(float)
        y = np.arange(8)
        b1 = [b[1].tolist() for b in batch_iterator(x, y, 4, rng=np.random.default_rng(3))]
        b2 = [b[1].tolist() for b in batch_iterator(x, y, 4, rng=np.random.default_rng(3))]
        assert b1 == b2

    def test_labels_follow_features(self):
        x = np.arange(8)[:, None].astype(float)
        y = np.arange(8)
        for xb, yb in batch_iterator(x, y, 4, rng=np.random.default_rng(0)):
            np.testing.assert_array_equal(xb[:, 0].astype(int), yb)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros(3), np.zeros(2), 1))
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros(3), np.zeros(3), 0))


class TestBLEU:
    def test_perfect_match_is_100(self):
        assert corpus_bleu([[1, 2, 3, 4, 5]], [[1, 2, 3, 4, 5]]) == pytest.approx(100.0)

    def test_disjoint_is_0(self):
        assert corpus_bleu([[1, 2, 3, 4]], [[5, 6, 7, 8]]) == 0.0

    def test_empty_candidate_is_0(self):
        assert corpus_bleu([[]], [[1, 2, 3]]) == 0.0

    def test_brevity_penalty(self):
        """A correct prefix half the reference length is penalised."""
        full = corpus_bleu([[1, 2, 3, 4, 5, 6, 7, 8]], [[1, 2, 3, 4, 5, 6, 7, 8]])
        short = corpus_bleu([[1, 2, 3, 4]], [[1, 2, 3, 4, 5, 6, 7, 8]])
        assert short < full
        assert short < 100 * math.exp(1 - 2)  * 1.05  # bp ≈ e^{1−r/c}

    def test_word_order_matters(self):
        ref = [1, 2, 3, 4, 5, 6]
        good = corpus_bleu([ref], [ref])
        scrambled = corpus_bleu([[6, 5, 4, 3, 2, 1]], [ref])
        assert scrambled < good

    def test_partial_overlap_between_0_and_100(self):
        s = corpus_bleu([[1, 2, 3, 9, 9]], [[1, 2, 3, 4, 5]])
        assert 0 < s < 100

    def test_corpus_aggregates_not_averages(self):
        """BLEU pools n-gram counts across the corpus (not mean of
        per-sentence scores)."""
        c = corpus_bleu([[1, 2, 3, 4], [9, 9, 9, 9]], [[1, 2, 3, 4], [5, 6, 7, 8]])
        s1 = sentence_bleu([1, 2, 3, 4], [1, 2, 3, 4])
        assert 0 < c < s1

    def test_validation(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1], [2]])
        with pytest.raises(ValueError):
            corpus_bleu([], [])
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1]], max_n=0)

    @given(st.lists(st.integers(0, 5), min_size=4, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_property_self_bleu_is_100(self, tokens):
        assert sentence_bleu(tokens, list(tokens)) == pytest.approx(100.0)


class TestAccuracy:
    def test_basic(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        assert top1_accuracy(logits, np.array([0, 1, 1])) == pytest.approx(100 * 2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((0, 2)), np.zeros(0))


class TestMetricTracker:
    def test_best_and_epochs_to_target(self):
        t = MetricTracker()
        for e, v in enumerate([10, 50, 80, 85]):
            t.record(e, v, epoch_time=2.0)
        assert t.best() == 85
        assert t.epochs_to_target(80) == 3  # reached at epoch index 2 ⇒ 3 epochs
        assert t.epochs_to_target(90) == math.inf

    def test_time_to_target_sums_epoch_times(self):
        t = MetricTracker()
        t.record(0, 10, epoch_time=3.0)
        t.record(1, 90, epoch_time=1.0)
        assert t.time_to_target(50) == pytest.approx(4.0)
        assert t.time_to_target(99) == math.inf
        assert t.total_time() == pytest.approx(4.0)

    def test_min_mode(self):
        t = MetricTracker(mode="min")
        t.record(0, 5.0)
        t.record(1, 2.0)
        assert t.best() == 2.0
        assert t.epochs_to_target(3.0) == 2

    def test_monotone_epoch_enforcement(self):
        t = MetricTracker()
        t.record(0, 1.0)
        with pytest.raises(ValueError):
            t.record(0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricTracker(mode="median")
        t = MetricTracker()
        with pytest.raises(ValueError):
            t.record(0, 1.0, epoch_time=-1.0)
        assert math.isnan(t.best())


class TestHistory:
    def test_log_and_series(self):
        h = History()
        h.log(step=0, loss=1.0, acc=50.0)
        h.log(step=1, loss=0.5)
        assert h.series("loss") == [1.0, 0.5]
        assert h.steps("loss") == [0, 1]
        assert h.series("acc") == [50.0]
        assert "loss" in h and len(h) == 2

    def test_best_and_last(self):
        h = History()
        for v in [3.0, 1.0, 2.0]:
            h.log(loss=v)
        assert h.best("loss", "min") == 1.0
        assert h.best("loss", "max") == 3.0
        assert h.last("loss") == 2.0
        assert math.isnan(h.last("missing"))

    def test_json_roundtrip(self):
        import json

        h = History()
        h.log(step=0, loss=1.0)
        data = json.loads(h.to_json())
        assert data["loss"]["values"] == [1.0]

    def test_invalid_mode(self):
        h = History()
        h.log(loss=1.0)
        with pytest.raises(ValueError):
            h.best("loss", "avg")


class TestRngHelpers:
    def test_new_rng_deterministic(self):
        assert new_rng(1).integers(0, 100) == new_rng(1).integers(0, 100)

    def test_spawn_independent(self):
        rngs = spawn_rngs(0, 3)
        vals = [r.integers(0, 10**9) for r in rngs]
        assert len(set(vals)) == 3

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
