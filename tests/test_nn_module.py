"""Tests for Parameter/Module/Sequential plumbing."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential
from repro.nn.module import Residual


class TestParameter:
    def test_grad_initialized_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert (p.grad == 0).all()

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_casts_to_float64(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        assert p.data.dtype == np.float64


class TestModuleRegistration:
    def test_parameters_in_registration_order(self, rng):
        m = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        names = [n for n, _ in m.named_parameters()]
        assert names == [
            "layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias",
        ]

    def test_shared_parameter_reported_once(self, rng):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, rng)
                self.b = self.a  # tied

        m = Shared()
        assert len(m.parameters()) == 2  # weight + bias, not 4

    def test_num_parameters(self, rng):
        m = Linear(3, 4, rng)
        assert m.num_parameters() == 3 * 4 + 4

    def test_train_eval_propagates(self, rng):
        m = Sequential(Linear(2, 2, rng), ReLU())
        m.eval()
        assert not m.training and not m[0].training
        m.train()
        assert m.training and m[0].training

    def test_zero_grad_recursive(self, rng):
        m = Sequential(Linear(2, 2, rng))
        m[0].weight.grad += 1.0
        m.zero_grad()
        assert (m[0].weight.grad == 0).all()


class TestStateDict:
    def test_roundtrip(self, rng):
        m1 = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        m2 = Sequential(
            Linear(3, 4, np.random.default_rng(9)), ReLU(),
            Linear(4, 2, np.random.default_rng(9)),
        )
        m2.load_state_dict(m1.state_dict())
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(m1(x), m2(x))

    def test_state_dict_is_copy(self, rng):
        m = Linear(2, 2, rng)
        sd = m.state_dict()
        sd["weight"][:] = 99.0
        assert not (m.weight.data == 99.0).any()

    def test_load_rejects_missing_key(self, rng):
        m = Linear(2, 2, rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_rejects_shape_mismatch(self, rng):
        m = Linear(2, 2, rng)
        sd = m.state_dict()
        sd["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)


class TestSequential:
    def test_forward_backward_chain(self, rng):
        m = Sequential(Linear(3, 5, rng), ReLU(), Linear(5, 2, rng))
        x = rng.normal(size=(4, 3))
        y = m(x)
        assert y.shape == (4, 2)
        dx = m.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_append(self, rng):
        m = Sequential(Linear(2, 2, rng))
        m.append(ReLU())
        assert len(m) == 2

    def test_getitem(self, rng):
        l0 = Linear(2, 2, rng)
        m = Sequential(l0)
        assert m[0] is l0


class TestResidual:
    def test_forward_adds_input(self, rng):
        body = Linear(3, 3, rng)
        r = Residual(body)
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(r(x), x + body(x))

    def test_backward_sums_paths(self, rng):
        body = Linear(3, 3, rng)
        r = Residual(body)
        x = rng.normal(size=(2, 3))
        r(x)
        g = rng.normal(size=(2, 3))
        dx = r.backward(g)
        np.testing.assert_allclose(dx, g + g @ body.weight.data.T)
