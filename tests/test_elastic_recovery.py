"""Elastic recovery: the three escalation tiers and the harness that caps
them.

* **Per-worker respawn** (socket backend, ``max_worker_restarts``): a
  worker killed mid-step is replaced *inside the current generation* —
  survivors keep their processes and sockets (asserted through the
  registry state history: they never leave READY/RUNNING), the dead slot
  walks LOST → REPLACING → READY, and the retried minibatch continues the
  exact simulator trajectory.  Generation respawn (``max_restarts``)
  remains the fallback once the per-worker budget is spent.
* **Replica degradation** (hybrid runs, thread + process): a replica that
  loses a worker is dropped from the group — the run continues at R−1
  from the failed minibatch onward, bit-identical to a from-scratch R−1
  run restored from a checkpoint at the degradation point, with the event
  recorded in ``RuntimeStats.degradations``.  A repaired replica rejoins
  version-fenced at an optimizer boundary.
* **Crash-safe autosave/resume**: ``PipelineTrainer(autosave_every=N)``
  snapshots at synced boundaries; a driver killed mid-epoch resumes
  bit-exactly from the newest snapshot, fast-forwarding the deterministic
  batch stream.

The ``chaos`` suite soaks all of it: seeded random kills/drops/delays
against the socket backend must end in exactly one of two outcomes —
bit-exact completion vs the simulator, or a typed error with a loadable
latest checkpoint.  Never a hang, never silent corruption.  Per-seed
fault logs go to ``$CHAOS_LOG_DIR`` (CI uploads them on failure).
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np
import pytest

from faultutils import FaultRule, FaultSpec
from repro.io import CheckpointManager, load_checkpoint, save_checkpoint
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineDeadlockError,
    PipelineExecutor,
    RuntimeWedgedError,
    TaskState,
    WorkerLostError,
    partition_model,
)
from repro.pipeline import runtime as runtime_mod
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.registry import Backoff
from repro.train import PipelineTrainer

TIMEOUT = 15.0

# Survivor states during a per-worker replacement: anything outside this
# set means a healthy worker was torn down or re-handshaked.
BENIGN = {TaskState.CONNECTING, TaskState.READY, TaskState.RUNNING}


def toy_data(rng, n=96):
    centers = rng.normal(size=(3, 6)) * 2
    y = rng.integers(0, 3, size=n)
    x = centers[y] + rng.normal(size=(n, 6))
    return x, y


def build(backend, seed=7, replicas=1, **kw):
    model = MLP([6, 8, 8, 8, 3], np.random.default_rng(seed))
    stages = partition_model(model, 4)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    if backend == "simulator":
        ex = PipelineExecutor(
            model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
            num_replicas=replicas, **kw
        )
    else:
        ex = AsyncPipelineRuntime(
            model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
            backend=backend, num_replicas=replicas, **kw
        )
    return model, ex


def install(monkeypatch, rules):
    spec = FaultSpec(rules)
    monkeypatch.setattr(runtime_mod, "_channel_hook", spec.wrap)
    return spec


def assert_same_weights(model_a, model_b):
    for p1, p2 in zip(model_a.parameters(), model_b.parameters()):
        np.testing.assert_array_equal(p1.data, p2.data)


@pytest.mark.net
class TestWorkerReplacement:
    """Tier 1: one lost socket worker replaced inside the generation."""

    @pytest.mark.timeout(180)
    def test_killed_worker_is_replaced_in_place_bit_exact(
        self, rng, monkeypatch
    ):
        """The acceptance scenario: kill one socket worker mid-step with a
        per-worker budget.  Only that slot is replaced — the registry
        history proves the survivors never left READY/RUNNING (their
        processes and connections were kept), the dead slot walks
        LOST → REPLACING → READY, the generation counter never moves, and
        the retried trajectory is bit-identical to the simulator."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=2),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False, net_options={"max_worker_restarts": 1},
        )
        with rt:
            losses = []
            i = 0
            while i < 5:
                b = slice(i * 16, (i + 1) * 16)
                try:
                    losses.append(rt.train_step(x[b], y[b]))
                except WorkerLostError as exc:
                    assert exc.worker == 1
                    continue  # retry the lost minibatch on the replacement
                assert losses[-1] == ex.train_step(x[b], y[b])
                i += 1
            registry = rt.pool.registry
            for w in (0, 2, 3):
                assert set(registry[w].history) <= BENIGN, (
                    f"survivor {w} was disturbed: {registry[w].history}"
                )
            h = registry[1].history
            k = h.index(TaskState.LOST)
            assert h[k:k + 3] == [
                TaskState.LOST, TaskState.REPLACING, TaskState.READY
            ]
            assert rt.pool._generation == 1, "generation respawn ran instead"
            assert rt.pool._worker_restarts_left == 0
            assert not rt.pool.wedged
            rt.sync()
            assert_same_weights(m1, m2)

    @pytest.mark.timeout(180)
    def test_replacement_with_overlapped_boundary_bit_exact(
        self, rng, monkeypatch
    ):
        """With two steps in flight a survivor can hold a *queued* zombie
        step at loss time; the post-replacement fence must wait it out or
        the retry's payloads get discarded as stale.  Final weights must
        still match the simulator bit for bit."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=2, kind="act", step=3),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=True, net_options={"max_worker_restarts": 1},
        )
        with rt:
            i = 0
            retries = 0
            while i < 6:
                b = slice(i * 16, (i + 1) * 16)
                try:
                    rt.train_step(x[b], y[b])
                except WorkerLostError:
                    retries += 1
                    assert retries < 4, "replacement did not stick"
                    continue
                i += 1
            rt.sync()
            for w in (0, 1, 3):
                assert set(rt.pool.registry[w].history) <= BENIGN
        for i in range(6):
            b = slice(i * 16, (i + 1) * 16)
            ex.train_step(x[b], y[b])
        assert_same_weights(m1, m2)

    @pytest.mark.timeout(240)
    def test_generation_respawn_is_the_fallback_after_budget(
        self, rng, monkeypatch
    ):
        """Two kills against a per-worker budget of one: the first loss is
        repaired in place (generation unchanged), the second falls back to
        a full generation respawn (``max_restarts``) — and the trajectory
        still matches the simulator bit for bit."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=2),
            FaultRule(op="send", action="die", worker=2, kind="act", step=5),
        ])
        m1, ex = build("simulator")
        m2, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False,
            net_options={"max_worker_restarts": 1, "max_restarts": 1},
        )
        with rt:
            generations = []
            i = 0
            while i < 5:
                b = slice(i * 16, (i + 1) * 16)
                try:
                    loss = rt.train_step(x[b], y[b])
                except WorkerLostError:
                    generations.append(rt.pool._generation)
                    continue
                assert loss == ex.train_step(x[b], y[b])
                i += 1
            assert generations == [1, 2], (
                "expected per-worker replacement first (generation stays 1)"
                " then a generation respawn (2), got " + repr(generations)
            )
            rt.sync()
            assert_same_weights(m1, m2)

    @pytest.mark.timeout(180)
    def test_no_budget_left_wedges_with_typed_errors(self, rng, monkeypatch):
        """Kills beyond every budget wedge the pool: further steps raise
        RuntimeWedgedError and close() stays prompt."""
        x, y = toy_data(rng)
        install(monkeypatch, [
            FaultRule(op="send", action="die", worker=1, kind="act", step=2),
            FaultRule(op="send", action="die", worker=2, kind="act", step=4),
        ])
        m, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False, net_options={"max_worker_restarts": 1},
        )
        t0 = time.perf_counter()
        with rt:
            losses = 0
            with pytest.raises(WorkerLostError):
                for i in range(6):
                    b = slice((i % 6) * 16, (i % 6 + 1) * 16)
                    try:
                        rt.train_step(x[b], y[b])
                    except WorkerLostError as exc:
                        losses += 1
                        if losses > 1:
                            raise  # second loss: no budget left
            assert rt.pool.wedged
            with pytest.raises(RuntimeWedgedError, match="wedged"):
                rt.train_step(x[:16], y[:16])
        assert time.perf_counter() - t0 < 90.0, "wedge/close path hung"


@pytest.mark.net
class TestReplicaDegradation:
    """Tier 2: hybrid groups drop a dead replica and continue at R−1."""

    def _degrade_and_compare(self, backend, kill, rng, tmp_path, **kw):
        """Shared recipe: run at R=2, checkpoint at a boundary, kill
        replica 1, assert the group degrades to R−1 and continues — then
        replay the remainder on a from-scratch R−1 simulator restored
        from the checkpoint and demand bit-identical losses/weights."""
        x, y = toy_data(rng, n=240)

        def batch(i):
            return x[i * 24:(i + 1) * 24], y[i * 24:(i + 1) * 24]

        model, rt = build(backend, replicas=2, overlap_boundary=False, **kw)
        ck = tmp_path / "degrade.npz"
        with rt:
            [rt.train_step(*batch(i)) for i in range(2)]
            rt.sync()
            save_checkpoint(ck, model, rt.optimizer, rt)
            kill(rt)
            with pytest.raises(PipelineDeadlockError):
                rt.train_step(*batch(2))
            assert rt.group.active == [0]
            assert rt.plan.num_replicas == 1
            (event,) = rt.stats.degradations
            assert event["kind"] == "degrade"
            assert event["replica"] == 1
            assert event["minibatch"] == 2
            cont = [rt.train_step(*batch(i)) for i in range(2, 5)]
            rt.sync()
            weights = [p.data.copy() for p in model.parameters()]
        m_ref, ref = build("simulator", replicas=1)
        load_checkpoint(ck, m_ref, ref.optimizer, ref)
        assert cont == [ref.train_step(*batch(i)) for i in range(2, 5)]
        for got, p in zip(weights, m_ref.parameters()):
            np.testing.assert_array_equal(got, p.data)

    @pytest.mark.timeout(180)
    def test_process_replica_loss_degrades_bit_exact(self, rng, tmp_path):
        self._degrade_and_compare(
            "process",
            lambda rt: (
                rt.group.pools[1]._procs[0].terminate(),
                rt.group.pools[1]._procs[0].join(5.0),
            ),
            rng, tmp_path, deadlock_timeout=2.0, done_grace=2.0,
        )

    @pytest.mark.timeout(180)
    def test_thread_replica_loss_degrades_bit_exact(self, rng, tmp_path):
        # A thread cannot be killed; feeding the command queues the stop
        # sentinel makes the pool permanently silent — the same wedge a
        # crashed replica produces.
        self._degrade_and_compare(
            "thread",
            lambda rt: [cq.put(None) for cq in rt.group.pools[1]._cmd],
            rng, tmp_path, deadlock_timeout=1.0, done_grace=2.0,
        )

    @pytest.mark.timeout(180)
    def test_rejoin_at_boundary_is_bit_exact(self, rng, tmp_path):
        """A repaired replica rejoining at an optimizer boundary: from the
        rejoin point the run must match a from-scratch R=2 simulator
        restored from a checkpoint taken at that boundary."""
        x, y = toy_data(rng, n=240)

        def batch(i):
            return x[i * 24:(i + 1) * 24], y[i * 24:(i + 1) * 24]

        model, rt = build(
            "thread", replicas=2, deadlock_timeout=1.0, done_grace=2.0,
            overlap_boundary=False,
        )
        ck = tmp_path / "rejoin.npz"
        with rt:
            [rt.train_step(*batch(i)) for i in range(2)]
            for cq in rt.group.pools[1]._cmd:
                cq.put(None)
            with pytest.raises(PipelineDeadlockError):
                rt.train_step(*batch(2))
            assert rt.group.active == [0]
            [rt.train_step(*batch(i)) for i in range(2, 4)]
            rt.sync()
            save_checkpoint(ck, model, rt.optimizer, rt)
            rt.rejoin_replica(1)
            assert rt.group.active == [0, 1]
            assert rt.plan.num_replicas == 2
            assert [d["kind"] for d in rt.stats.degradations] == [
                "degrade", "rejoin"
            ]
            cont = [rt.train_step(*batch(i)) for i in range(4, 6)]
            rt.sync()
            weights = [p.data.copy() for p in model.parameters()]
        m_ref, ref = build("simulator", replicas=2)
        load_checkpoint(ck, m_ref, ref.optimizer, ref)
        assert cont == [ref.train_step(*batch(i)) for i in range(4, 6)]
        for got, p in zip(weights, m_ref.parameters()):
            np.testing.assert_array_equal(got, p.data)


class _PowerCut(BaseException):
    """Simulated driver death: escapes the trainer's loop the way SIGKILL
    would — no cleanup, no final autosave."""


@pytest.mark.net
class TestDriverRestartResume:
    """Tier 3: crash-safe autosave and bit-exact driver-restart resume."""

    def _trainer(self, backend, save_dir, seed=3, autosave_every=2):
        model, ex = (
            build(backend)
            if backend == "simulator"
            else build(backend, deadlock_timeout=TIMEOUT)
        )
        data_rng = np.random.default_rng(1234)
        x, y = toy_data(data_rng, n=120)

        def batch_fn(rng):
            order = rng.permutation(len(x))
            for i in range(5):
                idx = order[i * 24:(i + 1) * 24]
                yield x[idx], y[idx]

        trainer = PipelineTrainer(
            ex, batch_fn, eval_fn=lambda: 0.0, seed=seed,
            autosave_every=autosave_every if save_dir is not None else None,
            autosave_dir=str(save_dir) if save_dir is not None else None,
        )
        return model, ex, trainer

    @pytest.mark.timeout(240)
    def test_killed_driver_resumes_bit_exact(self, tmp_path):
        """Kill the driver mid-epoch between save points; a fresh driver
        with ``resume=True`` fast-forwards the deterministic batch stream
        and finishes with weights and logged metrics bit-identical to an
        uninterrupted run."""
        # The doomed run: autosaves at steps 2 and dies entering step 4.
        model_a, ex_a, trainer_a = self._trainer("socket", tmp_path / "ck")
        steps = {"n": 0}
        real = ex_a.train_step

        def dying_step(x, y):
            if steps["n"] == 3:
                raise _PowerCut
            steps["n"] += 1
            return real(x, y)

        ex_a.train_step = dying_step
        with pytest.raises(_PowerCut):
            trainer_a.run(epochs=2)
        ex_a.close()

        # The restarted driver: a brand-new runtime, resumed from disk.
        model_b, ex_b, trainer_b = self._trainer("socket", tmp_path / "ck")
        with ex_b:
            result_b = trainer_b.run(epochs=2, resume=True)

        # The uninterrupted reference (simulator: also proves the resumed
        # socket run re-joins the cross-backend-identical trajectory).
        model_c, ex_c, trainer_c = self._trainer("simulator", None)
        result_c = trainer_c.run(epochs=2)

        assert_same_weights(model_b, model_c)
        assert result_b.history.series("train_loss") == pytest.approx(
            result_c.history.series("train_loss"), abs=0
        )

    @pytest.mark.timeout(120)
    def test_resume_with_empty_directory_starts_fresh(self, tmp_path):
        model_b, ex_b, trainer_b = self._trainer("simulator", tmp_path / "ck")
        result = trainer_b.run(epochs=1, resume=True)  # nothing saved yet
        model_c, ex_c, trainer_c = self._trainer("simulator", None)
        reference = trainer_c.run(epochs=1)
        assert_same_weights(model_b, model_c)
        assert result.history.series("train_loss") == reference.history.series(
            "train_loss"
        )

    def test_resume_without_autosave_is_rejected(self):
        model, ex, trainer = self._trainer("simulator", None)
        with pytest.raises(ValueError, match="resume=True requires autosave"):
            trainer.run(epochs=1, resume=True)


@pytest.mark.net
class TestBackoffJitter:
    """Satellite: seeded jitter on the reconnect backoff schedule."""

    def _delays(self, monkeypatch, spec, n=6):
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        clock = spec.start()
        for _ in range(n):
            assert clock.sleep()
        return slept

    def test_injected_rng_makes_the_schedule_deterministic(self, monkeypatch):
        mk = lambda seed: Backoff(
            base=0.02, ceiling=0.5, total=1e9, jitter=0.25,
            rng=random.Random(seed),
        )
        a = self._delays(monkeypatch, mk(5))
        b = self._delays(monkeypatch, mk(5))
        c = self._delays(monkeypatch, mk(6))
        assert a == b, "same seed must draw the same schedule"
        assert a != c, "different seeds must desynchronize"

    def test_jitter_stays_within_the_band(self, monkeypatch):
        spec = Backoff(
            base=0.02, ceiling=0.5, total=1e9, jitter=0.25,
            rng=random.Random(0),
        )
        delays = self._delays(monkeypatch, spec, n=10)
        nominal = 0.02
        for d in delays:
            assert nominal * 0.75 <= d <= nominal * 1.25
            nominal = min(nominal * 2, 0.5)

    def test_zero_jitter_is_the_exact_exponential(self, monkeypatch):
        delays = self._delays(
            monkeypatch, Backoff(base=0.01, ceiling=0.04, total=1e9), n=5
        )
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04]

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter must be in"):
            Backoff(jitter=1.0)
        with pytest.raises(ValueError, match="jitter must be in"):
            Backoff(jitter=-0.1)


@pytest.mark.net
class TestNetOptionsValidation:
    """Satellite: a misconfigured net_options dict fails loudly at
    construction, naming the offending key — not as a phantom cluster
    outage at the first heartbeat sweep."""

    def _build(self, **net_options):
        return build(
            "socket", deadlock_timeout=TIMEOUT, net_options=net_options
        )

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError) as exc_info:
            self._build(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        msg = str(exc_info.value)
        assert "heartbeat_timeout" in msg and "heartbeat_interval" in msg

    def test_equal_heartbeat_timeout_is_rejected_too(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            self._build(heartbeat_interval=1.0, heartbeat_timeout=1.0)

    @pytest.mark.parametrize(
        "key", ["heartbeat_interval", "connect_timeout", "handshake_timeout"]
    )
    def test_negative_timeouts_are_rejected_by_name(self, key):
        with pytest.raises(ValueError, match=key):
            self._build(**{key: -1.0})

    @pytest.mark.parametrize("key", ["max_restarts", "max_worker_restarts"])
    def test_negative_budgets_are_rejected_by_name(self, key):
        with pytest.raises(ValueError, match=key):
            self._build(**{key: -1})


# -- chaos soak ----------------------------------------------------------------

CHAOS_SEEDS = list(range(10))
CHAOS_STEPS = 6


def _chaos_rules(seed):
    """A seeded random fault script: 1-2 faults at exact coordinates."""
    rng = random.Random(seed)
    rules = []
    for step in sorted(rng.sample(range(2, CHAOS_STEPS + 2), rng.randint(1, 2))):
        action = rng.choice(["die", "drop", "delay", "delay"])
        rules.append(FaultRule(
            op="send",
            action=action,
            worker=rng.randrange(4),
            kind=rng.choice(["act", "grad"]),
            step=step,
            delay=0.05,
        ))
    return rules


@pytest.mark.chaos
class TestChaosSoak:
    """Seeded chaos against the socket backend.  Contract: every run ends
    in exactly one of two states — bit-exact completion vs the simulator,
    or a typed error with a loadable latest checkpoint.  Never a hang
    (every wait in the stack is deadline-bounded, enforced here by the
    test timeout), never silent corruption (every completed step's loss
    is compared against the simulator as it happens)."""

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_ends_bit_exact_or_typed_with_checkpoint(
        self, rng, monkeypatch, tmp_path, seed
    ):
        rules = _chaos_rules(seed)
        log = {
            "seed": seed,
            "rules": [
                {k: getattr(r, k) for k in
                 ("op", "action", "worker", "kind", "step")}
                for r in rules
            ],
            "events": [],
        }
        install(monkeypatch, rules)
        x, y = toy_data(rng)
        m1, ex = build("simulator")
        m2, rt = build(
            "socket", deadlock_timeout=2.0, done_grace=5.0,
            overlap_boundary=False,
            net_options={"max_worker_restarts": 1, "max_restarts": 1},
        )
        manager = CheckpointManager(tmp_path / "chaos", keep=2)
        outcome = None
        try:
            with rt:
                manager.save(m2, rt.optimizer, rt, extra={"step": 0})
                i = 0
                failures = 0
                while i < CHAOS_STEPS:
                    b = slice(i * 16, (i + 1) * 16)
                    try:
                        loss = rt.train_step(x[b], y[b])
                    except (WorkerLostError, PipelineDeadlockError) as exc:
                        log["events"].append(
                            {"step": i, "error": type(exc).__name__,
                             "detail": str(exc)}
                        )
                        failures += 1
                        if rt.pool.wedged or failures > 4:
                            raise
                        continue  # recovered: retry the failed minibatch
                    assert loss == ex.train_step(x[b], y[b]), (
                        f"seed {seed}: silent divergence at step {i}"
                    )
                    i += 1
                    if i == 3:
                        rt.sync()
                        manager.save(m2, rt.optimizer, rt, extra={"step": i})
                rt.sync()
                assert_same_weights(m1, m2)
                outcome = "bit-exact"
        except (WorkerLostError, PipelineDeadlockError, RuntimeWedgedError) as exc:
            # Typed failure: the rolling checkpoint must still load into a
            # fresh stack — the run is resumable, not corrupt.
            outcome = f"typed-error:{type(exc).__name__}"
            m3, ex3 = build("simulator")
            extra = manager.load_latest(m3, ex3.optimizer, ex3)
            assert extra["step"] in (0, 3)
        finally:
            log["outcome"] = outcome
            t0 = time.perf_counter()
            rt.close()
            log["close_seconds"] = round(time.perf_counter() - t0, 3)
            log_dir = os.environ.get("CHAOS_LOG_DIR")
            if log_dir:
                os.makedirs(log_dir, exist_ok=True)
                with open(
                    os.path.join(log_dir, f"chaos-seed-{seed}.json"), "w"
                ) as fh:
                    json.dump(log, fh, indent=2)
        assert outcome is not None, f"seed {seed}: escaped the contract"
        assert log["close_seconds"] < 30.0, "close() hung after chaos"
