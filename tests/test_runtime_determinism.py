"""Determinism regression: the same pipemare config must produce identical
metrics run-to-run, on both backends, and across backends.

The async runs are ``@pytest.mark.timeout``-guarded (with a SIGALRM fallback
when pytest-timeout is absent — see ``conftest.py``) and the runtime itself
carries a ``deadlock_timeout``, so a wedged queue fails fast instead of
hanging CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import AsyncPipelineRuntime, PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages

from helpers import make_rng


def run_training(cls, steps=12, **backend_kw):
    """One fixed pipemare training run; returns (losses, flat_weights)."""
    data_rng = make_rng(99)
    c = 3
    centers = data_rng.normal(size=(c, 6)) * 2
    y = data_rng.integers(0, c, size=96)
    x = centers[y] + data_rng.normal(size=(96, 6))

    model = MLP([6, 8, 8, 8, 3], np.random.default_rng(5))
    stages = partition_model(model, 4)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    cfg = PipeMareConfig.full(anneal_steps=40, warmup_steps=2, decay=0.5)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, 2, "pipemare", pipemare=cfg,
        **backend_kw,
    )
    losses = []
    try:
        for i in range(steps):
            b = slice((i % 6) * 16, ((i % 6) + 1) * 16)
            losses.append(backend.train_step(x[b], y[b]))
    finally:
        if hasattr(backend, "close"):
            backend.close()
    return losses, np.concatenate([p.data.ravel() for p in model.parameters()])


class TestDeterminism:
    def test_simulator_is_deterministic(self):
        l1, w1 = run_training(PipelineExecutor)
        l2, w2 = run_training(PipelineExecutor)
        assert l1 == l2
        np.testing.assert_array_equal(w1, w2)

    @pytest.mark.timeout(60)
    def test_async_runtime_is_deterministic(self):
        l1, w1 = run_training(AsyncPipelineRuntime, deadlock_timeout=20.0)
        l2, w2 = run_training(AsyncPipelineRuntime, deadlock_timeout=20.0)
        assert l1 == l2
        np.testing.assert_array_equal(w1, w2)

    @pytest.mark.timeout(60)
    def test_backends_agree(self):
        l1, w1 = run_training(PipelineExecutor)
        l2, w2 = run_training(AsyncPipelineRuntime, deadlock_timeout=20.0)
        assert l1 == l2
        np.testing.assert_array_equal(w1, w2)
